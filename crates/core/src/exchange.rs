//! The finger/pad exchange step (paper Fig. 14): simulated annealing over
//! adjacent swaps under the monotonicity-preserving range constraint.
//!
//! Two implementations share the contract:
//!
//! * [`exchange`] — the production kernel. Each proposal touches only
//!   fixed-size incremental state: positions live in flat arrays instead
//!   of the assignment's `BTreeMap`, exchange ranges come from a
//!   [`RangeCache`], the Δ_IR term from a
//!   [`crate::DeltaIrTracker`], and the best-seen state is a **move
//!   journal** (accepted swaps + a prefix length) rematerialised once at
//!   the end instead of a full clone per improvement. With the `Proxy`
//!   objective the inner loop allocates nothing.
//! * [`exchange_reference`] — the original straight-line implementation
//!   that re-derives ranges and rebuilds the pad-spacing proxy every move.
//!   Kept as the executable specification: with the `Proxy` objective the
//!   two produce **bit-identical** [`ExchangeResult`]s for any seed
//!   (equivalence is property- and integration-tested), and the benches
//!   measure the kernel against it.
//!
//! With [`IrObjective::FullSolve`] the kernel additionally warm-starts
//! each grid solve from the last *accepted* solution
//! ([`copack_power::solve_sor_warm`]); the solve converges to the same
//! tolerance but not bit-for-bit, so equivalence guarantees are restricted
//! to the `Proxy` objective.

use copack_geom::{Assignment, FingerIdx, NetId, NetKind, Quadrant, StackConfig};
use copack_obs::{Event, NoopRecorder, Recorder};
use copack_power::{GridSpec, PadRing, PadSpacingProxy};
use copack_route::{check_monotonic, exchange_range, RangeCache};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{
    evaluate_ir, margin_penalty, omega_of_assignment, Acceptance, CancelToken, CoreError,
    CostWeights, DeltaIrTracker, ExchangeConfig, IrObjective, MarginTracker, OmegaTracker,
    SectionTracker,
};

/// How many proposals the kernel lets pass between cancellation polls
/// inside one temperature step. Steps are also polled at their boundary,
/// so this only bounds the abort latency of very large
/// `moves_per_temp` schedules; the poll itself is a relaxed atomic load.
const CANCEL_POLL_MASK: usize = 0x1FF;

/// Outcome of the exchange step.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeResult {
    /// The improved assignment.
    pub assignment: Assignment,
    /// Run statistics.
    pub stats: ExchangeStats,
}

/// Statistics of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExchangeStats {
    /// Cost of the initial order (Eq. 3).
    pub initial_cost: f64,
    /// Cost of the final order.
    pub final_cost: f64,
    /// Moves proposed (including range-constraint rejections).
    pub proposed: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// Accepted moves that made the cost worse (uphill).
    pub uphill_accepted: usize,
    /// Moves rejected by the range constraint before costing.
    pub constraint_rejected: usize,
    /// Temperature steps performed.
    pub temperature_steps: usize,
}

/// The movable-net set of a run: power pads only for 2-D designs
/// (Fig. 14 line 7), every pad for stacking designs (line 5).
fn movable_nets(quadrant: &Quadrant, psi: u8) -> Vec<NetId> {
    if psi == 1 {
        quadrant.nets_of_kind(NetKind::Power).collect()
    } else {
        quadrant.nets().map(|n| n.id).collect()
    }
}

/// Incremental state of the Eq. 3 Δ_IR term.
enum IrEval {
    /// λ = 0: the term never contributes.
    Off,
    /// The paper's pad-spacing proxy, tracked incrementally.
    Proxy(DeltaIrTracker),
    /// Full grid solves, warm-started from the last accepted solution.
    Full {
        grid: GridSpec,
        /// Dense indices of the power nets, in net-id order (the order the
        /// naive path iterates them).
        power_idx: Vec<usize>,
        alpha: f64,
        /// Voltages of the last *accepted* solve, the next warm start.
        warm: Option<Vec<f64>>,
        /// Voltages of the most recent solve, promoted to `warm` on accept.
        pending: Option<Vec<f64>>,
    },
}

impl IrEval {
    /// λ-weighted Δ_IR contribution of the current state.
    fn cost_term(&mut self, lambda: f64, pos1: &[u32]) -> Result<f64, CoreError> {
        match self {
            Self::Off => Ok(0.0),
            Self::Proxy(tracker) => {
                if tracker.power_pad_count() == 0 {
                    Ok(0.0)
                } else {
                    Ok(lambda * tracker.delta_ir())
                }
            }
            Self::Full {
                grid,
                power_idx,
                alpha,
                warm,
                pending,
            } => {
                // Replicates `evaluate_ir`'s pad construction: each power
                // pad appears once per package side.
                let mut ts = Vec::with_capacity(power_idx.len() * 4);
                for &i in power_idx.iter() {
                    let frac = (f64::from(pos1[i]) - 0.5) / *alpha;
                    for side in 0..4u32 {
                        ts.push((f64::from(side) + frac) / 4.0);
                    }
                }
                if ts.is_empty() {
                    return Ok(0.0);
                }
                let ring = PadRing::from_ts(ts)?;
                let map = copack_power::solve_sor_warm(grid, &ring, warm.as_deref())?;
                let drop = map.max_drop();
                *pending = Some(map.voltages().to_vec());
                Ok(lambda * drop)
            }
        }
    }

    /// Marks the last-evaluated state as accepted (its solution becomes
    /// the next warm start).
    fn commit(&mut self) {
        if let Self::Full { warm, pending, .. } = self {
            if let Some(v) = pending.take() {
                *warm = Some(v);
            }
        }
    }

    /// Discards the last evaluation after a rejected move.
    fn discard(&mut self) {
        if let Self::Full { pending, .. } = self {
            *pending = None;
        }
    }

    /// Mirrors an adjacent swap of `left_slot` and `left_slot + 1`.
    ///
    /// Returns `true` iff the swap can change the Δ_IR term, so callers
    /// may cache the term's value and only call [`IrEval::cost_term`]
    /// again when it does. For the proxy this is exact (the tracker
    /// reports whether a pad coordinate moved — two power pads or two
    /// non-power nets trading places leave the spacing untouched); a full
    /// solve is conservatively always treated as changed.
    fn apply_adjacent_swap(&mut self, left_slot: FingerIdx) -> bool {
        match self {
            Self::Off => false,
            Self::Proxy(tracker) => tracker.apply_adjacent_swap(left_slot),
            Self::Full { .. } => true,
        }
    }
}

/// Runs the power-supply-noise-driven exchange (Fig. 14) on an initial
/// order.
///
/// * 2-D designs (ψ = 1): only **power** pads are picked for swapping
///   (Fig. 14 line 7); `ID` (Eq. 2) and `Δ_IR` drive the cost, ω is
///   identically zero.
/// * Stacking designs (ψ ≥ 2): any pad may move (line 5) and ω joins the
///   cost.
///
/// Every proposed swap must keep both involved nets inside their exchange
/// ranges (strictly between their same-row neighbours), so the result is
/// always monotonic-legal and hence routable; the final order is verified
/// before it is returned.
///
/// This is the incremental kernel (see the module docs); it matches
/// [`exchange_reference`] bit for bit under the `Proxy` objective.
///
/// # Errors
///
/// * [`CoreError::BadConfig`] for invalid weights or schedule.
/// * [`CoreError::NoMovablePads`] for a 2-D design without power nets.
/// * [`CoreError::Route`] if `initial` is incomplete or illegal, or —
///   defensively — if the final order fails the monotonicity re-check.
pub fn exchange(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
) -> Result<ExchangeResult, CoreError> {
    exchange_traced(quadrant, initial, stack, config, &mut NoopRecorder)
}

/// [`exchange`] with telemetry: emits `RunStart`, per-move
/// `MoveAccepted`/`MoveRejected`, per-step `TempStep` and a final
/// `RunEnd` into `recorder`.
///
/// The recorder's [`Recorder::enabled`]/[`Recorder::wants_rejected`]
/// flags are cached once at startup; with a disabled recorder the run is
/// bit-identical to [`exchange`] (it *is* `exchange` — the plain entry
/// point delegates here with a [`NoopRecorder`]). Recording only reads
/// values the run already computed, so an enabled recorder observes, and
/// never perturbs, the trajectory.
///
/// # Errors
///
/// As [`exchange`].
pub fn exchange_traced(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    recorder: &mut dyn Recorder,
) -> Result<ExchangeResult, CoreError> {
    exchange_cancellable(
        quadrant,
        initial,
        stack,
        config,
        recorder,
        &CancelToken::new(),
    )
}

/// [`exchange_traced`] with cooperative cancellation: the annealing loop
/// polls `cancel` at every temperature-step boundary and every few hundred
/// proposals within a step, returning [`CoreError::Cancelled`] promptly
/// once the token fires (explicitly or via its wall-clock deadline).
///
/// A run that completes without the token firing is **bit-identical** to
/// [`exchange`] — the polls never touch the RNG stream or any cost state.
/// This is the entry point `copack-serve` uses to enforce per-job
/// timeouts.
///
/// # Errors
///
/// As [`exchange`], plus [`CoreError::Cancelled`].
pub fn exchange_cancellable(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    recorder: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<ExchangeResult, CoreError> {
    let mut driver = ExchangeDriver::new(quadrant, initial, stack, config, recorder)?;
    driver.run_to_end(recorder, cancel)?;
    driver.finish(recorder)
}

/// A pruned run's remains: the accepted-move journal, its best-prefix
/// length, and the stats with `final_cost` stamped to the best seen —
/// everything [`crate::portfolio`] needs to keep the trajectory as a
/// best-of candidate after the driver is gone.
pub(crate) type FrozenRun = (Vec<(u32, u32)>, usize, ExchangeStats);

/// Resumable state of one annealing run: the incremental kernel hoisted
/// into a struct so the schedule can be advanced in segments.
///
/// [`exchange_cancellable`] drives a driver straight to completion —
/// construction, every temperature step and the final rematerialisation
/// execute the exact statements of the former inline implementation, in
/// the same order, so results stay bit-identical to the pre-refactor
/// kernel (and to [`exchange_reference`] under the `Proxy` objective).
/// The multi-start portfolio (`crate::portfolio`) instead advances K
/// drivers epoch by epoch: pausing between [`ExchangeDriver::temp_step`]
/// calls touches no RNG or cost state, which is what makes sync-epoch
/// prune decisions schedule-independent.
pub(crate) struct ExchangeDriver<'a> {
    quadrant: &'a Quadrant,
    /// A private copy of the initial order, kept for the final
    /// journal replay.
    initial: Assignment,
    weights: CostWeights,
    acceptance: Acceptance,
    cooling: f64,
    psi: u8,
    alpha: usize,
    movable_idx: Vec<usize>,
    cache: RangeCache,
    pos1: Vec<u32>,
    slot_net: Vec<Option<usize>>,
    sections: SectionTracker,
    is_delim: Vec<bool>,
    id_value: u32,
    omega_tracker: Option<OmegaTracker>,
    margin_tracker: Option<MarginTracker>,
    live: Option<Assignment>,
    ir: IrEval,
    rng: rand::rngs::StdRng,
    ir_term: f64,
    current_cost: f64,
    temperature: f64,
    final_temp: f64,
    moves_per_temp: usize,
    stats: ExchangeStats,
    rec_on: bool,
    rec_rejected: bool,
    journal: Vec<(u32, u32)>,
    best_len: usize,
    best_cost: f64,
}

impl<'a> ExchangeDriver<'a> {
    /// Validates the inputs, builds every incremental tracker, computes
    /// the initial cost and temperature, and records `RunStart`.
    ///
    /// The recorder's `enabled`/`wants_rejected` flags are cached here,
    /// once — exactly as the inline kernel cached them at startup.
    ///
    /// # Errors
    ///
    /// As [`exchange`].
    pub(crate) fn new(
        quadrant: &'a Quadrant,
        initial: &Assignment,
        stack: &StackConfig,
        config: &ExchangeConfig,
        recorder: &mut dyn Recorder,
    ) -> Result<Self, CoreError> {
        if !config.weights.is_valid() {
            return Err(CoreError::BadConfig {
                parameter: "weights",
            });
        }
        if !config.schedule.is_valid() {
            return Err(CoreError::BadConfig {
                parameter: "schedule",
            });
        }
        check_monotonic(quadrant, initial)?;
        initial.validate_complete(quadrant)?;

        let psi = stack.tiers;
        let movable = movable_nets(quadrant, psi);
        if movable.is_empty() {
            return Err(CoreError::NoMovablePads);
        }

        let alpha = initial.finger_count();

        // Dense net indexing (the quadrant's `NetIndex` order) and flat
        // position state: the inner loop does zero keyed lookups — slots,
        // positions, ranges and section state are all arrays over the
        // same interned domain.
        let cache = RangeCache::new(quadrant, initial)?;
        let ids: Vec<NetId> = quadrant.nets().map(|n| n.id).collect();
        let movable_idx: Vec<usize> = movable
            .iter()
            .map(|&n| cache.index_of(n).expect("movable net is in the quadrant"))
            .collect();
        let mut pos1: Vec<u32> = vec![0; ids.len()];
        let mut slot_net: Vec<Option<usize>> = vec![None; alpha];
        for (i, &id) in ids.iter().enumerate() {
            let p = initial
                .position_of(id)
                .expect("assignment validated complete");
            pos1[i] = p.get();
            slot_net[p.zero_based()] = Some(i);
        }

        // Incremental trackers: an adjacent swap moves one net across at
        // most one section delimiter, touches at most two omega groups and
        // moves at most one power pad, so every Eq. 3 term updates in O(1)
        // (see `tracker.rs`; equivalence to the from-scratch definitions
        // is property-tested there). Omega falls back to recomputation for
        // sparse assignments, which the tracker does not model.
        let sections = SectionTracker::new(quadrant, initial)?;
        // ID bookkeeping: the value is an integer (no float-ordering
        // hazard), and it only changes when a net crosses a section
        // delimiter — which requires one of the swapped nets to be a
        // top-row net. Pre-resolving delimiter-ness lets the hot loop skip
        // the tracker entirely for the common within-section swap, and
        // `id_value` caches the O(sections) metric between crossings.
        let is_delim: Vec<bool> = ids.iter().map(|&id| sections.is_delimiter(id)).collect();
        let id_value = sections.increased_density();
        let dense = initial.net_count() == alpha;
        let omega_tracker = if psi > 1 && dense {
            Some(OmegaTracker::new(quadrant, initial, psi)?)
        } else {
            None
        };
        // The margin tracker only exists when the term is weighted: at
        // μ = 0 nothing is built or updated and the run is bit-identical
        // to pre-margin kernels.
        let margin_tracker = if config.weights.margin > 0.0 {
            Some(MarginTracker::new(quadrant, initial))
        } else {
            None
        };
        // The omega fallback is the one consumer that still needs a live
        // assignment per move; everything else runs on the flat arrays.
        let live: Option<Assignment> =
            if psi > 1 && config.weights.phi > 0.0 && omega_tracker.is_none() {
                Some(initial.clone())
            } else {
                None
            };
        let ir = if config.weights.lambda > 0.0 {
            match &config.ir_objective {
                IrObjective::Proxy => IrEval::Proxy(DeltaIrTracker::new(quadrant, initial)?),
                IrObjective::FullSolve { grid } => IrEval::Full {
                    grid: grid.clone(),
                    power_idx: quadrant
                        .nets_of_kind(NetKind::Power)
                        .map(|n| cache.index_of(n).expect("power net is in the quadrant"))
                        .collect(),
                    alpha: alpha as f64,
                    warm: None,
                    pending: None,
                },
            }
        } else {
            IrEval::Off
        };

        let mut driver = Self {
            quadrant,
            initial: initial.clone(),
            weights: config.weights,
            acceptance: config.acceptance,
            cooling: config.schedule.cooling,
            psi,
            alpha,
            movable_idx,
            cache,
            pos1,
            slot_net,
            sections,
            is_delim,
            id_value,
            omega_tracker,
            margin_tracker,
            live,
            ir,
            rng: rand::rngs::StdRng::seed_from_u64(config.seed),
            ir_term: 0.0,
            current_cost: 0.0,
            temperature: 0.0,
            final_temp: 0.0,
            moves_per_temp: config.schedule.moves_per_temp_per_finger * alpha,
            stats: ExchangeStats {
                initial_cost: 0.0,
                final_cost: 0.0,
                proposed: 0,
                accepted: 0,
                uphill_accepted: 0,
                constraint_rejected: 0,
                temperature_steps: 0,
            },
            rec_on: false,
            rec_rejected: false,
            journal: Vec::new(),
            best_len: 0,
            best_cost: 0.0,
        };

        driver.ir_term = if driver.weights.lambda > 0.0 {
            driver.ir.cost_term(driver.weights.lambda, &driver.pos1)?
        } else {
            0.0
        };
        let initial_cost = driver.eval_cost(driver.ir_term, driver.id_value)?;
        driver.ir.commit(); // the initial state is accepted by definition
        driver.current_cost = initial_cost;

        // Temperature scale: tied to the IR/ID part of the cost only. The
        // omega term's magnitude grows with the finger count and would
        // otherwise over-heat stacking runs relative to 2-D ones.
        let omega_part = match (&driver.omega_tracker, psi > 1 && config.weights.phi > 0.0) {
            (Some(tracker), true) => config.weights.phi * tracker.omega() as f64,
            (None, true) => {
                config.weights.phi * omega_of_assignment(quadrant, initial, psi)? as f64
            }
            _ => 0.0,
        };
        let temp_base = (initial_cost - omega_part).max(0.0);
        driver.temperature = config.schedule.initial_temp_factor * (temp_base + 1.0);
        driver.final_temp = driver.temperature * config.schedule.final_temp_ratio;

        driver.stats.initial_cost = initial_cost;
        driver.stats.final_cost = initial_cost;
        driver.best_cost = initial_cost;

        // Telemetry flags, cached once: with a disabled recorder every
        // event site is a never-taken branch and the run stays
        // bit-identical.
        driver.rec_on = recorder.enabled();
        driver.rec_rejected = driver.rec_on && recorder.wants_rejected();
        if driver.rec_on {
            recorder.record(&Event::RunStart {
                initial_cost,
                ir_term: driver.ir_term,
                initial_temperature: driver.temperature,
                final_temperature: driver.final_temp,
                cooling: config.schedule.cooling,
                moves_per_temp: driver.moves_per_temp as u64,
                movable_nets: driver.movable_idx.len() as u64,
            });
        }
        Ok(driver)
    }

    /// Whether the schedule has cooled past its final temperature.
    pub(crate) fn is_done(&self) -> bool {
        self.temperature <= self.final_temp
    }

    /// Best cost seen so far (the initial cost before any step).
    pub(crate) fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// Cost of the *current* (not best) state — what a tempering swap
    /// decision must look at, since the plan a rung would hand over is
    /// its live trajectory, not its best prefix.
    pub(crate) fn current_cost(&self) -> f64 {
        self.current_cost
    }

    /// The run's thermal state `(temperature, final_temp)`.
    ///
    /// Both values move together in a tempering swap: the pair encodes
    /// the rung, and because every rung shares `final_temp_ratio` and
    /// `cooling`, swapping pairs preserves each driver's remaining step
    /// count — the ladder stays in lockstep across sync epochs.
    pub(crate) fn thermal(&self) -> (f64, f64) {
        (self.temperature, self.final_temp)
    }

    /// Installs a thermal state taken from another rung (see
    /// [`ExchangeDriver::thermal`]). Exchanging temperatures while plans,
    /// journals and RNG streams stay put is observably identical to the
    /// textbook "swap the configurations" formulation, but keeps every
    /// cost ledger and the journal-replay contract trivially intact.
    pub(crate) fn set_thermal(&mut self, temperature: f64, final_temp: f64) {
        self.temperature = temperature;
        self.final_temp = final_temp;
    }

    /// The accepted-move journal so far.
    pub(crate) fn journal(&self) -> &[(u32, u32)] {
        &self.journal
    }

    /// Length of the journal prefix that produced [`Self::best_cost`].
    pub(crate) fn best_len(&self) -> usize {
        self.best_len
    }

    /// Freezes the run for a portfolio prune: the accepted-move journal,
    /// its best-prefix length, and the stats so far with `final_cost`
    /// stamped to the best seen. The portfolio reduction keeps the frozen
    /// trajectory as a best-of candidate after the driver is dropped.
    pub(crate) fn freeze(&self) -> FrozenRun {
        let mut stats = self.stats;
        stats.final_cost = self.best_cost;
        (self.journal.clone(), self.best_len, stats)
    }

    /// Advances up to `steps` temperature steps (stopping early when the
    /// schedule completes).
    ///
    /// # Errors
    ///
    /// [`CoreError::Cancelled`] when `cancel` fires; the state then holds
    /// whatever progress was made and must not be advanced further.
    pub(crate) fn advance(
        &mut self,
        steps: usize,
        recorder: &mut dyn Recorder,
        cancel: &CancelToken,
    ) -> Result<(), CoreError> {
        for _ in 0..steps {
            if self.is_done() {
                break;
            }
            self.temp_step(recorder, cancel)?;
        }
        Ok(())
    }

    /// Runs the remaining schedule to completion.
    ///
    /// # Errors
    ///
    /// As [`ExchangeDriver::advance`].
    pub(crate) fn run_to_end(
        &mut self,
        recorder: &mut dyn Recorder,
        cancel: &CancelToken,
    ) -> Result<(), CoreError> {
        while !self.is_done() {
            self.temp_step(recorder, cancel)?;
        }
        Ok(())
    }

    /// Eq. 3, term by term in the reference order (the additions must
    /// associate identically for bit-equal costs). The λ·Δ_IR term comes
    /// in pre-computed: it is the only float-valued term, and it is
    /// cached across moves that leave the pad coordinates untouched —
    /// reusing the identical f64 instead of re-deriving it keeps
    /// bit-equality trivially intact.
    fn eval_cost(&self, ir_term: f64, id: u32) -> Result<f64, CoreError> {
        let mut cost = 0.0;
        if self.weights.lambda > 0.0 {
            cost += ir_term;
        }
        if self.weights.rho > 0.0 {
            cost += self.weights.rho * f64::from(id);
        }
        if self.weights.phi > 0.0 && self.psi > 1 {
            let omega = match &self.omega_tracker {
                Some(tracker) => tracker.omega(),
                None => {
                    let a = self
                        .live
                        .as_ref()
                        .expect("fallback keeps a live assignment");
                    omega_of_assignment(self.quadrant, a, self.psi)?
                }
            };
            cost += self.weights.phi * omega as f64;
        }
        if self.weights.margin > 0.0 {
            let sm = self
                .margin_tracker
                .as_ref()
                .expect("margin tracker exists when the margin weight is set")
                .total();
            cost += self.weights.margin * sm as f64;
        }
        Ok(cost)
    }

    /// One temperature step: `moves_per_temp` proposals, the `TempStep`
    /// event, one cooling multiply.
    ///
    /// # Errors
    ///
    /// As [`ExchangeDriver::advance`].
    pub(crate) fn temp_step(
        &mut self,
        recorder: &mut dyn Recorder,
        cancel: &CancelToken,
    ) -> Result<(), CoreError> {
        if cancel.is_cancelled() {
            return Err(CoreError::Cancelled);
        }
        let step_start = self.stats;
        let mut step_ir_noop: u64 = 0;
        for _ in 0..self.moves_per_temp {
            self.stats.proposed += 1;
            if self.stats.proposed & CANCEL_POLL_MASK == 0 && cancel.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            let mi = self.movable_idx[self.rng.gen_range(0..self.movable_idx.len())];
            let pos = self.pos1[mi];
            let right = self.rng.gen_bool(0.5);
            let target = if right {
                if pos as usize >= self.alpha {
                    self.stats.constraint_rejected += 1;
                    continue;
                }
                pos + 1
            } else {
                if pos == 1 {
                    self.stats.constraint_rejected += 1;
                    continue;
                }
                pos - 1
            };

            // Range constraint: the moved net must stay inside its span,
            // and the displaced neighbour (if any) inside its own.
            let (lo, hi) = self.cache.range(mi);
            if target < lo.get() || target > hi.get() {
                self.stats.constraint_rejected += 1;
                continue;
            }
            let neighbour = self.slot_net[(target - 1) as usize];
            if let Some(ni) = neighbour {
                let (nlo, nhi) = self.cache.range(ni);
                if pos < nlo.get() || pos > nhi.get() {
                    self.stats.constraint_rejected += 1;
                    continue;
                }
            }

            // Apply the swap to the trackers (self-inverse on revert).
            let left_slot = pos.min(target);
            let left_net = self.slot_net[(left_slot - 1) as usize];
            let right_net = self.slot_net[left_slot as usize];
            // The section counts only change when exactly one of the two
            // nets is a delimiter; skip the tracker (and the cached ID
            // refresh) for the common within-section swap.
            let crosses = match (left_net, right_net) {
                (Some(l), Some(r)) => self.is_delim[l] != self.is_delim[r],
                _ => false,
            };
            let id_before = self.id_value;
            if crosses {
                let (l, r) = (left_net.expect("both set"), right_net.expect("both set"));
                self.sections.apply_adjacent_swap_idx(l, r);
                self.id_value = self.sections.increased_density();
            }
            if let Some(tracker) = &mut self.omega_tracker {
                tracker.apply_adjacent_swap(FingerIdx::new(left_slot));
            }
            if let Some(tracker) = &mut self.margin_tracker {
                tracker.apply_adjacent_swap(FingerIdx::new(left_slot));
            }
            let ir_changed = self.ir.apply_adjacent_swap(FingerIdx::new(left_slot));
            if self.rec_on && !ir_changed {
                step_ir_noop += 1;
            }
            self.slot_net
                .swap((pos - 1) as usize, (target - 1) as usize);
            if let Some(i) = self.slot_net[(target - 1) as usize] {
                self.pos1[i] = target;
            }
            if let Some(i) = self.slot_net[(pos - 1) as usize] {
                self.pos1[i] = pos;
            }
            if let Some(a) = &mut self.live {
                a.swap(FingerIdx::new(pos), FingerIdx::new(target))?;
            }

            let ir_term_before = self.ir_term;
            if ir_changed {
                self.ir_term = self.ir.cost_term(self.weights.lambda, &self.pos1)?;
            }
            let new_cost = self.eval_cost(self.ir_term, self.id_value)?;
            let delta = new_cost - self.current_cost;
            let accept = if delta <= 0.0 {
                true
            } else {
                self.acceptance
                    .accepts(delta, self.temperature, self.rng.gen::<f64>())
            };
            if accept {
                self.stats.accepted += 1;
                if delta > 0.0 {
                    self.stats.uphill_accepted += 1;
                }
                self.current_cost = new_cost;
                self.ir.commit();
                // Only the moved nets' row-neighbours see stale ranges.
                self.cache.note_moved(mi, &self.pos1);
                if let Some(ni) = neighbour {
                    self.cache.note_moved(ni, &self.pos1);
                }
                self.journal.push((pos, target));
                if self.current_cost < self.best_cost {
                    self.best_cost = self.current_cost;
                    self.best_len = self.journal.len();
                }
                if self.rec_on {
                    recorder.record(&Event::MoveAccepted {
                        step: self.stats.temperature_steps as u32,
                        left_slot,
                        delta,
                        cost: new_cost,
                        ir_term: self.ir_term,
                        ir_changed,
                        uphill: delta > 0.0,
                    });
                }
            } else {
                if self.rec_rejected {
                    recorder.record(&Event::MoveRejected {
                        step: self.stats.temperature_steps as u32,
                        left_slot,
                        delta,
                    });
                }
                self.ir.discard();
                self.ir_term = ir_term_before;
                self.slot_net
                    .swap((pos - 1) as usize, (target - 1) as usize); // revert
                if let Some(i) = self.slot_net[(pos - 1) as usize] {
                    self.pos1[i] = pos;
                }
                if let Some(i) = self.slot_net[(target - 1) as usize] {
                    self.pos1[i] = target;
                }
                if let Some(a) = &mut self.live {
                    a.swap(FingerIdx::new(pos), FingerIdx::new(target))?;
                }
                if crosses {
                    let (l, r) = (left_net.expect("both set"), right_net.expect("both set"));
                    self.sections.apply_adjacent_swap_idx(r, l);
                    self.id_value = id_before;
                }
                if let Some(tracker) = &mut self.omega_tracker {
                    tracker.apply_adjacent_swap(FingerIdx::new(left_slot));
                }
                if let Some(tracker) = &mut self.margin_tracker {
                    tracker.apply_adjacent_swap(FingerIdx::new(left_slot));
                }
                self.ir.apply_adjacent_swap(FingerIdx::new(left_slot));
            }
        }
        if self.rec_on {
            recorder.record(&Event::TempStep {
                step: self.stats.temperature_steps as u32,
                temperature: self.temperature,
                proposed: (self.stats.proposed - step_start.proposed) as u64,
                accepted: (self.stats.accepted - step_start.accepted) as u64,
                uphill_accepted: (self.stats.uphill_accepted - step_start.uphill_accepted) as u64,
                constraint_rejected: (self.stats.constraint_rejected
                    - step_start.constraint_rejected) as u64,
                ir_noop_applied: step_ir_noop,
                cost: self.current_cost,
            });
        }
        self.temperature *= self.cooling;
        self.stats.temperature_steps += 1;
        Ok(())
    }

    /// Rematerialises the best state seen, re-checks its legality, and
    /// records `RunEnd`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Route`] — defensively — if the final order fails the
    /// monotonicity re-check.
    pub(crate) fn finish(
        &mut self,
        recorder: &mut dyn Recorder,
    ) -> Result<ExchangeResult, CoreError> {
        // Rematerialise the best state: replay the accepted-move prefix
        // onto the initial order.
        let mut best = self.initial.clone();
        for &(a, b) in &self.journal[..self.best_len] {
            best.swap(FingerIdx::new(a), FingerIdx::new(b))?;
        }
        // The range constraint guarantees legality move by move; re-check
        // the final order for real (not just in debug builds) so a tracker
        // or journal defect can never escape as an unroutable "result".
        check_monotonic(self.quadrant, &best)?;
        self.stats.final_cost = self.best_cost;
        if self.rec_on {
            recorder.record(&Event::RunEnd {
                final_cost: self.best_cost,
                proposed: self.stats.proposed as u64,
                accepted: self.stats.accepted as u64,
                uphill_accepted: self.stats.uphill_accepted as u64,
                constraint_rejected: self.stats.constraint_rejected as u64,
                temperature_steps: self.stats.temperature_steps as u64,
            });
        }
        Ok(ExchangeResult {
            assignment: best,
            stats: self.stats,
        })
    }
}

/// The original from-scratch exchange implementation, kept as the
/// executable specification for [`exchange`].
///
/// Each move re-derives both exchange ranges, re-collects the power-pad
/// coordinates and rebuilds the [`PadSpacingProxy`] — `O(β)`-ish work per
/// proposal — and clones the whole assignment on every improvement. Use it
/// to cross-check the kernel (they are bit-identical under
/// [`IrObjective::Proxy`]) and as the baseline in the benches; use
/// [`exchange`] everywhere else.
///
/// # Errors
///
/// As [`exchange`].
pub fn exchange_reference(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
) -> Result<ExchangeResult, CoreError> {
    exchange_reference_traced(quadrant, initial, stack, config, &mut NoopRecorder)
}

/// [`exchange_reference`] with telemetry, emitting the same event
/// vocabulary as [`exchange_traced`].
///
/// Under the `Proxy` objective the two record **equal** event streams
/// for any seed (the full-trajectory equivalence property): the
/// reference derives `ir_changed` from the swapped nets' kinds — exactly
/// one of the two slots holds a power pad, an empty slot counting as
/// non-power — which is the same predicate the kernel's
/// [`crate::DeltaIrTracker`] answers from its slot ranks.
///
/// # Errors
///
/// As [`exchange`].
pub fn exchange_reference_traced(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    recorder: &mut dyn Recorder,
) -> Result<ExchangeResult, CoreError> {
    if !config.weights.is_valid() {
        return Err(CoreError::BadConfig {
            parameter: "weights",
        });
    }
    if !config.schedule.is_valid() {
        return Err(CoreError::BadConfig {
            parameter: "schedule",
        });
    }
    check_monotonic(quadrant, initial)?;
    initial.validate_complete(quadrant)?;

    let psi = stack.tiers;
    let movable = movable_nets(quadrant, psi);
    if movable.is_empty() {
        return Err(CoreError::NoMovablePads);
    }

    let alpha = initial.finger_count();
    let mut sections = SectionTracker::new(quadrant, initial)?;
    let dense = initial.net_count() == alpha;
    let mut omega_tracker = if psi > 1 && dense {
        Some(OmegaTracker::new(quadrant, initial, psi)?)
    } else {
        None
    };
    // Returns `(cost, ir_term)`: the λ-weighted Δ_IR term is split out so
    // telemetry can report it per accepted move, exactly as the kernel's
    // cached term. The additions associate as before, so costs stay
    // bit-identical.
    let cost_of = |a: &Assignment,
                   sections: &SectionTracker,
                   omega_tracker: &Option<OmegaTracker>|
     -> Result<(f64, f64), CoreError> {
        let mut cost = 0.0;
        let mut ir_term = 0.0;
        if config.weights.lambda > 0.0 {
            match &config.ir_objective {
                IrObjective::Proxy => {
                    let ts: Vec<f64> = quadrant
                        .nets_of_kind(NetKind::Power)
                        .filter_map(|n| a.position_of(n))
                        .map(|f| (f.get() as f64 - 0.5) / alpha as f64)
                        .collect();
                    if !ts.is_empty() {
                        ir_term = config.weights.lambda * PadSpacingProxy::new(&ts)?.delta_ir();
                        cost += ir_term;
                    }
                }
                IrObjective::FullSolve { grid } => {
                    if let Some(drop) = evaluate_ir(quadrant, a, grid)? {
                        ir_term = config.weights.lambda * drop;
                        cost += ir_term;
                    }
                }
            }
        }
        if config.weights.rho > 0.0 {
            cost += config.weights.rho * f64::from(sections.increased_density());
        }
        if config.weights.phi > 0.0 && psi > 1 {
            let omega = match omega_tracker {
                Some(tracker) => tracker.omega(),
                None => omega_of_assignment(quadrant, a, psi)?,
            };
            cost += config.weights.phi * omega as f64;
        }
        if config.weights.margin > 0.0 {
            // From scratch every move — the executable spec of the
            // kernel's `MarginTracker`. Integer totals, so the two agree
            // exactly.
            cost += config.weights.margin * margin_penalty(quadrant, a) as f64;
        }
        Ok((cost, ir_term))
    };
    // The kernel's `DeltaIrTracker` reports whether a swap moved a power
    // pad's coordinate; the reference answers the same question from the
    // swapped slots' net kinds (an empty slot counts as non-power).
    let slot_is_power = |n: Option<NetId>| -> bool {
        n.is_some_and(|id| quadrant.net(id).map(|net| net.kind) == Some(NetKind::Power))
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut current = initial.clone();
    let (initial_cost, initial_ir_term) = cost_of(&current, &sections, &omega_tracker)?;
    let mut current_cost = initial_cost;

    let omega_part = match (&omega_tracker, psi > 1 && config.weights.phi > 0.0) {
        (Some(tracker), true) => config.weights.phi * tracker.omega() as f64,
        (None, true) => config.weights.phi * omega_of_assignment(quadrant, initial, psi)? as f64,
        _ => 0.0,
    };
    let temp_base = (initial_cost - omega_part).max(0.0);
    let mut temperature = config.schedule.initial_temp_factor * (temp_base + 1.0);
    let final_temp = temperature * config.schedule.final_temp_ratio;
    let moves_per_temp = config.schedule.moves_per_temp_per_finger * alpha;

    let mut stats = ExchangeStats {
        initial_cost,
        final_cost: initial_cost,
        proposed: 0,
        accepted: 0,
        uphill_accepted: 0,
        constraint_rejected: 0,
        temperature_steps: 0,
    };

    let rec_on = recorder.enabled();
    let rec_rejected = rec_on && recorder.wants_rejected();
    if rec_on {
        recorder.record(&Event::RunStart {
            initial_cost,
            ir_term: initial_ir_term,
            initial_temperature: temperature,
            final_temperature: final_temp,
            cooling: config.schedule.cooling,
            moves_per_temp: moves_per_temp as u64,
            movable_nets: movable.len() as u64,
        });
    }

    let mut best = current.clone();
    let mut best_cost = current_cost;

    while temperature > final_temp {
        let step_start = stats;
        let mut step_ir_noop: u64 = 0;
        for _ in 0..moves_per_temp {
            stats.proposed += 1;
            let net = movable[rng.gen_range(0..movable.len())];
            let pos = current.position_of(net).expect("complete assignment");
            let right = rng.gen_bool(0.5);
            let target = if right {
                if pos.get() as usize >= alpha {
                    stats.constraint_rejected += 1;
                    continue;
                }
                FingerIdx::new(pos.get() + 1)
            } else {
                if pos.get() == 1 {
                    stats.constraint_rejected += 1;
                    continue;
                }
                FingerIdx::new(pos.get() - 1)
            };

            let (lo, hi) = exchange_range(quadrant, &current, net)?;
            if target < lo || target > hi {
                stats.constraint_rejected += 1;
                continue;
            }
            if let Some(neighbour) = current.net_at(target) {
                let (nlo, nhi) = exchange_range(quadrant, &current, neighbour)?;
                if pos < nlo || pos > nhi {
                    stats.constraint_rejected += 1;
                    continue;
                }
            }

            let left_slot = if pos < target { pos } else { target };
            let left_net = current.net_at(left_slot);
            let right_net = current.net_at(FingerIdx::new(left_slot.get() + 1));
            if let (Some(l), Some(r)) = (left_net, right_net) {
                sections.apply_adjacent_swap(l, r);
            }
            if let Some(tracker) = &mut omega_tracker {
                tracker.apply_adjacent_swap(left_slot);
            }
            // Same predicate the kernel's tracker answers in O(1): the
            // Δ_IR term moves iff exactly one swapped slot holds a power
            // pad (`FullSolve` is conservatively always "changed").
            let ir_changed = config.weights.lambda > 0.0
                && match &config.ir_objective {
                    IrObjective::Proxy => slot_is_power(left_net) != slot_is_power(right_net),
                    IrObjective::FullSolve { .. } => true,
                };
            if rec_on && !ir_changed {
                step_ir_noop += 1;
            }
            current.swap(pos, target)?;
            let (new_cost, new_ir_term) = cost_of(&current, &sections, &omega_tracker)?;
            let delta = new_cost - current_cost;
            let accept = if delta <= 0.0 {
                true
            } else {
                config
                    .acceptance
                    .accepts(delta, temperature, rng.gen::<f64>())
            };
            if accept {
                stats.accepted += 1;
                if delta > 0.0 {
                    stats.uphill_accepted += 1;
                }
                current_cost = new_cost;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                }
                if rec_on {
                    recorder.record(&Event::MoveAccepted {
                        step: stats.temperature_steps as u32,
                        left_slot: left_slot.get(),
                        delta,
                        cost: new_cost,
                        ir_term: new_ir_term,
                        ir_changed,
                        uphill: delta > 0.0,
                    });
                }
            } else {
                if rec_rejected {
                    recorder.record(&Event::MoveRejected {
                        step: stats.temperature_steps as u32,
                        left_slot: left_slot.get(),
                        delta,
                    });
                }
                current.swap(pos, target)?; // revert
                if let (Some(l), Some(r)) = (left_net, right_net) {
                    sections.apply_adjacent_swap(r, l);
                }
                if let Some(tracker) = &mut omega_tracker {
                    tracker.apply_adjacent_swap(left_slot);
                }
            }
        }
        if rec_on {
            recorder.record(&Event::TempStep {
                step: stats.temperature_steps as u32,
                temperature,
                proposed: (stats.proposed - step_start.proposed) as u64,
                accepted: (stats.accepted - step_start.accepted) as u64,
                uphill_accepted: (stats.uphill_accepted - step_start.uphill_accepted) as u64,
                constraint_rejected: (stats.constraint_rejected - step_start.constraint_rejected)
                    as u64,
                ir_noop_applied: step_ir_noop,
                cost: current_cost,
            });
        }
        temperature *= config.schedule.cooling;
        stats.temperature_steps += 1;
    }

    check_monotonic(quadrant, &best)?;
    stats.final_cost = best_cost;
    if rec_on {
        recorder.record(&Event::RunEnd {
            final_cost: best_cost,
            proposed: stats.proposed as u64,
            accepted: stats.accepted as u64,
            uphill_accepted: stats.uphill_accepted as u64,
            constraint_rejected: stats.constraint_rejected as u64,
            temperature_steps: stats.temperature_steps as u64,
        });
    }
    Ok(ExchangeResult {
        assignment: best,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dfa, CostWeights};
    use copack_geom::{NetKind, Quadrant, TierId};
    use copack_route::is_monotonic;

    /// Fig. 5 instance with power nets sprinkled in.
    fn quadrant_2d() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(9u32, NetKind::Power)
            .net_kind(0u32, NetKind::Ground)
            .build()
            .unwrap()
    }

    /// Two-tier version of the same instance.
    fn quadrant_stacked() -> Quadrant {
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power);
        for n in [10u32, 2, 4, 1, 3, 11] {
            b = b.net_tier(n, TierId::new(2));
        }
        b.build().unwrap()
    }

    fn fast_config(seed: u64) -> ExchangeConfig {
        ExchangeConfig {
            schedule: crate::Schedule {
                moves_per_temp_per_finger: 2,
                final_temp_ratio: 1e-2,
                ..crate::Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        }
    }

    #[test]
    fn exchange_never_breaks_monotonicity() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        for seed in 0..5 {
            let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(seed)).unwrap();
            assert!(is_monotonic(&q, &r.assignment), "seed {seed}");
            assert!(r.assignment.validate_complete(&q).is_ok());
        }
    }

    #[test]
    fn exchange_does_not_increase_cost() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(1)).unwrap();
        assert!(r.stats.final_cost <= r.stats.initial_cost + 1e-9);
    }

    #[test]
    fn kernel_matches_reference_bit_for_bit() {
        // The heart of the optimisation's correctness argument: with the
        // Proxy objective, the incremental kernel and the from-scratch
        // reference walk the same trajectory and return equal results —
        // assignment AND statistics — for planar and stacked runs alike.
        let planar = quadrant_2d();
        let stacked = quadrant_stacked();
        for seed in 0..8 {
            let cfg = fast_config(seed);
            let i = dfa(&planar, 1).unwrap();
            let a = exchange(&planar, &i, &StackConfig::planar(), &cfg).unwrap();
            let b = exchange_reference(&planar, &i, &StackConfig::planar(), &cfg).unwrap();
            assert_eq!(a, b, "planar seed {seed}");

            let i = dfa(&stacked, 1).unwrap();
            let stack = StackConfig::stacked(2).unwrap();
            let a = exchange(&stacked, &i, &stack, &cfg).unwrap();
            let b = exchange_reference(&stacked, &i, &stack, &cfg).unwrap();
            assert_eq!(a, b, "stacked seed {seed}");
        }
    }

    #[test]
    fn kernel_matches_reference_on_sparse_instances() {
        // Sparse + stacked exercises the omega fallback and empty-slot
        // swaps in the same run.
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .fingers(15);
        for n in [10u32, 2, 4, 1, 3, 11] {
            b = b.net_tier(n, TierId::new(2));
        }
        let q = b.build().unwrap();
        let initial = dfa(&q, 1).unwrap();
        let stack = StackConfig::stacked(2).unwrap();
        for seed in 0..4 {
            let cfg = fast_config(seed);
            let a = exchange(&q, &initial, &stack, &cfg).unwrap();
            let b = exchange_reference(&q, &initial, &stack, &cfg).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn kernel_matches_reference_with_margin_term() {
        // The fourth cost term stays inside the bit-identity contract:
        // with μ > 0 the kernel's incremental MarginTracker and the
        // reference's from-scratch margin_penalty walk the same
        // trajectory (the penalty is integer-valued, so no float drift).
        let planar = quadrant_2d();
        let stacked = quadrant_stacked();
        for seed in 0..6 {
            let mut cfg = fast_config(seed);
            cfg.weights.margin = 1.5;
            let i = dfa(&planar, 1).unwrap();
            let a = exchange(&planar, &i, &StackConfig::planar(), &cfg).unwrap();
            let b = exchange_reference(&planar, &i, &StackConfig::planar(), &cfg).unwrap();
            assert_eq!(a, b, "planar seed {seed}");

            let i = dfa(&stacked, 1).unwrap();
            let stack = StackConfig::stacked(2).unwrap();
            let a = exchange(&stacked, &i, &stack, &cfg).unwrap();
            let b = exchange_reference(&stacked, &i, &stack, &cfg).unwrap();
            assert_eq!(a, b, "stacked seed {seed}");
        }
    }

    #[test]
    fn margin_weight_zero_never_builds_the_tracker() {
        // Default weights must be bit-identical to pre-margin builds:
        // the cheapest proof is that μ = 0 and an explicit μ = 0 config
        // agree with each other and the default config exactly.
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let base = exchange(&q, &initial, &StackConfig::planar(), &fast_config(3)).unwrap();
        let mut cfg = fast_config(3);
        cfg.weights.margin = 0.0;
        let zeroed = exchange(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
        assert_eq!(base, zeroed);
    }

    #[test]
    fn margin_term_reduces_the_penalty_when_dominant() {
        let q = quadrant_stacked();
        let initial = dfa(&q, 1).unwrap();
        let stack = StackConfig::stacked(2).unwrap();
        let before = margin_penalty(&q, &initial);
        let mut cfg = fast_config(4);
        cfg.weights = CostWeights {
            lambda: 0.0,
            rho: 0.0,
            phi: 0.0,
            margin: 1.0,
        };
        let r = exchange(&q, &initial, &stack, &cfg).unwrap();
        let after = margin_penalty(&q, &r.assignment);
        assert!(after <= before, "{after} !<= {before}");
        assert!(is_monotonic(&q, &r.assignment));
    }

    #[test]
    fn two_d_exchange_moves_only_power_pads() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(2)).unwrap();
        // Signal/ground nets may be displaced by a power pad swapping with
        // them, but their *relative* order must be intact.
        let signals_before: Vec<_> = initial
            .order()
            .into_iter()
            .filter(|&n| q.net(n).unwrap().kind != NetKind::Power)
            .collect();
        let signals_after: Vec<_> = r
            .assignment
            .order()
            .into_iter()
            .filter(|&n| q.net(n).unwrap().kind != NetKind::Power)
            .collect();
        assert_eq!(signals_before, signals_after);
    }

    #[test]
    fn exchange_improves_power_pad_spreading() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let proxy_of = |a: &Assignment| {
            let ts: Vec<f64> = q
                .nets_of_kind(NetKind::Power)
                .map(|n| (a.position_of(n).unwrap().get() as f64 - 0.5) / 12.0)
                .collect();
            PadSpacingProxy::new(&ts).unwrap().delta_ir()
        };
        let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(3)).unwrap();
        assert!(proxy_of(&r.assignment) <= proxy_of(&initial) + 1e-12);
    }

    #[test]
    fn stacked_exchange_reduces_omega() {
        let q = quadrant_stacked();
        let initial = dfa(&q, 1).unwrap();
        let stack = StackConfig::stacked(2).unwrap();
        let om_before = omega_of_assignment(&q, &initial, 2).unwrap();
        // Make the bonding-wire term the dominant objective so the test
        // exercises the omega mechanics rather than the weight balance.
        let mut cfg = fast_config(4);
        cfg.weights = CostWeights {
            lambda: 0.0,
            rho: 0.5,
            phi: 1.0,
            margin: 0.0,
        };
        let r = exchange(&q, &initial, &stack, &cfg).unwrap();
        let om_after = omega_of_assignment(&q, &r.assignment, 2).unwrap();
        assert!(om_after <= om_before, "{om_after} !<= {om_before}");
        assert!(is_monotonic(&q, &r.assignment));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let a = exchange(&q, &initial, &StackConfig::planar(), &fast_config(9)).unwrap();
        let b = exchange(&q, &initial, &StackConfig::planar(), &fast_config(9)).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn no_power_pads_in_2d_is_an_error() {
        let q = Quadrant::builder().row([1u32, 2]).build().unwrap();
        let initial = Assignment::from_order([1u32, 2]);
        for f in [exchange, exchange_reference] {
            assert!(matches!(
                f(&q, &initial, &StackConfig::planar(), &fast_config(0)),
                Err(CoreError::NoMovablePads)
            ));
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        for f in [exchange, exchange_reference] {
            let mut bad = fast_config(0);
            bad.weights = CostWeights {
                lambda: -1.0,
                ..CostWeights::default()
            };
            assert!(matches!(
                f(&q, &initial, &StackConfig::planar(), &bad),
                Err(CoreError::BadConfig { .. })
            ));
            let mut bad = fast_config(0);
            bad.schedule.cooling = 2.0;
            assert!(f(&q, &initial, &StackConfig::planar(), &bad).is_err());
        }
    }

    #[test]
    fn illegal_initial_order_is_rejected() {
        let q = quadrant_2d();
        let bad = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        for f in [exchange, exchange_reference] {
            assert!(f(&q, &bad, &StackConfig::planar(), &fast_config(0)).is_err());
        }
    }

    #[test]
    fn result_is_never_worse_than_the_input_even_with_bad_rules() {
        // The annealer returns the best state seen, so even the paper's
        // inverted acceptance rule cannot hand back a degraded order.
        use crate::Acceptance;
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        for acceptance in [
            Acceptance::Metropolis,
            Acceptance::AsWritten,
            Acceptance::Greedy,
        ] {
            let mut cfg = fast_config(11);
            cfg.acceptance = acceptance;
            let r = exchange(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
            assert!(
                r.stats.final_cost <= r.stats.initial_cost + 1e-9,
                "{acceptance:?}: {} > {}",
                r.stats.final_cost,
                r.stats.initial_cost
            );
        }
    }

    #[test]
    fn sparse_assignments_exchange_via_the_fallback_path() {
        // More fingers than nets: the omega tracker declines and the
        // exchange falls back to recomputation; legality must still hold.
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .fingers(15);
        for n in [10u32, 2, 4, 1, 3, 11] {
            b = b.net_tier(n, TierId::new(2));
        }
        let q = b.build().unwrap();
        let initial = dfa(&q, 1).unwrap();
        assert_eq!(initial.finger_count(), 15);
        let stack = StackConfig::stacked(2).unwrap();
        let r = exchange(&q, &initial, &stack, &fast_config(8)).unwrap();
        assert!(is_monotonic(&q, &r.assignment));
        assert!(r.assignment.validate_complete(&q).is_ok());
        assert!(r.stats.final_cost <= r.stats.initial_cost + 1e-9);
    }

    #[test]
    fn full_solve_objective_runs_and_stays_legal() {
        use crate::IrObjective;
        use copack_power::GridSpec;
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let mut cfg = fast_config(6);
        cfg.schedule.final_temp_ratio = 0.5; // a handful of temperature steps
        cfg.ir_objective = IrObjective::FullSolve {
            grid: GridSpec::default_chip(8),
        };
        let r = exchange(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
        assert!(is_monotonic(&q, &r.assignment));
        assert!(r.stats.final_cost <= r.stats.initial_cost + 1e-9);
    }

    #[test]
    fn full_solve_warm_start_tracks_the_cold_reference_closely() {
        // Warm-started solves converge to the same fixed point within the
        // solver tolerance, so the kernel's FullSolve trajectory must land
        // on the same assignment as the cold-start reference for a short
        // schedule (identical up to ~1e-9 cost noise, far below any
        // accept/reject threshold this schedule produces).
        use crate::IrObjective;
        use copack_power::GridSpec;
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let mut cfg = fast_config(6);
        cfg.schedule.final_temp_ratio = 0.5;
        cfg.ir_objective = IrObjective::FullSolve {
            grid: GridSpec::default_chip(8),
        };
        let warm = exchange(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
        let cold = exchange_reference(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
        assert_eq!(warm.assignment, cold.assignment);
        assert!((warm.stats.final_cost - cold.stats.final_cost).abs() < 1e-6);
    }

    #[test]
    fn cancelled_token_aborts_the_run_with_a_typed_error() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = exchange_cancellable(
            &q,
            &initial,
            &StackConfig::planar(),
            &fast_config(1),
            &mut NoopRecorder,
            &token,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Cancelled), "{err}");
        // An already-expired deadline behaves the same.
        let expired = CancelToken::with_deadline(std::time::Instant::now());
        let err = exchange_cancellable(
            &q,
            &initial,
            &StackConfig::planar(),
            &fast_config(1),
            &mut NoopRecorder,
            &expired,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Cancelled), "{err}");
    }

    #[test]
    fn uncancelled_token_leaves_the_run_bit_identical() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let cfg = fast_config(7);
        let plain = exchange(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
        let token = CancelToken::deadline_in(std::time::Duration::from_secs(3600));
        let tokened = exchange_cancellable(
            &q,
            &initial,
            &StackConfig::planar(),
            &cfg,
            &mut NoopRecorder,
            &token,
        )
        .unwrap();
        assert_eq!(plain, tokened);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(5)).unwrap();
        let s = r.stats;
        assert!(s.accepted <= s.proposed);
        assert!(s.uphill_accepted <= s.accepted);
        assert!(s.constraint_rejected <= s.proposed);
        assert!(s.temperature_steps > 0);
    }
}
