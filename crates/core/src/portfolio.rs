//! Parallel multi-start exchange portfolio with deterministic best-of
//! reduction.
//!
//! One SA trajectory (paper Fig. 14) is seed-sensitive: a single unlucky
//! start can land far from the Table 3 improvements. The portfolio runs
//! `K` independently-seeded starts of the same instance and keeps the
//! best, with two properties that make it safe to wire through the whole
//! stack:
//!
//! * **Thread-count invariance.** Every decision that influences the
//!   result — per-start seeds, prune verdicts, the final reduction — is
//!   made at synchronisation barriers in *start-index order*, never in
//!   thread-completion order. `threads = 1` and `threads = N` produce
//!   byte-identical winners (asserted by tests here and property-tested
//!   in `copack-verify`).
//! * **Never worse than one start.** Start 0 anneals with the base seed
//!   itself ([`derive_seed`]`(base, 0) == base`) and is exempt from
//!   pruning — it always runs its full schedule, exactly as a plain
//!   [`crate::exchange`] with the same seed would — and the reduction
//!   picks the minimum best-so-far cost, so the portfolio's winner costs
//!   at most what the single-start run would. (Pruning start 0 on an
//!   early trailing position would break this: a trajectory behind at a
//!   barrier can still finish ahead.)
//!
//! # Execution model
//!
//! The cooling schedule is cut into [`PortfolioConfig::sync_epochs`]
//! segments. Each *round*, every live start advances one epoch (on up to
//! [`PortfolioConfig::threads`] OS threads); at the barrier any start
//! whose best-so-far trails the **baseline** (start 0's best-so-far) by
//! more than [`PortfolioConfig::prune_margin`] (relative) is abandoned —
//! its driver is dropped, its best cost *and best-prefix journal* frozen
//! as a reduction candidate, and (budget permitting) a freshly-seeded
//! replacement start joins the next round. Replacements take seeds
//! `derive_seed(base, K + j)` so the seed stream never depends on timing.
//! The final epoch runs the schedule to completion, absorbing the
//! ±1-step float rounding of the epoch split.
//!
//! Pruning against the baseline rather than the global leader keeps the
//! verdicts **independent of `K`**: start `k`'s trajectory, and the epoch
//! at which it is pruned, are the same in every portfolio that contains
//! it. Widening the portfolio therefore only *adds* candidates to the
//! final reduction, so the winner's cost is monotone in `K` (pinned by
//! `tests/quality_regression.rs`). Leader-relative pruning broke this:
//! a wider portfolio tightens the early-epoch threshold and can abandon —
//! mid-descent — the very trajectory a narrower portfolio would have
//! carried to the win.
//!
//! The winner's accepted-move journal (and best-prefix length) is
//! returned so the `copack-verify` oracles can replay the trajectory
//! unchanged; [`replay_journal`] is the replay helper.
//!
//! # Cooperative modes
//!
//! [`PortfolioMode`] selects how the starts relate: `race` (the default,
//! bit-identical to the pre-mode portfolio), `coop` (leader crossover on
//! respawn plus an adaptive prune margin) and `temper` (a parallel
//! tempering ladder with deterministic Metropolis swaps at epoch
//! barriers). All three keep the byte-identical-across-threads contract:
//! every mode-specific decision — the crossover parent, the kick swaps,
//! the adaptive margin, each swap verdict — is taken at the barrier, in
//! start-index order, from values that do not depend on thread
//! scheduling. A crossover respawn's journal is re-based onto the
//! portfolio's initial order by storing the parent's best prefix (plus
//! kick swaps) and prepending it on reduction, so the replay contract
//! holds in every mode.

use copack_geom::{Assignment, FingerIdx, NetId, Quadrant, StackConfig};
use copack_obs::{Event, NoopRecorder, Recorder, TraceBuffer};
use copack_route::RangeCache;

use crate::exchange::ExchangeDriver;
use crate::package_plan::effective_threads;
use crate::{CancelToken, CoreError, ExchangeConfig, ExchangeResult};

/// How the portfolio's starts relate to each other.
///
/// `Race` is the original independent-racing model and the default
/// everywhere (CLI, serve, tune): its results, cache keys and goldens
/// are bit-identical to portfolios that predate the cooperative modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PortfolioMode {
    /// Independent racing: starts never exchange information, pruned
    /// slots respawn from a fresh seed, and the prune margin is the
    /// constant [`PortfolioConfig::prune_margin`]. Prune verdicts are
    /// `K`-invariant, so the winner's cost is monotone in `K`.
    #[default]
    Race,
    /// Cooperative ensemble: a pruned slot respawns from the current
    /// leader's best-prefix plan perturbed by a seeded
    /// [`PortfolioConfig::kick_size`]-swap kick, and the prune margin
    /// widens from the observed cross-start cost spread at each epoch
    /// barrier (never below the configured base margin, so every start
    /// that survives a `Race` portfolio also survives here).
    Coop,
    /// Parallel tempering: start `r` anneals on temperature rung
    /// `initial_temp_factor · ladder_ratio^r`, nothing is ever pruned,
    /// and adjacent rungs propose a deterministic Metropolis swap of
    /// thermal states at each epoch barrier (even pairs on even
    /// barriers, odd pairs on odd ones).
    Temper,
}

impl PortfolioMode {
    /// Stable lowercase tag, used by the CLI, the wire protocol, cache
    /// keys and `.tune` profiles.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Race => "race",
            Self::Coop => "coop",
            Self::Temper => "temper",
        }
    }

    /// Parses [`PortfolioMode::as_str`] back; `None` for unknown tags.
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag {
            "race" => Some(Self::Race),
            "coop" => Some(Self::Coop),
            "temper" => Some(Self::Temper),
            _ => None,
        }
    }
}

/// Configuration of a multi-start exchange portfolio.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioConfig {
    /// Number of independently-seeded starts, `K ≥ 1`. `K = 1` runs the
    /// plain kernel (bit-identical to [`crate::exchange`]).
    pub starts: u32,
    /// Relative prune margin: at each sync epoch a start is abandoned
    /// when `best > baseline + prune_margin · (|baseline| + 1)`, where
    /// `baseline` is start 0's best-so-far. `0.0` prunes every start
    /// trailing the baseline; `f64::INFINITY` disables pruning. Start 0
    /// (the caller's seed) is never pruned regardless of margin, so the
    /// threshold — and with it every prune verdict — is the same in every
    /// portfolio width `K`.
    pub prune_margin: f64,
    /// Number of synchronisation epochs the cooling schedule is cut
    /// into, `≥ 1`. More epochs prune earlier but synchronise more often.
    pub sync_epochs: u32,
    /// Worker threads (`0` = available parallelism, `1` = serial). Has
    /// no effect on results, only on wall clock.
    pub threads: usize,
    /// How the starts cooperate. Defaults to [`PortfolioMode::Race`].
    pub mode: PortfolioMode,
    /// `Coop` only: number of seeded adjacent swaps a crossover respawn
    /// applies to the leader's plan before re-annealing, `≥ 1`. Inert in
    /// the other modes.
    pub kick_size: u32,
    /// `Temper` only: geometric spacing of the temperature ladder,
    /// `≥ 1.0` and finite (rung `r` heats the initial temperature by
    /// `ladder_ratio^r`; `1.0` collapses the ladder onto one rung).
    /// Inert in the other modes.
    pub ladder_ratio: f64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self {
            starts: 4,
            prune_margin: 0.25,
            sync_epochs: 4,
            threads: 0,
            mode: PortfolioMode::Race,
            kick_size: 4,
            ladder_ratio: 1.5,
        }
    }
}

impl PortfolioConfig {
    /// Whether the configuration is usable.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.starts >= 1
            && self.sync_epochs >= 1
            && self.prune_margin >= 0.0
            && self.kick_size >= 1
            && self.ladder_ratio.is_finite()
            && self.ladder_ratio >= 1.0
    }
}

/// Outcome of one start, reported whether it won, lost or was pruned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartReport {
    /// Start index: `0..K` are the original starts, `K..` replacements.
    pub start: u32,
    /// The derived seed the start annealed with.
    pub seed: u64,
    /// Best Eq. 3 cost the start reached before finishing (or being
    /// frozen by a prune).
    pub best_cost: f64,
    /// The start's sync epoch at which it was pruned, if it was.
    pub pruned_at: Option<u32>,
}

/// Outcome of a portfolio run.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioResult {
    /// The winning start's [`ExchangeResult`] (assignment + stats),
    /// exactly as a solo run with the winning seed would return it.
    pub result: ExchangeResult,
    /// Index of the winning start.
    pub winner_start: u32,
    /// Seed the winning start annealed with.
    pub winner_seed: u64,
    /// The winner's accepted-move journal (1-based finger-slot pairs).
    pub journal: Vec<(u32, u32)>,
    /// Length of the journal prefix that produced the winner's best cost.
    pub best_len: usize,
    /// Per-start outcomes in start-index order (originals then
    /// replacements).
    pub starts: Vec<StartReport>,
}

impl PortfolioResult {
    /// Number of starts that were pruned.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.starts.iter().filter(|s| s.pruned_at.is_some()).count()
    }
}

/// Derives the seed of start `k` from the portfolio's base seed.
///
/// Start 0 keeps the base seed itself, so every portfolio contains the
/// plain single-start trajectory and `K = 1` is bit-identical to
/// [`crate::exchange`]. Starts `k ≥ 1` (and pruned-start replacements,
/// which take `k = K, K+1, …`) use the SplitMix64 finalizer over
/// `base + k·γ` — statistically independent streams from one u64, with
/// no RNG state to thread between starts.
#[must_use]
pub fn derive_seed(base: u64, k: u32) -> u64 {
    if k == 0 {
        return base;
    }
    let mut z = base.wrapping_add(u64::from(k).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Replays `best_len` journal entries onto `initial` — the reduction the
/// kernel itself performs, exposed so the `copack-verify` oracles can
/// reproduce a portfolio winner from its journal.
///
/// # Errors
///
/// Propagates [`Assignment::swap`] failures (an out-of-range slot means
/// the journal does not belong to this instance).
pub fn replay_journal(
    initial: &Assignment,
    journal: &[(u32, u32)],
    best_len: usize,
) -> Result<Assignment, CoreError> {
    let mut a = initial.clone();
    for &(x, y) in &journal[..best_len] {
        a.swap(FingerIdx::new(x), FingerIdx::new(y))?;
    }
    Ok(a)
}

/// Salt folded into the base seed before deriving a crossover kick
/// stream, so kick randomness never collides with the per-start
/// annealing seeds derived from the same base.
const KICK_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Metropolis acceptance probability of a tempering swap between two
/// rungs holding states of cost `cost_a`/`cost_b` at temperatures
/// `temp_a`/`temp_b`: `min(1, exp((1/Tₐ − 1/T_b)(Eₐ − E_b)))`.
///
/// Exposed so `tests/tempering_invariants.rs` can re-derive every swap
/// verdict from the `PortfolioSwap` event fields alone.
#[must_use]
pub fn tempering_swap_probability(cost_a: f64, cost_b: f64, temp_a: f64, temp_b: f64) -> f64 {
    let beta_a = 1.0 / temp_a.max(f64::MIN_POSITIVE);
    let beta_b = 1.0 / temp_b.max(f64::MIN_POSITIVE);
    ((beta_a - beta_b) * (cost_a - cost_b)).exp().min(1.0)
}

/// The uniform draw a tempering swap compares against: the SplitMix64
/// finalizer over `(seed, epoch, rung)`, mapped to `[0, 1)`. Epoch-major
/// and start-indexed, so the verdict is a pure function of the barrier —
/// never of thread scheduling.
#[must_use]
pub fn tempering_swap_draw(seed: u64, epoch: u32, rung: u32) -> f64 {
    let lane = (u64::from(epoch) << 32) | u64::from(rung);
    let mut z = seed
        .wrapping_add(0x632B_E592_86AA_633B)
        .wrapping_add(lane.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Whether the rung pair `(rung, rung+1)` swaps thermal states at
/// `epoch`: draw < probability, both sides deterministic functions of
/// `(seed, epoch, rung, costs, temps)`.
#[must_use]
pub fn tempering_swap_accepts(
    seed: u64,
    epoch: u32,
    rung: u32,
    cost_a: f64,
    cost_b: f64,
    temp_a: f64,
    temp_b: f64,
) -> bool {
    tempering_swap_draw(seed, epoch, rung)
        < tempering_swap_probability(cost_a, cost_b, temp_a, temp_b)
}

/// Applies up to `kick_size` seeded adjacent swaps to `a`, each checked
/// against the kernel's own range constraint (mover's target inside its
/// span, displaced neighbour's new slot inside its own), and returns the
/// journal entries of the swaps actually applied. Proposals that fail
/// the constraint are skipped, bounded by `8 · kick_size` attempts, so a
/// tightly-constrained instance degrades to a smaller (possibly empty)
/// kick instead of looping.
fn kick_plan(
    quadrant: &Quadrant,
    a: &mut Assignment,
    seed: u64,
    kick_size: u32,
) -> Result<Vec<(u32, u32)>, CoreError> {
    let alpha = a.finger_count();
    if alpha < 2 {
        return Ok(Vec::new());
    }
    let mut cache = RangeCache::new(quadrant, a)?;
    let ids: Vec<NetId> = quadrant.nets().map(|n| n.id).collect();
    let mut pos1: Vec<u32> = vec![0; ids.len()];
    let mut slot_net: Vec<Option<usize>> = vec![None; alpha];
    for (i, &id) in ids.iter().enumerate() {
        if let Some(p) = a.position_of(id) {
            pos1[i] = p.get();
            slot_net[p.zero_based()] = Some(i);
        }
    }
    let mut swaps = Vec::with_capacity(kick_size as usize);
    let mut state = seed;
    for _ in 0..kick_size.saturating_mul(8) {
        if swaps.len() >= kick_size as usize {
            break;
        }
        // SplitMix64 step → left slot of the proposed adjacent pair.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let s = 1 + u32::try_from(z % (alpha as u64 - 1)).expect("slot fits u32");
        let (Some(li), Some(ri)) = (slot_net[(s - 1) as usize], slot_net[s as usize]) else {
            continue;
        };
        let (llo, lhi) = cache.range(li);
        if s + 1 < llo.get() || s + 1 > lhi.get() {
            continue;
        }
        let (rlo, rhi) = cache.range(ri);
        if s < rlo.get() || s > rhi.get() {
            continue;
        }
        a.swap(FingerIdx::new(s), FingerIdx::new(s + 1))?;
        slot_net.swap((s - 1) as usize, s as usize);
        pos1[li] = s + 1;
        pos1[ri] = s;
        cache.note_moved(li, &pos1);
        cache.note_moved(ri, &pos1);
        swaps.push((s, s + 1));
    }
    Ok(swaps)
}

/// One start's in-flight state.
struct Run<'a> {
    start: u32,
    seed: u64,
    driver: Option<ExchangeDriver<'a>>,
    buffer: TraceBuffer,
    /// Epochs this run has completed.
    epochs_done: u32,
    pruned_at: Option<u32>,
    /// Best cost, frozen at prune time (mirrors the driver's while live).
    frozen_best: f64,
    /// The best-prefix journal and stats frozen at prune time, kept as a
    /// best-of candidate so abandoning a start never discards its
    /// trajectory from the reduction.
    frozen: Option<crate::exchange::FrozenRun>,
    /// Journal prefix this run's driver was seeded from, relative to the
    /// *portfolio's* initial order. Empty for fresh starts; a `Coop`
    /// crossover respawn carries its parent's best prefix plus the kick
    /// swaps here, so `prefix ++ own journal` always replays from the
    /// global initial.
    prefix: Vec<(u32, u32)>,
    failure: Option<CoreError>,
}

impl Run<'_> {
    fn best_cost(&self) -> f64 {
        self.driver
            .as_ref()
            .map_or(self.frozen_best, ExchangeDriver::best_cost)
    }

    fn is_finished(&self) -> bool {
        self.driver.as_ref().map_or(true, ExchangeDriver::is_done)
    }

    /// Advances this run's next epoch (`budget` steps, or to the end on
    /// the final epoch). Failures are parked in `self.failure` so the
    /// threaded path needs no cross-thread error channel.
    fn advance_epoch(&mut self, budget: usize, last: bool, rec_on: bool, cancel: &CancelToken) {
        let Some(driver) = &mut self.driver else {
            return;
        };
        if driver.is_done() {
            return;
        }
        let outcome = if rec_on {
            if last {
                driver.run_to_end(&mut self.buffer, cancel)
            } else {
                driver.advance(budget, &mut self.buffer, cancel)
            }
        } else {
            let mut noop = NoopRecorder;
            if last {
                driver.run_to_end(&mut noop, cancel)
            } else {
                driver.advance(budget, &mut noop, cancel)
            }
        };
        self.epochs_done += 1;
        if let Err(e) = outcome {
            self.failure = Some(e);
        }
    }
}

/// Runs a `K`-start exchange portfolio and returns the deterministic
/// best-of reduction. See the module docs for the execution model.
///
/// # Errors
///
/// As [`crate::exchange`], plus [`CoreError::BadConfig`] for an invalid
/// [`PortfolioConfig`].
pub fn exchange_portfolio(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    portfolio: &PortfolioConfig,
) -> Result<PortfolioResult, CoreError> {
    exchange_portfolio_traced(
        quadrant,
        initial,
        stack,
        config,
        portfolio,
        &mut NoopRecorder,
    )
}

/// [`exchange_portfolio`] with telemetry.
///
/// Each start records into a private [`TraceBuffer`]; the buffers are
/// merged into `recorder` in start-index order after the last round, so
/// the merged trace is identical for every thread count. Each start's
/// trace opens with [`Event::PortfolioStart`] and, if it was abandoned,
/// closes with [`Event::PortfolioPrune`]; only the winner emits
/// `RunEnd`.
///
/// # Errors
///
/// As [`exchange_portfolio`].
pub fn exchange_portfolio_traced(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    portfolio: &PortfolioConfig,
    recorder: &mut dyn Recorder,
) -> Result<PortfolioResult, CoreError> {
    exchange_portfolio_cancellable(
        quadrant,
        initial,
        stack,
        config,
        portfolio,
        recorder,
        &CancelToken::default(),
    )
}

/// [`exchange_portfolio_traced`] honoring a [`CancelToken`] (polled by
/// every live start; the first cancellation, in start-index order, is
/// propagated).
///
/// # Errors
///
/// As [`exchange_portfolio`], plus [`CoreError::Cancelled`].
pub fn exchange_portfolio_cancellable(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    portfolio: &PortfolioConfig,
    recorder: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<PortfolioResult, CoreError> {
    if !portfolio.is_valid() {
        return Err(CoreError::BadConfig {
            parameter: "portfolio",
        });
    }
    let k = portfolio.starts;
    let epochs = portfolio.sync_epochs;
    let total_steps = config.schedule.temperature_steps();
    let rec_on = recorder.enabled();
    let rec_rejected = rec_on && recorder.wants_rejected();

    /// Everything a `Coop` crossover respawn starts from: the kicked
    /// plan, its journal relative to the portfolio's initial order, and
    /// the provenance the `PortfolioCrossover` event reports.
    struct CrossoverSpawn {
        plan: Assignment,
        prefix: Vec<(u32, u32)>,
        parent: u32,
        parent_cost: f64,
        epoch: u32,
        kick: u32,
    }

    let mode = portfolio.mode;
    let spawn = |start: u32, cross: Option<CrossoverSpawn>| -> Result<Run<'_>, CoreError> {
        let seed = derive_seed(config.seed, start);
        let mut cfg = ExchangeConfig {
            seed,
            ..config.clone()
        };
        if mode == PortfolioMode::Temper && start > 0 {
            // Temperature rung `start`: geometric ladder over the base
            // schedule. The step count depends only on `final_temp_ratio`
            // and `cooling`, so every rung runs the same number of
            // temperature steps and the ladder stays in lockstep.
            cfg.schedule.initial_temp_factor *= portfolio
                .ladder_ratio
                .powi(i32::try_from(start).expect("start index fits i32"));
        }
        let (plan, prefix, origin) = match cross {
            Some(c) => (
                Some(c.plan),
                c.prefix,
                Some((c.parent, c.parent_cost, c.epoch, c.kick)),
            ),
            None => (None, Vec::new(), None),
        };
        let mut buffer = if rec_rejected {
            TraceBuffer::with_rejected()
        } else {
            TraceBuffer::new()
        };
        let from = plan.as_ref().unwrap_or(initial);
        let driver = if rec_on {
            buffer.push(Event::PortfolioStart { start, seed });
            if let Some((parent, parent_cost, epoch, kick)) = origin {
                buffer.push(Event::PortfolioCrossover {
                    start,
                    parent,
                    epoch,
                    kick,
                    parent_cost,
                });
            }
            ExchangeDriver::new(quadrant, from, stack, &cfg, &mut buffer)?
        } else {
            ExchangeDriver::new(quadrant, from, stack, &cfg, &mut NoopRecorder)?
        };
        Ok(Run {
            start,
            seed,
            driver: Some(driver),
            buffer,
            epochs_done: 0,
            pruned_at: None,
            frozen_best: f64::INFINITY,
            frozen: None,
            prefix,
            failure: None,
        })
    };

    let mut runs: Vec<Run<'_>> = (0..k).map(|s| spawn(s, None)).collect::<Result<_, _>>()?;
    // Replacement budget: at most K extra starts over the whole run, so
    // aggressive margins cannot spawn unboundedly.
    let mut replacements_left = k;
    let mut next_start = k;

    // Integer split of the schedule into epochs; the final epoch runs to
    // the true end of the schedule instead of a step count, absorbing the
    // ±1-step rounding of `temperature_steps()`.
    let budget_of = |epoch: u32| -> usize {
        let (e, n) = (epoch as usize, epochs as usize);
        ((e + 1) * total_steps) / n - (e * total_steps) / n
    };

    while runs.iter().any(|r| !r.is_finished()) {
        // Advance every live, unfinished run one epoch.
        let workers = effective_threads(portfolio.threads).min(runs.len()).max(1);
        if workers == 1 {
            for run in &mut runs {
                let epoch = run.epochs_done;
                run.advance_epoch(budget_of(epoch), epoch + 1 >= epochs, rec_on, cancel);
            }
        } else {
            let chunk = runs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for slice in runs.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for run in slice {
                            let epoch = run.epochs_done;
                            run.advance_epoch(
                                budget_of(epoch),
                                epoch + 1 >= epochs,
                                rec_on,
                                cancel,
                            );
                        }
                    });
                }
            });
        }
        // Barrier: propagate the first failure in start-index order.
        for run in &mut runs {
            if let Some(e) = run.failure.take() {
                return Err(e);
            }
        }
        // The barrier index every epoch-major decision below keys on:
        // start 0 (always `runs[0]`, never pruned) has completed exactly
        // one epoch per round.
        let barrier_epoch = runs[0].epochs_done.saturating_sub(1);

        if mode == PortfolioMode::Temper {
            // Parallel tempering: no pruning — every rung survives to the
            // end — and adjacent rungs propose a Metropolis swap of
            // thermal states while the whole ladder is still live.
            // Even-indexed pairs on even barriers, odd-indexed on odd
            // ones, each verdict a pure function of (seed, barrier, rung,
            // current costs, temperatures) — epoch-major, so threads
            // 1 and N agree bit-for-bit.
            if runs.len() > 1 && runs.iter().all(|r| !r.is_finished()) {
                let mut i = (barrier_epoch % 2) as usize;
                while i + 1 < runs.len() {
                    let (head, tail) = runs.split_at_mut(i + 1);
                    let ra = &mut head[i];
                    let rb = &mut tail[0];
                    if let (Some(da), Some(db)) = (ra.driver.as_mut(), rb.driver.as_mut()) {
                        let (cost_a, cost_b) = (da.current_cost(), db.current_cost());
                        let ((temp_a, fin_a), (temp_b, fin_b)) = (da.thermal(), db.thermal());
                        let accepted = tempering_swap_accepts(
                            config.seed,
                            barrier_epoch,
                            u32::try_from(i).expect("rung index fits u32"),
                            cost_a,
                            cost_b,
                            temp_a,
                            temp_b,
                        );
                        if accepted {
                            da.set_thermal(temp_b, fin_b);
                            db.set_thermal(temp_a, fin_a);
                        }
                        if rec_on {
                            ra.buffer.push(Event::PortfolioSwap {
                                epoch: barrier_epoch,
                                start_a: ra.start,
                                start_b: rb.start,
                                cost_a,
                                cost_b,
                                temp_a,
                                temp_b,
                                accepted,
                            });
                        }
                    }
                    i += 2;
                }
            }
            continue;
        }

        // Prune verdicts, in start-index order against the baseline —
        // start 0's best-so-far. Start 0 is exempt: it carries the
        // caller's seed, always survives (so at least one start does),
        // and keeping it alive to the end makes the K-start winner never
        // worse than the K = 1 run. In `Race` the threshold depends only
        // on start 0's (K-invariant) trajectory, so each start is pruned
        // at the same epoch in every portfolio that contains it — the
        // property that makes the winner's cost monotone in K.
        let baseline_best = runs
            .iter()
            .find(|r| r.start == 0)
            .expect("start 0 is never removed")
            .best_cost();
        let margin = if mode == PortfolioMode::Coop {
            // Adaptive margin: widen to the observed relative best-cost
            // spread of the live starts, clamped to [base, 4·base].
            // Widen-only, so every original start that survives a `Race`
            // portfolio (identical trajectory, identical barrier costs)
            // also survives here; folding min/max in start-index order
            // keeps the value bit-identical for every thread count.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut live = 0u32;
            for run in &runs {
                if run.driver.is_some() {
                    let b = run.best_cost();
                    lo = lo.min(b);
                    hi = hi.max(b);
                    live += 1;
                }
            }
            let spread = ((hi - lo) / (baseline_best.abs() + 1.0)).max(0.0);
            let widened = spread.clamp(portfolio.prune_margin, 4.0 * portfolio.prune_margin);
            if rec_on {
                runs[0].buffer.push(Event::PortfolioMargin {
                    epoch: barrier_epoch,
                    margin: widened,
                    spread,
                    live,
                });
            }
            widened
        } else {
            portfolio.prune_margin
        };
        let threshold = margin.mul_add(baseline_best.abs() + 1.0, baseline_best);
        let mut spawn_requests = 0u32;
        for run in &mut runs {
            if run.start == 0 || run.driver.is_none() || run.is_finished() {
                continue;
            }
            let best = run.best_cost();
            if best > threshold {
                run.frozen_best = best;
                run.pruned_at = Some(run.epochs_done.saturating_sub(1));
                // Fold the pruned trajectory into the reduction instead
                // of discarding it with the driver.
                run.frozen = run.driver.as_ref().map(ExchangeDriver::freeze);
                run.driver = None;
                if rec_on {
                    run.buffer.push(Event::PortfolioPrune {
                        start: run.start,
                        epoch: run.epochs_done.saturating_sub(1),
                        best_cost: best,
                        global_best: baseline_best,
                    });
                }
                if replacements_left > 0 {
                    replacements_left -= 1;
                    spawn_requests += 1;
                }
            }
        }
        if spawn_requests > 0 && mode == PortfolioMode::Coop {
            // Crossover respawns: seed each replacement from the current
            // leader's best-prefix plan, perturbed by a deterministic
            // `kick_size`-swap kick. The leader is chosen by the same
            // (best cost, start index) order as the final reduction, over
            // live and just-frozen trajectories alike, so the choice is
            // thread-count invariant.
            let leader = runs
                .iter()
                .filter(|r| r.driver.is_some() || r.frozen.is_some())
                .min_by(|a, b| {
                    a.best_cost()
                        .partial_cmp(&b.best_cost())
                        .expect("costs are finite")
                        .then(a.start.cmp(&b.start))
                })
                .expect("start 0 is never removed");
            let mut full = leader.prefix.clone();
            match (&leader.driver, &leader.frozen) {
                (Some(d), _) => full.extend_from_slice(&d.journal()[..d.best_len()]),
                (None, Some(f)) => full.extend_from_slice(&f.0[..f.1]),
                (None, None) => unreachable!("leader candidates hold a driver or a frozen run"),
            }
            let (parent, parent_cost) = (leader.start, leader.best_cost());
            for _ in 0..spawn_requests {
                let mut plan = replay_journal(initial, &full, full.len())?;
                let kick_seed = derive_seed(config.seed ^ KICK_SALT, next_start);
                let kicks = kick_plan(quadrant, &mut plan, kick_seed, portfolio.kick_size)?;
                let mut prefix = full.clone();
                prefix.extend_from_slice(&kicks);
                let run = spawn(
                    next_start,
                    Some(CrossoverSpawn {
                        plan,
                        prefix,
                        parent,
                        parent_cost,
                        epoch: barrier_epoch,
                        kick: u32::try_from(kicks.len()).expect("kick count fits u32"),
                    }),
                )?;
                next_start += 1;
                runs.push(run);
            }
        } else {
            for _ in 0..spawn_requests {
                let run = spawn(next_start, None)?;
                next_start += 1;
                runs.push(run);
            }
        }
    }

    // Deterministic reduction: minimum (best cost, start index) over
    // *every* run — live finishers and pruned starts' frozen journals
    // alike. (A pruned run's frozen best strictly exceeded the baseline's
    // best-so-far when it was dropped, and the baseline only improves, so
    // in practice a frozen candidate never wins — but folding it in keeps
    // the reduction correct under any future prune rule, and the frozen
    // journal is what the replay path needs if one ever does.)
    let winner_idx = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.driver.is_some() || r.frozen.is_some())
        .min_by(|(_, a), (_, b)| {
            a.best_cost()
                .partial_cmp(&b.best_cost())
                .expect("costs are finite")
                .then(a.start.cmp(&b.start))
        })
        .map(|(i, _)| i)
        .expect("start 0 is never pruned");

    // Finish the winner (rematerialise + RunEnd into its own buffer),
    // then merge every start's trace in start-index order. A pruned
    // winner rematerialises from its frozen best-prefix journal.
    let (result, journal, best_len) = {
        let run = &mut runs[winner_idx];
        // A crossover winner's own journal is relative to its kicked
        // starting plan; prepending the stored prefix re-bases it onto
        // the portfolio's initial order, so the replay contract — and
        // every `copack-verify` oracle built on it — holds in all modes.
        // For fresh starts the prefix is empty and nothing changes.
        let prefix = std::mem::take(&mut run.prefix);
        if let Some(driver) = run.driver.as_mut() {
            let result = if rec_on {
                driver.finish(&mut run.buffer)?
            } else {
                driver.finish(&mut NoopRecorder)?
            };
            let best_len = prefix.len() + driver.best_len();
            let mut journal = prefix;
            journal.extend_from_slice(driver.journal());
            (result, journal, best_len)
        } else {
            let (own, own_best, stats) = run.frozen.take().expect("pruned winner was frozen");
            let best_len = prefix.len() + own_best;
            let mut journal = prefix;
            journal.extend_from_slice(&own);
            let assignment = replay_journal(initial, &journal, best_len)?;
            (ExchangeResult { assignment, stats }, journal, best_len)
        }
    };
    let mut starts = Vec::with_capacity(runs.len());
    for run in &mut runs {
        starts.push(StartReport {
            start: run.start,
            seed: run.seed,
            best_cost: run.best_cost(),
            pruned_at: run.pruned_at,
        });
        if rec_on {
            for event in run.buffer.events() {
                recorder.record(event);
            }
        }
    }
    let winner = &runs[winner_idx];
    Ok(PortfolioResult {
        result,
        winner_start: winner.start,
        winner_seed: winner.seed,
        journal,
        best_len,
        starts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exchange, random_assignment, Schedule};
    use copack_geom::NetKind;

    fn fast_config(seed: u64) -> ExchangeConfig {
        ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 2,
                final_temp_ratio: 1e-2,
                ..Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        }
    }

    /// Fig. 5 instance with power nets sprinkled in (the exchange test
    /// fixture) plus a random initial order.
    fn case() -> (Quadrant, Assignment) {
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(9u32, NetKind::Power)
            .net_kind(0u32, NetKind::Ground)
            .build()
            .expect("fixture builds");
        let a = random_assignment(&q, 7).expect("assignable");
        (q, a)
    }

    /// A 48-finger, 4-row instance: big enough that different seeds reach
    /// genuinely different best costs, so pruning has something to do.
    fn big_case() -> (Quadrant, Assignment) {
        let mut b = Quadrant::builder();
        let mut id = 0u32;
        for _ in 0..4 {
            let row: Vec<u32> = (0..12)
                .map(|_| {
                    id += 1;
                    id
                })
                .collect();
            b = b.row(row);
        }
        for p in [1u32, 5, 9, 14, 20, 26, 33, 40, 47] {
            b = b.net_kind(p, NetKind::Power);
        }
        let q = b.build().expect("fixture builds");
        let a = random_assignment(&q, 7).expect("assignable");
        (q, a)
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(0xC0DE, 0), 0xC0DE);
        let seeds: Vec<u64> = (0..16).map(|k| derive_seed(0xC0DE, k)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision: {seeds:?}");
        // Stable across releases: pinned spot value.
        assert_eq!(derive_seed(0, 1), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 1), derive_seed(1, 1));
    }

    #[test]
    fn single_start_portfolio_matches_plain_exchange_bit_for_bit() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0x5EED);
        let solo = exchange(&q, &a, &stack, &cfg).expect("solo run");
        let portfolio = exchange_portfolio(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig {
                starts: 1,
                threads: 1,
                ..PortfolioConfig::default()
            },
        )
        .expect("portfolio run");
        assert_eq!(portfolio.result, solo);
        assert_eq!(portfolio.winner_start, 0);
        assert_eq!(portfolio.winner_seed, 0x5EED);
    }

    #[test]
    fn thread_count_never_changes_the_winner() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xC0DE);
        let base = PortfolioConfig {
            starts: 5,
            prune_margin: 0.05,
            sync_epochs: 4,
            threads: 1,
            ..PortfolioConfig::default()
        };
        let serial = exchange_portfolio(&q, &a, &stack, &cfg, &base).expect("serial portfolio");
        for threads in [2, 8] {
            let threaded =
                exchange_portfolio(&q, &a, &stack, &cfg, &PortfolioConfig { threads, ..base })
                    .expect("threaded portfolio");
            assert_eq!(threaded, serial, "threads={threads}");
        }
    }

    #[test]
    fn portfolio_winner_is_never_worse_than_single_start() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xBEEF);
        let solo = exchange(&q, &a, &stack, &cfg).expect("solo run");
        let portfolio = exchange_portfolio(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig {
                starts: 8,
                threads: 0,
                ..PortfolioConfig::default()
            },
        )
        .expect("portfolio run");
        assert!(
            portfolio.result.stats.final_cost <= solo.stats.final_cost,
            "portfolio {} > solo {}",
            portfolio.result.stats.final_cost,
            solo.stats.final_cost
        );
    }

    /// The regression a starved schedule exposed: under aggressive
    /// pruning the baseline start can trail at an early barrier, and
    /// pruning it there lets the whole portfolio finish *worse* than the
    /// K = 1 run (a trajectory behind at a barrier can still finish
    /// ahead). Start 0 is exempt from pruning, so the never-worse
    /// guarantee must hold even in this regime.
    #[test]
    fn the_baseline_start_survives_aggressive_pruning() {
        let (q, a) = big_case();
        let stack = StackConfig::default();
        let cfg = ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 1,
                final_temp_ratio: 5e-2,
                cooling: 0.7,
                ..Schedule::default()
            },
            seed: 0x5EED_2009,
            ..ExchangeConfig::default()
        };
        let solo = exchange(&q, &a, &stack, &cfg).expect("solo run");
        for margin in [0.0, 0.05, 0.25] {
            let portfolio = exchange_portfolio(
                &q,
                &a,
                &stack,
                &cfg,
                &PortfolioConfig {
                    starts: 8,
                    prune_margin: margin,
                    sync_epochs: 8,
                    threads: 1,
                    ..PortfolioConfig::default()
                },
            )
            .expect("portfolio run");
            let baseline = portfolio
                .starts
                .iter()
                .find(|s| s.start == 0)
                .expect("start 0 is reported");
            assert!(
                baseline.pruned_at.is_none(),
                "margin {margin}: the baseline start was pruned"
            );
            assert!(
                portfolio.result.stats.final_cost <= solo.stats.final_cost,
                "margin {margin}: portfolio {} > solo {}",
                portfolio.result.stats.final_cost,
                solo.stats.final_cost
            );
        }
    }

    #[test]
    fn winner_journal_replays_to_the_winning_assignment() {
        let (q, a) = case();
        let portfolio = exchange_portfolio(
            &q,
            &a,
            &StackConfig::default(),
            &fast_config(0xF00D),
            &PortfolioConfig::default(),
        )
        .expect("portfolio run");
        let replayed =
            replay_journal(&a, &portfolio.journal, portfolio.best_len).expect("journal replays");
        assert_eq!(replayed, portfolio.result.assignment);
    }

    #[test]
    fn zero_margin_prunes_and_spawns_replacements_deterministically() {
        let (q, a) = big_case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xABBA);
        let base = PortfolioConfig {
            starts: 6,
            prune_margin: 0.0,
            sync_epochs: 24,
            threads: 1,
            ..PortfolioConfig::default()
        };
        let serial = exchange_portfolio(&q, &a, &stack, &cfg, &base).expect("serial");
        assert!(serial.pruned() > 0, "zero margin should prune something");
        // At least one survivor, and the winner is never a pruned start.
        let winner = serial
            .starts
            .iter()
            .find(|s| s.start == serial.winner_start)
            .expect("winner is reported");
        assert!(winner.pruned_at.is_none());
        let threaded = exchange_portfolio(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig { threads: 4, ..base },
        )
        .expect("threaded");
        assert_eq!(threaded, serial);
    }

    #[test]
    fn pruned_starts_never_beat_the_winner() {
        let (q, a) = big_case();
        let portfolio = exchange_portfolio(
            &q,
            &a,
            &StackConfig::default(),
            &fast_config(0xD1CE),
            &PortfolioConfig {
                starts: 8,
                prune_margin: 0.01,
                sync_epochs: 8,
                threads: 1,
                ..PortfolioConfig::default()
            },
        )
        .expect("portfolio run");
        let winner_cost = portfolio.result.stats.final_cost;
        for s in portfolio.starts.iter().filter(|s| s.pruned_at.is_some()) {
            assert!(
                s.best_cost >= winner_cost,
                "pruned start {} at {} beat winner at {}",
                s.start,
                s.best_cost,
                winner_cost
            );
        }
    }

    #[test]
    fn trace_merges_in_start_order_and_is_thread_invariant() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0x7EAC);
        let base = PortfolioConfig {
            starts: 4,
            prune_margin: 0.1,
            sync_epochs: 3,
            threads: 1,
            ..PortfolioConfig::default()
        };
        let mut buf1 = TraceBuffer::new();
        let r1 = exchange_portfolio_traced(&q, &a, &stack, &cfg, &base, &mut buf1)
            .expect("traced serial");
        let mut buf8 = TraceBuffer::new();
        let r8 = exchange_portfolio_traced(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig { threads: 8, ..base },
            &mut buf8,
        )
        .expect("traced threaded");
        assert_eq!(r1, r8);
        assert_eq!(buf1.events(), buf8.events());
        // Starts are announced in index order.
        let announced: Vec<u32> = buf1
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::PortfolioStart { start, .. } => Some(*start),
                _ => None,
            })
            .collect();
        let mut sorted = announced.clone();
        sorted.sort_unstable();
        assert_eq!(announced, sorted);
        assert!(announced.len() >= 4);
        // Exactly one RunEnd: the winner's.
        let run_ends = buf1
            .events()
            .iter()
            .filter(|e| matches!(e, Event::RunEnd { .. }))
            .count();
        assert_eq!(run_ends, 1);
    }

    #[test]
    fn cancelled_token_aborts_the_portfolio() {
        let (q, a) = case();
        let token = CancelToken::new();
        token.cancel();
        let err = exchange_portfolio_cancellable(
            &q,
            &a,
            &StackConfig::default(),
            &fast_config(1),
            &PortfolioConfig::default(),
            &mut NoopRecorder,
            &token,
        )
        .expect_err("cancelled run must fail");
        assert!(matches!(err, CoreError::Cancelled));
    }

    #[test]
    fn mode_tags_round_trip() {
        for mode in [
            PortfolioMode::Race,
            PortfolioMode::Coop,
            PortfolioMode::Temper,
        ] {
            assert_eq!(PortfolioMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(PortfolioMode::parse("anneal"), None);
        assert_eq!(PortfolioMode::default(), PortfolioMode::Race);
    }

    #[test]
    fn default_config_still_races() {
        // The default mode must stay `race` forever: every pre-mode
        // golden, cache key and oracle depends on it.
        assert_eq!(PortfolioConfig::default().mode, PortfolioMode::Race);
    }

    #[test]
    fn cooperative_modes_are_thread_count_invariant() {
        let (q, a) = big_case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xC0DE);
        for mode in [PortfolioMode::Coop, PortfolioMode::Temper] {
            let base = PortfolioConfig {
                starts: 5,
                prune_margin: 0.05,
                sync_epochs: 4,
                threads: 1,
                mode,
                ..PortfolioConfig::default()
            };
            let mut buf1 = TraceBuffer::new();
            let serial = exchange_portfolio_traced(&q, &a, &stack, &cfg, &base, &mut buf1)
                .expect("serial portfolio");
            for threads in [2, 8] {
                let mut bufn = TraceBuffer::new();
                let threaded = exchange_portfolio_traced(
                    &q,
                    &a,
                    &stack,
                    &cfg,
                    &PortfolioConfig {
                        threads,
                        ..base.clone()
                    },
                    &mut bufn,
                )
                .expect("threaded portfolio");
                assert_eq!(threaded, serial, "mode {mode:?} threads {threads}");
                assert_eq!(buf1.events(), bufn.events(), "mode {mode:?} trace");
            }
        }
    }

    #[test]
    fn cooperative_winners_replay_from_the_global_initial() {
        let (q, a) = big_case();
        let stack = StackConfig::default();
        let cfg = ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 1,
                final_temp_ratio: 5e-2,
                cooling: 0.7,
                ..Schedule::default()
            },
            seed: 0xD0_5EED,
            ..ExchangeConfig::default()
        };
        for mode in [PortfolioMode::Coop, PortfolioMode::Temper] {
            let portfolio = exchange_portfolio(
                &q,
                &a,
                &stack,
                &cfg,
                &PortfolioConfig {
                    starts: 8,
                    prune_margin: 0.0,
                    sync_epochs: 8,
                    threads: 1,
                    mode,
                    ..PortfolioConfig::default()
                },
            )
            .expect("portfolio run");
            let replayed = replay_journal(&a, &portfolio.journal, portfolio.best_len)
                .expect("journal replays");
            assert_eq!(
                replayed, portfolio.result.assignment,
                "mode {mode:?}: composed journal must replay to the winner"
            );
        }
    }

    #[test]
    fn coop_zero_margin_prunes_spawn_crossovers() {
        let (q, a) = big_case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xABBA);
        let mut buf = TraceBuffer::new();
        let result = exchange_portfolio_traced(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig {
                starts: 6,
                prune_margin: 0.0,
                sync_epochs: 24,
                threads: 1,
                mode: PortfolioMode::Coop,
                ..PortfolioConfig::default()
            },
            &mut buf,
        )
        .expect("coop portfolio");
        assert!(result.pruned() > 0, "zero margin should prune something");
        let crossovers: Vec<(u32, u32)> = buf
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::PortfolioCrossover { start, parent, .. } => Some((*start, *parent)),
                _ => None,
            })
            .collect();
        assert!(
            !crossovers.is_empty(),
            "coop respawns must announce their crossover parent"
        );
        for (start, parent) in crossovers {
            assert!(start >= 6, "crossover slots are replacements");
            assert!(parent < start, "the parent precedes the respawn");
        }
        // The margin trace fires at every barrier start 0 reaches.
        assert!(buf
            .events()
            .iter()
            .any(|e| matches!(e, Event::PortfolioMargin { .. })));
    }

    #[test]
    fn temper_never_prunes_and_announces_swaps() {
        let (q, a) = big_case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xFADE);
        let mut buf = TraceBuffer::new();
        let result = exchange_portfolio_traced(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig {
                starts: 4,
                prune_margin: 0.0, // would prune aggressively in race
                sync_epochs: 6,
                threads: 1,
                mode: PortfolioMode::Temper,
                ..PortfolioConfig::default()
            },
            &mut buf,
        )
        .expect("temper portfolio");
        assert_eq!(result.pruned(), 0, "tempering never prunes a rung");
        assert_eq!(result.starts.len(), 4, "tempering never respawns");
        let swaps: Vec<u32> = buf
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::PortfolioSwap { start_a, .. } => Some(*start_a),
                _ => None,
            })
            .collect();
        assert!(!swaps.is_empty(), "barriers must propose rung swaps");
        // Every swap verdict re-derives from the event fields alone.
        for e in buf.events() {
            if let Event::PortfolioSwap {
                epoch,
                start_a,
                cost_a,
                cost_b,
                temp_a,
                temp_b,
                accepted,
                ..
            } = e
            {
                assert_eq!(
                    tempering_swap_accepts(
                        cfg.seed, *epoch, *start_a, *cost_a, *cost_b, *temp_a, *temp_b
                    ),
                    *accepted,
                    "swap verdicts are a pure function of (seed, epoch, rung, costs)"
                );
            }
        }
    }

    #[test]
    fn single_start_temper_is_bit_identical_to_race() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0x1ADD);
        let race = exchange_portfolio(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig {
                starts: 1,
                threads: 1,
                ..PortfolioConfig::default()
            },
        )
        .expect("race run");
        let temper = exchange_portfolio(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig {
                starts: 1,
                threads: 1,
                mode: PortfolioMode::Temper,
                ..PortfolioConfig::default()
            },
        )
        .expect("temper run");
        assert_eq!(temper, race, "a 1-rung ladder degenerates to race");
    }

    #[test]
    fn invalid_portfolio_config_is_rejected() {
        let (q, a) = case();
        for bad in [
            PortfolioConfig {
                starts: 0,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                sync_epochs: 0,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                prune_margin: -0.5,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                prune_margin: f64::NAN,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                kick_size: 0,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                ladder_ratio: 0.5,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                ladder_ratio: f64::NAN,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                ladder_ratio: f64::INFINITY,
                ..PortfolioConfig::default()
            },
        ] {
            let err = exchange_portfolio(&q, &a, &StackConfig::default(), &fast_config(1), &bad)
                .expect_err("invalid config must fail");
            assert!(matches!(
                err,
                CoreError::BadConfig {
                    parameter: "portfolio"
                }
            ));
        }
    }
}
