//! Parallel multi-start exchange portfolio with deterministic best-of
//! reduction.
//!
//! One SA trajectory (paper Fig. 14) is seed-sensitive: a single unlucky
//! start can land far from the Table 3 improvements. The portfolio runs
//! `K` independently-seeded starts of the same instance and keeps the
//! best, with two properties that make it safe to wire through the whole
//! stack:
//!
//! * **Thread-count invariance.** Every decision that influences the
//!   result — per-start seeds, prune verdicts, the final reduction — is
//!   made at synchronisation barriers in *start-index order*, never in
//!   thread-completion order. `threads = 1` and `threads = N` produce
//!   byte-identical winners (asserted by tests here and property-tested
//!   in `copack-verify`).
//! * **Never worse than one start.** Start 0 anneals with the base seed
//!   itself ([`derive_seed`]`(base, 0) == base`) and is exempt from
//!   pruning — it always runs its full schedule, exactly as a plain
//!   [`crate::exchange`] with the same seed would — and the reduction
//!   picks the minimum best-so-far cost, so the portfolio's winner costs
//!   at most what the single-start run would. (Pruning start 0 on an
//!   early trailing position would break this: a trajectory behind at a
//!   barrier can still finish ahead.)
//!
//! # Execution model
//!
//! The cooling schedule is cut into [`PortfolioConfig::sync_epochs`]
//! segments. Each *round*, every live start advances one epoch (on up to
//! [`PortfolioConfig::threads`] OS threads); at the barrier any start
//! whose best-so-far trails the **baseline** (start 0's best-so-far) by
//! more than [`PortfolioConfig::prune_margin`] (relative) is abandoned —
//! its driver is dropped, its best cost *and best-prefix journal* frozen
//! as a reduction candidate, and (budget permitting) a freshly-seeded
//! replacement start joins the next round. Replacements take seeds
//! `derive_seed(base, K + j)` so the seed stream never depends on timing.
//! The final epoch runs the schedule to completion, absorbing the
//! ±1-step float rounding of the epoch split.
//!
//! Pruning against the baseline rather than the global leader keeps the
//! verdicts **independent of `K`**: start `k`'s trajectory, and the epoch
//! at which it is pruned, are the same in every portfolio that contains
//! it. Widening the portfolio therefore only *adds* candidates to the
//! final reduction, so the winner's cost is monotone in `K` (pinned by
//! `tests/quality_regression.rs`). Leader-relative pruning broke this:
//! a wider portfolio tightens the early-epoch threshold and can abandon —
//! mid-descent — the very trajectory a narrower portfolio would have
//! carried to the win.
//!
//! The winner's accepted-move journal (and best-prefix length) is
//! returned so the `copack-verify` oracles can replay the trajectory
//! unchanged; [`replay_journal`] is the replay helper.

use copack_geom::{Assignment, FingerIdx, Quadrant, StackConfig};
use copack_obs::{Event, NoopRecorder, Recorder, TraceBuffer};

use crate::exchange::ExchangeDriver;
use crate::package_plan::effective_threads;
use crate::{CancelToken, CoreError, ExchangeConfig, ExchangeResult};

/// Configuration of a multi-start exchange portfolio.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioConfig {
    /// Number of independently-seeded starts, `K ≥ 1`. `K = 1` runs the
    /// plain kernel (bit-identical to [`crate::exchange`]).
    pub starts: u32,
    /// Relative prune margin: at each sync epoch a start is abandoned
    /// when `best > baseline + prune_margin · (|baseline| + 1)`, where
    /// `baseline` is start 0's best-so-far. `0.0` prunes every start
    /// trailing the baseline; `f64::INFINITY` disables pruning. Start 0
    /// (the caller's seed) is never pruned regardless of margin, so the
    /// threshold — and with it every prune verdict — is the same in every
    /// portfolio width `K`.
    pub prune_margin: f64,
    /// Number of synchronisation epochs the cooling schedule is cut
    /// into, `≥ 1`. More epochs prune earlier but synchronise more often.
    pub sync_epochs: u32,
    /// Worker threads (`0` = available parallelism, `1` = serial). Has
    /// no effect on results, only on wall clock.
    pub threads: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self {
            starts: 4,
            prune_margin: 0.25,
            sync_epochs: 4,
            threads: 0,
        }
    }
}

impl PortfolioConfig {
    /// Whether the configuration is usable.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.starts >= 1 && self.sync_epochs >= 1 && self.prune_margin >= 0.0
    }
}

/// Outcome of one start, reported whether it won, lost or was pruned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartReport {
    /// Start index: `0..K` are the original starts, `K..` replacements.
    pub start: u32,
    /// The derived seed the start annealed with.
    pub seed: u64,
    /// Best Eq. 3 cost the start reached before finishing (or being
    /// frozen by a prune).
    pub best_cost: f64,
    /// The start's sync epoch at which it was pruned, if it was.
    pub pruned_at: Option<u32>,
}

/// Outcome of a portfolio run.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioResult {
    /// The winning start's [`ExchangeResult`] (assignment + stats),
    /// exactly as a solo run with the winning seed would return it.
    pub result: ExchangeResult,
    /// Index of the winning start.
    pub winner_start: u32,
    /// Seed the winning start annealed with.
    pub winner_seed: u64,
    /// The winner's accepted-move journal (1-based finger-slot pairs).
    pub journal: Vec<(u32, u32)>,
    /// Length of the journal prefix that produced the winner's best cost.
    pub best_len: usize,
    /// Per-start outcomes in start-index order (originals then
    /// replacements).
    pub starts: Vec<StartReport>,
}

impl PortfolioResult {
    /// Number of starts that were pruned.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.starts.iter().filter(|s| s.pruned_at.is_some()).count()
    }
}

/// Derives the seed of start `k` from the portfolio's base seed.
///
/// Start 0 keeps the base seed itself, so every portfolio contains the
/// plain single-start trajectory and `K = 1` is bit-identical to
/// [`crate::exchange`]. Starts `k ≥ 1` (and pruned-start replacements,
/// which take `k = K, K+1, …`) use the SplitMix64 finalizer over
/// `base + k·γ` — statistically independent streams from one u64, with
/// no RNG state to thread between starts.
#[must_use]
pub fn derive_seed(base: u64, k: u32) -> u64 {
    if k == 0 {
        return base;
    }
    let mut z = base.wrapping_add(u64::from(k).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Replays `best_len` journal entries onto `initial` — the reduction the
/// kernel itself performs, exposed so the `copack-verify` oracles can
/// reproduce a portfolio winner from its journal.
///
/// # Errors
///
/// Propagates [`Assignment::swap`] failures (an out-of-range slot means
/// the journal does not belong to this instance).
pub fn replay_journal(
    initial: &Assignment,
    journal: &[(u32, u32)],
    best_len: usize,
) -> Result<Assignment, CoreError> {
    let mut a = initial.clone();
    for &(x, y) in &journal[..best_len] {
        a.swap(FingerIdx::new(x), FingerIdx::new(y))?;
    }
    Ok(a)
}

/// One start's in-flight state.
struct Run<'a> {
    start: u32,
    seed: u64,
    driver: Option<ExchangeDriver<'a>>,
    buffer: TraceBuffer,
    /// Epochs this run has completed.
    epochs_done: u32,
    pruned_at: Option<u32>,
    /// Best cost, frozen at prune time (mirrors the driver's while live).
    frozen_best: f64,
    /// The best-prefix journal and stats frozen at prune time, kept as a
    /// best-of candidate so abandoning a start never discards its
    /// trajectory from the reduction.
    frozen: Option<crate::exchange::FrozenRun>,
    failure: Option<CoreError>,
}

impl Run<'_> {
    fn best_cost(&self) -> f64 {
        self.driver
            .as_ref()
            .map_or(self.frozen_best, ExchangeDriver::best_cost)
    }

    fn is_finished(&self) -> bool {
        self.driver.as_ref().map_or(true, ExchangeDriver::is_done)
    }

    /// Advances this run's next epoch (`budget` steps, or to the end on
    /// the final epoch). Failures are parked in `self.failure` so the
    /// threaded path needs no cross-thread error channel.
    fn advance_epoch(&mut self, budget: usize, last: bool, rec_on: bool, cancel: &CancelToken) {
        let Some(driver) = &mut self.driver else {
            return;
        };
        if driver.is_done() {
            return;
        }
        let outcome = if rec_on {
            if last {
                driver.run_to_end(&mut self.buffer, cancel)
            } else {
                driver.advance(budget, &mut self.buffer, cancel)
            }
        } else {
            let mut noop = NoopRecorder;
            if last {
                driver.run_to_end(&mut noop, cancel)
            } else {
                driver.advance(budget, &mut noop, cancel)
            }
        };
        self.epochs_done += 1;
        if let Err(e) = outcome {
            self.failure = Some(e);
        }
    }
}

/// Runs a `K`-start exchange portfolio and returns the deterministic
/// best-of reduction. See the module docs for the execution model.
///
/// # Errors
///
/// As [`crate::exchange`], plus [`CoreError::BadConfig`] for an invalid
/// [`PortfolioConfig`].
pub fn exchange_portfolio(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    portfolio: &PortfolioConfig,
) -> Result<PortfolioResult, CoreError> {
    exchange_portfolio_traced(
        quadrant,
        initial,
        stack,
        config,
        portfolio,
        &mut NoopRecorder,
    )
}

/// [`exchange_portfolio`] with telemetry.
///
/// Each start records into a private [`TraceBuffer`]; the buffers are
/// merged into `recorder` in start-index order after the last round, so
/// the merged trace is identical for every thread count. Each start's
/// trace opens with [`Event::PortfolioStart`] and, if it was abandoned,
/// closes with [`Event::PortfolioPrune`]; only the winner emits
/// `RunEnd`.
///
/// # Errors
///
/// As [`exchange_portfolio`].
pub fn exchange_portfolio_traced(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    portfolio: &PortfolioConfig,
    recorder: &mut dyn Recorder,
) -> Result<PortfolioResult, CoreError> {
    exchange_portfolio_cancellable(
        quadrant,
        initial,
        stack,
        config,
        portfolio,
        recorder,
        &CancelToken::default(),
    )
}

/// [`exchange_portfolio_traced`] honoring a [`CancelToken`] (polled by
/// every live start; the first cancellation, in start-index order, is
/// propagated).
///
/// # Errors
///
/// As [`exchange_portfolio`], plus [`CoreError::Cancelled`].
pub fn exchange_portfolio_cancellable(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    portfolio: &PortfolioConfig,
    recorder: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<PortfolioResult, CoreError> {
    if !portfolio.is_valid() {
        return Err(CoreError::BadConfig {
            parameter: "portfolio",
        });
    }
    let k = portfolio.starts;
    let epochs = portfolio.sync_epochs;
    let total_steps = config.schedule.temperature_steps();
    let rec_on = recorder.enabled();
    let rec_rejected = rec_on && recorder.wants_rejected();

    let spawn = |start: u32| -> Result<Run<'_>, CoreError> {
        let seed = derive_seed(config.seed, start);
        let cfg = ExchangeConfig {
            seed,
            ..config.clone()
        };
        let mut buffer = if rec_rejected {
            TraceBuffer::with_rejected()
        } else {
            TraceBuffer::new()
        };
        let driver = if rec_on {
            buffer.push(Event::PortfolioStart { start, seed });
            ExchangeDriver::new(quadrant, initial, stack, &cfg, &mut buffer)?
        } else {
            ExchangeDriver::new(quadrant, initial, stack, &cfg, &mut NoopRecorder)?
        };
        Ok(Run {
            start,
            seed,
            driver: Some(driver),
            buffer,
            epochs_done: 0,
            pruned_at: None,
            frozen_best: f64::INFINITY,
            frozen: None,
            failure: None,
        })
    };

    let mut runs: Vec<Run<'_>> = (0..k).map(spawn).collect::<Result<_, _>>()?;
    // Replacement budget: at most K extra starts over the whole run, so
    // aggressive margins cannot spawn unboundedly.
    let mut replacements_left = k;
    let mut next_start = k;

    // Integer split of the schedule into epochs; the final epoch runs to
    // the true end of the schedule instead of a step count, absorbing the
    // ±1-step rounding of `temperature_steps()`.
    let budget_of = |epoch: u32| -> usize {
        let (e, n) = (epoch as usize, epochs as usize);
        ((e + 1) * total_steps) / n - (e * total_steps) / n
    };

    while runs.iter().any(|r| !r.is_finished()) {
        // Advance every live, unfinished run one epoch.
        let workers = effective_threads(portfolio.threads).min(runs.len()).max(1);
        if workers == 1 {
            for run in &mut runs {
                let epoch = run.epochs_done;
                run.advance_epoch(budget_of(epoch), epoch + 1 >= epochs, rec_on, cancel);
            }
        } else {
            let chunk = runs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for slice in runs.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for run in slice {
                            let epoch = run.epochs_done;
                            run.advance_epoch(
                                budget_of(epoch),
                                epoch + 1 >= epochs,
                                rec_on,
                                cancel,
                            );
                        }
                    });
                }
            });
        }
        // Barrier: propagate the first failure in start-index order.
        for run in &mut runs {
            if let Some(e) = run.failure.take() {
                return Err(e);
            }
        }
        // Prune verdicts, in start-index order against the baseline —
        // start 0's best-so-far. Start 0 is exempt: it carries the
        // caller's seed, always survives (so at least one start does),
        // and keeping it alive to the end makes the K-start winner never
        // worse than the K = 1 run. Because the threshold depends only on
        // start 0's (K-invariant) trajectory, each start is pruned at the
        // same epoch in every portfolio that contains it — the property
        // that makes the winner's cost monotone in K.
        let baseline_best = runs
            .iter()
            .find(|r| r.start == 0)
            .expect("start 0 is never removed")
            .best_cost();
        let threshold = portfolio
            .prune_margin
            .mul_add(baseline_best.abs() + 1.0, baseline_best);
        let mut spawn_requests = 0u32;
        for run in &mut runs {
            if run.start == 0 || run.driver.is_none() || run.is_finished() {
                continue;
            }
            let best = run.best_cost();
            if best > threshold {
                run.frozen_best = best;
                run.pruned_at = Some(run.epochs_done.saturating_sub(1));
                // Fold the pruned trajectory into the reduction instead
                // of discarding it with the driver.
                run.frozen = run.driver.as_ref().map(ExchangeDriver::freeze);
                run.driver = None;
                if rec_on {
                    run.buffer.push(Event::PortfolioPrune {
                        start: run.start,
                        epoch: run.epochs_done.saturating_sub(1),
                        best_cost: best,
                        global_best: baseline_best,
                    });
                }
                if replacements_left > 0 {
                    replacements_left -= 1;
                    spawn_requests += 1;
                }
            }
        }
        for _ in 0..spawn_requests {
            let run = spawn(next_start)?;
            next_start += 1;
            runs.push(run);
        }
    }

    // Deterministic reduction: minimum (best cost, start index) over
    // *every* run — live finishers and pruned starts' frozen journals
    // alike. (A pruned run's frozen best strictly exceeded the baseline's
    // best-so-far when it was dropped, and the baseline only improves, so
    // in practice a frozen candidate never wins — but folding it in keeps
    // the reduction correct under any future prune rule, and the frozen
    // journal is what the replay path needs if one ever does.)
    let winner_idx = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.driver.is_some() || r.frozen.is_some())
        .min_by(|(_, a), (_, b)| {
            a.best_cost()
                .partial_cmp(&b.best_cost())
                .expect("costs are finite")
                .then(a.start.cmp(&b.start))
        })
        .map(|(i, _)| i)
        .expect("start 0 is never pruned");

    // Finish the winner (rematerialise + RunEnd into its own buffer),
    // then merge every start's trace in start-index order. A pruned
    // winner rematerialises from its frozen best-prefix journal.
    let (result, journal, best_len) = {
        let run = &mut runs[winner_idx];
        if let Some(driver) = run.driver.as_mut() {
            let result = if rec_on {
                driver.finish(&mut run.buffer)?
            } else {
                driver.finish(&mut NoopRecorder)?
            };
            (result, driver.journal().to_vec(), driver.best_len())
        } else {
            let (journal, best_len, stats) = run.frozen.take().expect("pruned winner was frozen");
            let assignment = replay_journal(initial, &journal, best_len)?;
            (ExchangeResult { assignment, stats }, journal, best_len)
        }
    };
    let mut starts = Vec::with_capacity(runs.len());
    for run in &mut runs {
        starts.push(StartReport {
            start: run.start,
            seed: run.seed,
            best_cost: run.best_cost(),
            pruned_at: run.pruned_at,
        });
        if rec_on {
            for event in run.buffer.events() {
                recorder.record(event);
            }
        }
    }
    let winner = &runs[winner_idx];
    Ok(PortfolioResult {
        result,
        winner_start: winner.start,
        winner_seed: winner.seed,
        journal,
        best_len,
        starts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exchange, random_assignment, Schedule};
    use copack_geom::NetKind;

    fn fast_config(seed: u64) -> ExchangeConfig {
        ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 2,
                final_temp_ratio: 1e-2,
                ..Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        }
    }

    /// Fig. 5 instance with power nets sprinkled in (the exchange test
    /// fixture) plus a random initial order.
    fn case() -> (Quadrant, Assignment) {
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(9u32, NetKind::Power)
            .net_kind(0u32, NetKind::Ground)
            .build()
            .expect("fixture builds");
        let a = random_assignment(&q, 7).expect("assignable");
        (q, a)
    }

    /// A 48-finger, 4-row instance: big enough that different seeds reach
    /// genuinely different best costs, so pruning has something to do.
    fn big_case() -> (Quadrant, Assignment) {
        let mut b = Quadrant::builder();
        let mut id = 0u32;
        for _ in 0..4 {
            let row: Vec<u32> = (0..12)
                .map(|_| {
                    id += 1;
                    id
                })
                .collect();
            b = b.row(row);
        }
        for p in [1u32, 5, 9, 14, 20, 26, 33, 40, 47] {
            b = b.net_kind(p, NetKind::Power);
        }
        let q = b.build().expect("fixture builds");
        let a = random_assignment(&q, 7).expect("assignable");
        (q, a)
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(0xC0DE, 0), 0xC0DE);
        let seeds: Vec<u64> = (0..16).map(|k| derive_seed(0xC0DE, k)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision: {seeds:?}");
        // Stable across releases: pinned spot value.
        assert_eq!(derive_seed(0, 1), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 1), derive_seed(1, 1));
    }

    #[test]
    fn single_start_portfolio_matches_plain_exchange_bit_for_bit() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0x5EED);
        let solo = exchange(&q, &a, &stack, &cfg).expect("solo run");
        let portfolio = exchange_portfolio(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig {
                starts: 1,
                threads: 1,
                ..PortfolioConfig::default()
            },
        )
        .expect("portfolio run");
        assert_eq!(portfolio.result, solo);
        assert_eq!(portfolio.winner_start, 0);
        assert_eq!(portfolio.winner_seed, 0x5EED);
    }

    #[test]
    fn thread_count_never_changes_the_winner() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xC0DE);
        let base = PortfolioConfig {
            starts: 5,
            prune_margin: 0.05,
            sync_epochs: 4,
            threads: 1,
        };
        let serial = exchange_portfolio(&q, &a, &stack, &cfg, &base).expect("serial portfolio");
        for threads in [2, 8] {
            let threaded =
                exchange_portfolio(&q, &a, &stack, &cfg, &PortfolioConfig { threads, ..base })
                    .expect("threaded portfolio");
            assert_eq!(threaded, serial, "threads={threads}");
        }
    }

    #[test]
    fn portfolio_winner_is_never_worse_than_single_start() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xBEEF);
        let solo = exchange(&q, &a, &stack, &cfg).expect("solo run");
        let portfolio = exchange_portfolio(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig {
                starts: 8,
                threads: 0,
                ..PortfolioConfig::default()
            },
        )
        .expect("portfolio run");
        assert!(
            portfolio.result.stats.final_cost <= solo.stats.final_cost,
            "portfolio {} > solo {}",
            portfolio.result.stats.final_cost,
            solo.stats.final_cost
        );
    }

    /// The regression a starved schedule exposed: under aggressive
    /// pruning the baseline start can trail at an early barrier, and
    /// pruning it there lets the whole portfolio finish *worse* than the
    /// K = 1 run (a trajectory behind at a barrier can still finish
    /// ahead). Start 0 is exempt from pruning, so the never-worse
    /// guarantee must hold even in this regime.
    #[test]
    fn the_baseline_start_survives_aggressive_pruning() {
        let (q, a) = big_case();
        let stack = StackConfig::default();
        let cfg = ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 1,
                final_temp_ratio: 5e-2,
                cooling: 0.7,
                ..Schedule::default()
            },
            seed: 0x5EED_2009,
            ..ExchangeConfig::default()
        };
        let solo = exchange(&q, &a, &stack, &cfg).expect("solo run");
        for margin in [0.0, 0.05, 0.25] {
            let portfolio = exchange_portfolio(
                &q,
                &a,
                &stack,
                &cfg,
                &PortfolioConfig {
                    starts: 8,
                    prune_margin: margin,
                    sync_epochs: 8,
                    threads: 1,
                },
            )
            .expect("portfolio run");
            let baseline = portfolio
                .starts
                .iter()
                .find(|s| s.start == 0)
                .expect("start 0 is reported");
            assert!(
                baseline.pruned_at.is_none(),
                "margin {margin}: the baseline start was pruned"
            );
            assert!(
                portfolio.result.stats.final_cost <= solo.stats.final_cost,
                "margin {margin}: portfolio {} > solo {}",
                portfolio.result.stats.final_cost,
                solo.stats.final_cost
            );
        }
    }

    #[test]
    fn winner_journal_replays_to_the_winning_assignment() {
        let (q, a) = case();
        let portfolio = exchange_portfolio(
            &q,
            &a,
            &StackConfig::default(),
            &fast_config(0xF00D),
            &PortfolioConfig::default(),
        )
        .expect("portfolio run");
        let replayed =
            replay_journal(&a, &portfolio.journal, portfolio.best_len).expect("journal replays");
        assert_eq!(replayed, portfolio.result.assignment);
    }

    #[test]
    fn zero_margin_prunes_and_spawns_replacements_deterministically() {
        let (q, a) = big_case();
        let stack = StackConfig::default();
        let cfg = fast_config(0xABBA);
        let base = PortfolioConfig {
            starts: 6,
            prune_margin: 0.0,
            sync_epochs: 24,
            threads: 1,
        };
        let serial = exchange_portfolio(&q, &a, &stack, &cfg, &base).expect("serial");
        assert!(serial.pruned() > 0, "zero margin should prune something");
        // At least one survivor, and the winner is never a pruned start.
        let winner = serial
            .starts
            .iter()
            .find(|s| s.start == serial.winner_start)
            .expect("winner is reported");
        assert!(winner.pruned_at.is_none());
        let threaded = exchange_portfolio(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig { threads: 4, ..base },
        )
        .expect("threaded");
        assert_eq!(threaded, serial);
    }

    #[test]
    fn pruned_starts_never_beat_the_winner() {
        let (q, a) = big_case();
        let portfolio = exchange_portfolio(
            &q,
            &a,
            &StackConfig::default(),
            &fast_config(0xD1CE),
            &PortfolioConfig {
                starts: 8,
                prune_margin: 0.01,
                sync_epochs: 8,
                threads: 1,
            },
        )
        .expect("portfolio run");
        let winner_cost = portfolio.result.stats.final_cost;
        for s in portfolio.starts.iter().filter(|s| s.pruned_at.is_some()) {
            assert!(
                s.best_cost >= winner_cost,
                "pruned start {} at {} beat winner at {}",
                s.start,
                s.best_cost,
                winner_cost
            );
        }
    }

    #[test]
    fn trace_merges_in_start_order_and_is_thread_invariant() {
        let (q, a) = case();
        let stack = StackConfig::default();
        let cfg = fast_config(0x7EAC);
        let base = PortfolioConfig {
            starts: 4,
            prune_margin: 0.1,
            sync_epochs: 3,
            threads: 1,
        };
        let mut buf1 = TraceBuffer::new();
        let r1 = exchange_portfolio_traced(&q, &a, &stack, &cfg, &base, &mut buf1)
            .expect("traced serial");
        let mut buf8 = TraceBuffer::new();
        let r8 = exchange_portfolio_traced(
            &q,
            &a,
            &stack,
            &cfg,
            &PortfolioConfig { threads: 8, ..base },
            &mut buf8,
        )
        .expect("traced threaded");
        assert_eq!(r1, r8);
        assert_eq!(buf1.events(), buf8.events());
        // Starts are announced in index order.
        let announced: Vec<u32> = buf1
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::PortfolioStart { start, .. } => Some(*start),
                _ => None,
            })
            .collect();
        let mut sorted = announced.clone();
        sorted.sort_unstable();
        assert_eq!(announced, sorted);
        assert!(announced.len() >= 4);
        // Exactly one RunEnd: the winner's.
        let run_ends = buf1
            .events()
            .iter()
            .filter(|e| matches!(e, Event::RunEnd { .. }))
            .count();
        assert_eq!(run_ends, 1);
    }

    #[test]
    fn cancelled_token_aborts_the_portfolio() {
        let (q, a) = case();
        let token = CancelToken::new();
        token.cancel();
        let err = exchange_portfolio_cancellable(
            &q,
            &a,
            &StackConfig::default(),
            &fast_config(1),
            &PortfolioConfig::default(),
            &mut NoopRecorder,
            &token,
        )
        .expect_err("cancelled run must fail");
        assert!(matches!(err, CoreError::Cancelled));
    }

    #[test]
    fn invalid_portfolio_config_is_rejected() {
        let (q, a) = case();
        for bad in [
            PortfolioConfig {
                starts: 0,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                sync_epochs: 0,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                prune_margin: -0.5,
                ..PortfolioConfig::default()
            },
            PortfolioConfig {
                prune_margin: f64::NAN,
                ..PortfolioConfig::default()
            },
        ] {
            let err = exchange_portfolio(&q, &a, &StackConfig::default(), &fast_config(1), &bad)
                .expect_err("invalid config must fail");
            assert!(matches!(
                err,
                CoreError::BadConfig {
                    parameter: "portfolio"
                }
            ));
        }
    }
}
