//! Error type for the planning algorithms.

use std::error::Error;
use std::fmt;

use copack_geom::GeomError;
use copack_power::PowerError;
use copack_route::RouteError;

/// Errors raised by assignment, exchange and the co-design pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A model-construction error.
    Geom(GeomError),
    /// A routing/legality error.
    Route(RouteError),
    /// An IR-drop analysis error.
    Power(PowerError),
    /// A configuration value is unusable.
    BadConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
    },
    /// The 2-D exchange step needs at least one power pad to move.
    NoMovablePads,
    /// An instance delta cannot be applied to this quadrant.
    BadDelta {
        /// What was wrong with the edit.
        reason: &'static str,
    },
    /// The run was abandoned because its [`crate::CancelToken`] fired
    /// (explicit cancellation or an expired wall-clock deadline).
    Cancelled,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Geom(e) => write!(f, "model error: {e}"),
            Self::Route(e) => write!(f, "routing error: {e}"),
            Self::Power(e) => write!(f, "power error: {e}"),
            Self::BadConfig { parameter } => {
                write!(f, "configuration parameter `{parameter}` is invalid")
            }
            Self::NoMovablePads => {
                write!(f, "the 2-d exchange step needs at least one power pad")
            }
            Self::BadDelta { reason } => {
                write!(f, "the delta cannot be applied: {reason}")
            }
            Self::Cancelled => {
                write!(f, "the run was cancelled before it completed")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Geom(e) => Some(e),
            Self::Route(e) => Some(e),
            Self::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for CoreError {
    fn from(e: GeomError) -> Self {
        Self::Geom(e)
    }
}

impl From<RouteError> for CoreError {
    fn from(e: RouteError) -> Self {
        Self::Route(e)
    }
}

impl From<PowerError> for CoreError {
    fn from(e: PowerError) -> Self {
        Self::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let g: CoreError = GeomError::NoRows.into();
        let r: CoreError = RouteError::Geom(GeomError::NoRows).into();
        let p: CoreError = PowerError::NoPads.into();
        for e in [g, r, p] {
            assert!(Error::source(&e).is_some());
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn plain_variants_have_messages() {
        assert!(!CoreError::BadConfig { parameter: "seed" }
            .to_string()
            .is_empty());
        assert!(!CoreError::NoMovablePads.to_string().is_empty());
        assert!(!CoreError::Cancelled.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
