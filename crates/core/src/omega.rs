//! The bonding-wire balance metric ω for stacking ICs (paper §3.2).
//!
//! Every stacking tier `d` gets a one-hot ψ-bit "unique parameter" `UP_d`.
//! The finger slots are cut into `⌈α/ψ⌉` consecutive groups of (at most) ψ
//! fingers; each group ORs the `UP` codes of its members, and ω is the
//! total number of zero bits across the group results. ω = 0 exactly when
//! every group contains one pad of every tier — i.e. the tiers interleave
//! perfectly, which is the configuration with the shortest bonding wires
//! (the paper's Fig. 4(B)).

use copack_geom::{Assignment, NetId, Quadrant, TierId};

use crate::CoreError;

/// Computes ω for a finger order given each net's tier.
///
/// `psi` is the tier count ψ ≥ 1. A 2-D design (ψ = 1) always scores 0.
///
/// # Panics
///
/// Panics if `psi` is 0 or greater than 64 (tier codes are packed into a
/// `u64`), or if a net's tier exceeds `psi`.
///
/// # Example
///
/// The paper's Fig. 4 example: two tiers, twelve fingers.
///
/// ```
/// use copack_core::omega;
/// use copack_geom::{NetId, TierId};
///
/// // Fig. 4(A): tiers blocked pairwise — every group is single-tier.
/// let order: Vec<NetId> = (0..12).map(NetId::new).collect();
/// let blocked = |n: NetId| if (n.raw() / 2) % 2 == 0 { TierId::new(2) } else { TierId::new(1) };
/// assert_eq!(omega(&order, blocked, 2), 6);
///
/// // Fig. 4(B): tiers alternate — every group sees both tiers.
/// let alternating = |n: NetId| TierId::new((n.raw() % 2) as u8 + 1);
/// assert_eq!(omega(&order, alternating, 2), 0);
/// ```
pub fn omega<F>(order: &[NetId], tier_of: F, psi: u8) -> u64
where
    F: Fn(NetId) -> TierId,
{
    assert!((1..=64).contains(&psi), "psi must be in 1..=64");
    let mask: u64 = if psi == 64 {
        u64::MAX
    } else {
        (1u64 << psi) - 1
    };
    let mut total = 0u64;
    for group in order.chunks(psi as usize) {
        let mut union = 0u64;
        for &net in group {
            let tier = tier_of(net);
            assert!(
                tier.get() <= psi,
                "net {net} is on tier {tier} but psi = {psi}"
            );
            union |= tier.one_hot();
        }
        total += u64::from(psi) - u64::from((union & mask).count_ones());
    }
    total
}

/// ω of an [`Assignment`] on a quadrant, reading tiers from the quadrant's
/// net table.
///
/// # Errors
///
/// Returns [`CoreError::Geom`] if a placed net is unknown to the quadrant.
pub fn omega_of_assignment(
    quadrant: &Quadrant,
    assignment: &Assignment,
    psi: u8,
) -> Result<u64, CoreError> {
    let order = assignment.order();
    for &net in &order {
        if quadrant.net(net).is_none() {
            return Err(copack_geom::GeomError::UnknownNet { net }.into());
        }
    }
    Ok(omega(
        &order,
        |n| quadrant.net(n).expect("checked above").tier,
        psi,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::Assignment;

    fn ids(raws: impl IntoIterator<Item = u32>) -> Vec<NetId> {
        raws.into_iter().map(NetId::new).collect()
    }

    #[test]
    fn paper_fig4_example() {
        // ψ = 2, 12 fingers. (A): blocked pairs → ω = 6; (B): perfect
        // interleave → ω = 0.
        let order = ids(0..12);
        let blocked = |n: NetId| TierId::new(if (n.raw() / 2) % 2 == 0 { 2 } else { 1 });
        assert_eq!(omega(&order, blocked, 2), 6);
        let alternating = |n: NetId| TierId::new((n.raw() % 2) as u8 + 1);
        assert_eq!(omega(&order, alternating, 2), 0);
    }

    #[test]
    fn planar_designs_always_score_zero() {
        let order = ids(0..9);
        assert_eq!(omega(&order, |_| TierId::BASE, 1), 0);
    }

    #[test]
    fn all_same_tier_is_the_worst_case() {
        // Everything on tier 1 with ψ = 3: each full group misses 2 bits.
        let order = ids(0..9);
        assert_eq!(omega(&order, |_| TierId::BASE, 3), 3 * 2);
    }

    #[test]
    fn partial_last_group_counts_its_missing_bits() {
        // 7 fingers, ψ = 3: groups of 3, 3, 1. Perfectly interleaved
        // except the last group can cover only one tier → ω = 2.
        let order = ids(0..7);
        let t = |n: NetId| TierId::new((n.raw() % 3) as u8 + 1);
        assert_eq!(omega(&order, t, 3), 2);
    }

    #[test]
    fn omega_bounds() {
        // ω is at most (ψ − 1) per group.
        let order = ids(0..12);
        let t = |_n: NetId| TierId::new(4);
        let psi = 4;
        let groups = 3;
        assert_eq!(omega(&order, t, psi), groups * (u64::from(psi) - 1));
    }

    #[test]
    #[should_panic(expected = "psi")]
    fn zero_psi_is_rejected() {
        let _ = omega(&ids(0..2), |_| TierId::BASE, 0);
    }

    #[test]
    #[should_panic(expected = "tier")]
    fn tier_above_psi_is_rejected() {
        let _ = omega(&ids(0..2), |_| TierId::new(3), 2);
    }

    #[test]
    fn assignment_wrapper_reads_quadrant_tiers() {
        let q = Quadrant::builder()
            .row([1u32, 2, 3, 4])
            .net_tier(1u32, TierId::new(1))
            .net_tier(2u32, TierId::new(2))
            .net_tier(3u32, TierId::new(1))
            .net_tier(4u32, TierId::new(2))
            .build()
            .unwrap();
        let good = Assignment::from_order([1u32, 2, 3, 4]); // (1,2)(1,2) → 0
        assert_eq!(omega_of_assignment(&q, &good, 2).unwrap(), 0);
        let bad = Assignment::from_order([1u32, 3, 2, 4]); // (1,1)(2,2) → 2
        assert_eq!(omega_of_assignment(&q, &bad, 2).unwrap(), 2);
    }

    #[test]
    fn assignment_wrapper_rejects_foreign_nets() {
        let q = Quadrant::builder().row([1u32]).build().unwrap();
        let a = Assignment::from_order([9u32]);
        assert!(omega_of_assignment(&q, &a, 1).is_err());
    }
}
