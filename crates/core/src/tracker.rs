//! Incremental metric trackers for the annealer's inner loop.
//!
//! The exchange step proposes hundreds of thousands of adjacent swaps; the
//! naive cost evaluation re-derives the top-line sections (`O(β log β)`)
//! and ω (`O(β)`) from scratch each time. Because a single adjacent swap
//! can only move one net across one section delimiter and can only touch
//! two ω groups, both metrics admit `O(1)`-ish incremental updates. These
//! trackers implement them; property tests pin them to the from-scratch
//! definitions ([`crate::SectionBaseline`], [`crate::omega`]).

use copack_geom::{Assignment, FingerIdx, NetId, Quadrant, TierId};

use crate::{CoreError, SectionBaseline};

/// Incrementally tracked top-line section counts (Eq. 2's `I_c`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionTracker {
    /// `I_c^ini`, recorded at construction.
    initial: Vec<u32>,
    /// Current `I_c`.
    counts: Vec<u32>,
    /// Whether each net is a top-row (delimiter) net.
    is_top: std::collections::BTreeMap<NetId, bool>,
    /// Current section of each non-top net.
    section_of: std::collections::BTreeMap<NetId, usize>,
}

impl SectionTracker {
    /// Builds a tracker for `assignment` and records it as the Eq. 2
    /// baseline.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Route`] if the assignment is incomplete.
    pub fn new(quadrant: &Quadrant, assignment: &Assignment) -> Result<Self, CoreError> {
        let baseline = SectionBaseline::record(quadrant, assignment)?;
        let top: Vec<NetId> = quadrant.row(quadrant.top_row()).to_vec();
        let mut delim: Vec<usize> = top
            .iter()
            .map(|&n| {
                assignment
                    .position_of(n)
                    .map(|f| f.zero_based())
                    .ok_or(copack_route::RouteError::Unplaced { net: n })
            })
            .collect::<Result<_, _>>()?;
        delim.sort_unstable();

        let mut is_top = std::collections::BTreeMap::new();
        for net in quadrant.nets() {
            is_top.insert(net.id, top.contains(&net.id));
        }
        let mut section_of = std::collections::BTreeMap::new();
        for (finger, net) in assignment.iter() {
            if !is_top[&net] {
                let s = delim.partition_point(|&d| d < finger.zero_based());
                section_of.insert(net, s);
            }
        }
        Ok(Self {
            counts: baseline.initial().to_vec(),
            initial: baseline.initial().to_vec(),
            is_top,
            section_of,
        })
    }

    /// Applies an adjacent swap of the nets at `pos` and `pos + 1`
    /// (called **before** the assignment itself is swapped; pass the nets
    /// that currently sit left and right). Applying the same swap again
    /// reverts it.
    ///
    /// # Panics
    ///
    /// Panics if both nets are top-row nets (such swaps are monotonic-
    /// illegal and must be filtered out by the caller) or if a net is
    /// unknown.
    pub fn apply_adjacent_swap(&mut self, left: NetId, right: NetId) {
        let left_top = self.is_top[&left];
        let right_top = self.is_top[&right];
        assert!(
            !(left_top && right_top),
            "adjacent top-row nets cannot swap"
        );
        if left_top == right_top {
            // Neither is a delimiter: both stay in the same section.
            return;
        }
        // One delimiter, one ordinary net: the ordinary net crosses it.
        let (mover, went_left) = if left_top { (right, true) } else { (left, false) };
        let s = self.section_of[&mover];
        let new_s = if went_left { s - 1 } else { s + 1 };
        self.counts[s] -= 1;
        self.counts[new_s] += 1;
        self.section_of.insert(mover, new_s);
    }

    /// Current section counts.
    #[must_use]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Eq. 2's `ID` against the recorded baseline.
    #[must_use]
    pub fn increased_density(&self) -> u32 {
        self.counts
            .iter()
            .zip(&self.initial)
            .map(|(&new, &ini)| new.saturating_sub(ini))
            .max()
            .unwrap_or(0)
    }
}

/// Incrementally tracked ω (the stacking bonding-wire metric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaTracker {
    psi: u8,
    /// Tier of the net in each slot (dense orders only).
    tiers: Vec<TierId>,
    /// Zero-bit count of each ψ-sized group.
    group_zeros: Vec<u32>,
    omega: u64,
}

impl OmegaTracker {
    /// Builds a tracker for a **dense** assignment (every slot occupied).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Geom`] for unknown nets, or
    /// [`CoreError::BadConfig`] if the assignment has empty slots (the
    /// incremental update tracks slots, not nets).
    pub fn new(quadrant: &Quadrant, assignment: &Assignment, psi: u8) -> Result<Self, CoreError> {
        if assignment.net_count() != assignment.finger_count() {
            return Err(CoreError::BadConfig {
                parameter: "assignment (must be dense)",
            });
        }
        let mut tiers = Vec::with_capacity(assignment.finger_count());
        for (_, net) in assignment.iter() {
            let n = quadrant
                .net(net)
                .ok_or(copack_geom::GeomError::UnknownNet { net })?;
            tiers.push(n.tier);
        }
        let mut tracker = Self {
            psi,
            tiers,
            group_zeros: Vec::new(),
            omega: 0,
        };
        tracker.rebuild();
        Ok(tracker)
    }

    fn rebuild(&mut self) {
        let psi = self.psi as usize;
        self.group_zeros = self
            .tiers
            .chunks(psi)
            .map(|group| Self::zeros(group, self.psi))
            .collect();
        self.omega = self.group_zeros.iter().map(|&z| u64::from(z)).sum();
    }

    fn zeros(group: &[TierId], psi: u8) -> u32 {
        let mask: u64 = if psi == 64 { u64::MAX } else { (1u64 << psi) - 1 };
        let mut union = 0u64;
        for t in group {
            union |= t.one_hot();
        }
        u32::from(psi) - (union & mask).count_ones()
    }

    /// Applies an adjacent swap of slots `pos` and `pos + 1` (0-based).
    /// Self-inverse, like the assignment swap it mirrors.
    ///
    /// # Panics
    ///
    /// Panics if `pos + 1` is out of range.
    pub fn apply_adjacent_swap(&mut self, pos: FingerIdx) {
        let i = pos.zero_based();
        assert!(i + 1 < self.tiers.len(), "swap out of range");
        self.tiers.swap(i, i + 1);
        let psi = self.psi as usize;
        let (ga, gb) = (i / psi, (i + 1) / psi);
        if ga == gb {
            return; // same group: union unchanged
        }
        for g in [ga, gb] {
            let start = g * psi;
            let end = (start + psi).min(self.tiers.len());
            let new_zeros = Self::zeros(&self.tiers[start..end], self.psi);
            self.omega -= u64::from(self.group_zeros[g]);
            self.omega += u64::from(new_zeros);
            self.group_zeros[g] = new_zeros;
        }
    }

    /// Current ω.
    #[must_use]
    pub fn omega(&self) -> u64 {
        self.omega
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dfa, omega_of_assignment, SectionBaseline};
    use copack_geom::{Quadrant, TierId};
    use rand::{Rng, SeedableRng};

    fn quadrant() -> Quadrant {
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9]);
        for (i, n) in [10u32, 2, 4, 7, 0, 1, 3, 5, 8, 11, 6, 9].iter().enumerate() {
            b = b.net_tier(*n, TierId::new((i % 3) as u8 + 1));
        }
        b.build().unwrap()
    }

    /// Drives both trackers through a random legal-swap walk and checks
    /// them against the from-scratch definitions at every step.
    #[test]
    fn trackers_match_recompute_over_random_walks() {
        let q = quadrant();
        let initial = dfa(&q, 1).unwrap();
        let baseline = SectionBaseline::record(&q, &initial).unwrap();
        let mut sections = SectionTracker::new(&q, &initial).unwrap();
        let mut omega_t = OmegaTracker::new(&q, &initial, 3).unwrap();
        let mut a = initial.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let top: Vec<_> = q.row(q.top_row()).to_vec();

        for step in 0..500 {
            let p = rng.gen_range(1..=11u32);
            let left = a.net_at(FingerIdx::new(p)).unwrap();
            let right = a.net_at(FingerIdx::new(p + 1)).unwrap();
            if top.contains(&left) && top.contains(&right) {
                continue; // illegal for the section tracker, skip
            }
            sections.apply_adjacent_swap(left, right);
            omega_t.apply_adjacent_swap(FingerIdx::new(p));
            a.swap(FingerIdx::new(p), FingerIdx::new(p + 1)).unwrap();

            let expected_id = baseline.increased_density(&q, &a).unwrap();
            assert_eq!(sections.increased_density(), expected_id, "step {step}");
            let expected_omega = omega_of_assignment(&q, &a, 3).unwrap();
            assert_eq!(omega_t.omega(), expected_omega, "step {step}");
        }
    }

    #[test]
    fn swaps_are_self_inverse() {
        let q = quadrant();
        let a = dfa(&q, 1).unwrap();
        let mut sections = SectionTracker::new(&q, &a).unwrap();
        let mut omega_t = OmegaTracker::new(&q, &a, 3).unwrap();
        let s0 = sections.clone();
        let o0 = omega_t.clone();
        let left = a.net_at(FingerIdx::new(4)).unwrap();
        let right = a.net_at(FingerIdx::new(5)).unwrap();
        sections.apply_adjacent_swap(left, right);
        omega_t.apply_adjacent_swap(FingerIdx::new(4));
        // Revert: note the nets' sides are now exchanged.
        sections.apply_adjacent_swap(right, left);
        omega_t.apply_adjacent_swap(FingerIdx::new(4));
        assert_eq!(sections, s0);
        assert_eq!(omega_t, o0);
    }

    #[test]
    fn section_tracker_starts_at_zero_id() {
        let q = quadrant();
        let a = dfa(&q, 1).unwrap();
        let t = SectionTracker::new(&q, &a).unwrap();
        assert_eq!(t.increased_density(), 0);
        assert_eq!(t.counts().iter().sum::<u32>() as usize, 9);
    }

    #[test]
    fn omega_tracker_requires_dense_assignments() {
        let q = quadrant();
        let mut sparse = Assignment::empty(13);
        for (i, net) in dfa(&q, 1).unwrap().order().into_iter().enumerate() {
            sparse.place(net, FingerIdx::from_zero_based(i)).unwrap();
        }
        assert!(OmegaTracker::new(&q, &sparse, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot swap")]
    fn section_tracker_rejects_double_delimiters() {
        let q = quadrant();
        let a = dfa(&q, 1).unwrap();
        let mut t = SectionTracker::new(&q, &a).unwrap();
        // 11 and 6 are both top-row nets.
        t.apply_adjacent_swap(NetId::new(11), NetId::new(6));
    }
}
