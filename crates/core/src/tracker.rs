//! Incremental metric trackers for the annealer's inner loop.
//!
//! The exchange step proposes hundreds of thousands of adjacent swaps; the
//! naive cost evaluation re-derives the top-line sections (`O(β log β)`)
//! and ω (`O(β)`) from scratch each time. Because a single adjacent swap
//! can only move one net across one section delimiter and can only touch
//! two ω groups, both metrics admit `O(1)`-ish incremental updates. These
//! trackers implement them; property tests pin them to the from-scratch
//! definitions ([`crate::SectionBaseline`], [`crate::omega`]).

use copack_geom::{Assignment, FingerIdx, NetId, NetIndex, NetKind, Quadrant, TierId};

use crate::{CoreError, SectionBaseline};

/// Incrementally tracked top-line section counts (Eq. 2's `I_c`).
///
/// Per-net state is dense over the quadrant's [`NetIndex`], so the swap
/// update is a handful of array loads — no keyed lookups on the annealer's
/// move loop. Callers that already hold dense indices (the exchange
/// driver's slot tables use the same interning) can use the `_idx`
/// variants and skip even the `O(1)` id resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionTracker {
    /// `I_c^ini`, recorded at construction.
    initial: Vec<u32>,
    /// Current `I_c`.
    counts: Vec<u32>,
    /// The quadrant's id interning, for resolving [`NetId`] arguments.
    index: NetIndex,
    /// Whether each net (by dense index) is a top-row (delimiter) net.
    is_top: Vec<bool>,
    /// Current section of each non-top net (by dense index; delimiters
    /// hold an unused 0).
    section_of: Vec<u32>,
}

impl SectionTracker {
    /// Builds a tracker for `assignment` and records it as the Eq. 2
    /// baseline.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Route`] if the assignment is incomplete.
    pub fn new(quadrant: &Quadrant, assignment: &Assignment) -> Result<Self, CoreError> {
        let baseline = SectionBaseline::record(quadrant, assignment)?;
        let index = quadrant.net_index().clone();
        let top: Vec<NetId> = quadrant.row(quadrant.top_row()).to_vec();
        let mut delim: Vec<usize> = top
            .iter()
            .map(|&n| {
                assignment
                    .position_of(n)
                    .map(|f| f.zero_based())
                    .ok_or(copack_route::RouteError::Unplaced { net: n })
            })
            .collect::<Result<_, _>>()?;
        delim.sort_unstable();

        let mut is_top = vec![false; index.len()];
        for &net in &top {
            is_top[index.get(net).expect("top-row net is interned")] = true;
        }
        let mut section_of = vec![0u32; index.len()];
        for (finger, net) in assignment.iter() {
            if let Some(i) = index.get(net) {
                if !is_top[i] {
                    let s = delim.partition_point(|&d| d < finger.zero_based());
                    section_of[i] = u32::try_from(s).expect("section fits u32");
                }
            }
        }
        Ok(Self {
            counts: baseline.initial().to_vec(),
            initial: baseline.initial().to_vec(),
            index,
            is_top,
            section_of,
        })
    }

    /// Applies an adjacent swap of the nets at `pos` and `pos + 1`
    /// (called **before** the assignment itself is swapped; pass the nets
    /// that currently sit left and right). Applying the same swap again
    /// reverts it.
    ///
    /// Returns `true` iff the section counts changed (a net crossed a
    /// delimiter) — callers may cache [`SectionTracker::increased_density`]
    /// and only refresh it on `true`.
    ///
    /// # Panics
    ///
    /// Panics if both nets are top-row nets (such swaps are monotonic-
    /// illegal and must be filtered out by the caller) or if a net is
    /// unknown.
    pub fn apply_adjacent_swap(&mut self, left: NetId, right: NetId) -> bool {
        let li = self.index.get(left).expect("left net is interned");
        let ri = self.index.get(right).expect("right net is interned");
        self.apply_adjacent_swap_idx(li, ri)
    }

    /// [`SectionTracker::apply_adjacent_swap`] for callers that already
    /// hold the nets' dense indices (see [`Quadrant::net_index`]).
    ///
    /// # Panics
    ///
    /// Panics if both nets are top-row nets or an index is out of range.
    pub fn apply_adjacent_swap_idx(&mut self, left: usize, right: usize) -> bool {
        let left_top = self.is_top[left];
        let right_top = self.is_top[right];
        assert!(
            !(left_top && right_top),
            "adjacent top-row nets cannot swap"
        );
        if left_top == right_top {
            // Neither is a delimiter: both stay in the same section.
            return false;
        }
        // One delimiter, one ordinary net: the ordinary net crosses it.
        let (mover, went_left) = if left_top {
            (right, true)
        } else {
            (left, false)
        };
        let s = self.section_of[mover] as usize;
        let new_s = if went_left { s - 1 } else { s + 1 };
        self.counts[s] -= 1;
        self.counts[new_s] += 1;
        self.section_of[mover] = u32::try_from(new_s).expect("section fits u32");
        true
    }

    /// Whether `net` sits on the quadrant's top row (i.e. is a section
    /// delimiter). Swaps of two non-delimiter nets never change the
    /// counts, so hot loops can pre-resolve this and skip the call.
    ///
    /// # Panics
    ///
    /// Panics if `net` is unknown.
    #[must_use]
    pub fn is_delimiter(&self, net: NetId) -> bool {
        self.is_top[self.index.get(net).expect("net is interned")]
    }

    /// Current section counts.
    #[must_use]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Eq. 2's `ID` against the recorded baseline.
    #[must_use]
    pub fn increased_density(&self) -> u32 {
        self.counts
            .iter()
            .zip(&self.initial)
            .map(|(&new, &ini)| new.saturating_sub(ini))
            .max()
            .unwrap_or(0)
    }
}

/// Incrementally tracked ω (the stacking bonding-wire metric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaTracker {
    psi: u8,
    /// Tier of the net in each slot (dense orders only).
    tiers: Vec<TierId>,
    /// Zero-bit count of each ψ-sized group.
    group_zeros: Vec<u32>,
    omega: u64,
}

impl OmegaTracker {
    /// Builds a tracker for a **dense** assignment (every slot occupied).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Geom`] for unknown nets, or
    /// [`CoreError::BadConfig`] if the assignment has empty slots (the
    /// incremental update tracks slots, not nets).
    pub fn new(quadrant: &Quadrant, assignment: &Assignment, psi: u8) -> Result<Self, CoreError> {
        if assignment.net_count() != assignment.finger_count() {
            return Err(CoreError::BadConfig {
                parameter: "assignment (must be dense)",
            });
        }
        let mut tiers = Vec::with_capacity(assignment.finger_count());
        for (_, net) in assignment.iter() {
            let n = quadrant
                .net(net)
                .ok_or(copack_geom::GeomError::UnknownNet { net })?;
            tiers.push(n.tier);
        }
        let mut tracker = Self {
            psi,
            tiers,
            group_zeros: Vec::new(),
            omega: 0,
        };
        tracker.rebuild();
        Ok(tracker)
    }

    fn rebuild(&mut self) {
        let psi = self.psi as usize;
        self.group_zeros = self
            .tiers
            .chunks(psi)
            .map(|group| Self::zeros(group, self.psi))
            .collect();
        self.omega = self.group_zeros.iter().map(|&z| u64::from(z)).sum();
    }

    fn zeros(group: &[TierId], psi: u8) -> u32 {
        let mask: u64 = if psi == 64 {
            u64::MAX
        } else {
            (1u64 << psi) - 1
        };
        let mut union = 0u64;
        for t in group {
            union |= t.one_hot();
        }
        u32::from(psi) - (union & mask).count_ones()
    }

    /// Applies an adjacent swap of slots `pos` and `pos + 1` (0-based).
    /// Self-inverse, like the assignment swap it mirrors.
    ///
    /// # Panics
    ///
    /// Panics if `pos + 1` is out of range.
    pub fn apply_adjacent_swap(&mut self, pos: FingerIdx) {
        let i = pos.zero_based();
        assert!(i + 1 < self.tiers.len(), "swap out of range");
        self.tiers.swap(i, i + 1);
        let psi = self.psi as usize;
        let (ga, gb) = (i / psi, (i + 1) / psi);
        if ga == gb {
            return; // same group: union unchanged
        }
        for g in [ga, gb] {
            let start = g * psi;
            let end = (start + psi).min(self.tiers.len());
            let new_zeros = Self::zeros(&self.tiers[start..end], self.psi);
            self.omega -= u64::from(self.group_zeros[g]);
            self.omega += u64::from(new_zeros);
            self.group_zeros[g] = new_zeros;
        }
    }

    /// Current ω.
    #[must_use]
    pub fn omega(&self) -> u64 {
        self.omega
    }
}

/// Incrementally tracked Δ_IR pad-spacing proxy (Eq. 3's first term).
///
/// The naive evaluation collects every power pad's perimeter coordinate
/// into a fresh `Vec` and rebuilds a [`copack_power::PadSpacingProxy`] per
/// move — `O(k log k)` work and two allocations for a swap that moves at
/// most **one** power pad by one slot. This tracker keeps the power-pad
/// coordinates in sorted order across adjacent swaps with an `O(1)`,
/// allocation-free update, exploiting two facts:
///
/// * swapping two power pads permutes nets but leaves the occupied *slots*
///   unchanged, so the coordinate multiset is untouched;
/// * a power pad moving one slot into a non-power slot cannot jump past
///   another power pad (that pad would have been the swap partner), so its
///   sorted rank is stable and only its value changes.
///
/// [`DeltaIrTracker::delta_ir`] then sums the squared gap deviations in
/// exactly the order `PadSpacingProxy::delta_ir` does (windows left to
/// right, wrap gap last), so the score is **bit-identical** to the
/// from-scratch rebuild — the annealer's accept/reject trajectory cannot
/// diverge. The read is `O(k)` in the power-pad count, which the cost
/// model treats as `O(1)`: `k` is a small constant fraction of the design
/// and no allocation or sort happens.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaIrTracker {
    /// Finger count as `f64`, the coordinate denominator.
    alpha: f64,
    /// Power-pad perimeter coordinates, sorted ascending.
    ts: Vec<f64>,
    /// Rank in `ts` of the power pad occupying each 0-based slot.
    rank_of_slot: Vec<Option<usize>>,
}

impl DeltaIrTracker {
    /// Builds a tracker over `assignment`'s power pads.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Route`] if a power net is unplaced.
    pub fn new(quadrant: &Quadrant, assignment: &Assignment) -> Result<Self, CoreError> {
        let alpha = assignment.finger_count();
        let mut slots: Vec<usize> = Vec::new();
        for net in quadrant.nets_of_kind(NetKind::Power) {
            let pos = assignment
                .position_of(net)
                .ok_or(copack_route::RouteError::Unplaced { net })?;
            slots.push(pos.zero_based());
        }
        // Sorting the slots sorts the coordinates: t is monotone in the slot.
        slots.sort_unstable();
        let mut rank_of_slot = vec![None; alpha];
        let mut ts = Vec::with_capacity(slots.len());
        for (rank, &slot) in slots.iter().enumerate() {
            rank_of_slot[slot] = Some(rank);
            ts.push(Self::coordinate(slot, alpha as f64));
        }
        Ok(Self {
            alpha: alpha as f64,
            ts,
            rank_of_slot,
        })
    }

    /// The perimeter coordinate of a 0-based slot — the exact expression
    /// the naive path feeds to `PadSpacingProxy`.
    fn coordinate(slot_zero_based: usize, alpha: f64) -> f64 {
        ((slot_zero_based + 1) as f64 - 0.5) / alpha
    }

    /// Number of tracked power pads.
    #[must_use]
    pub fn power_pad_count(&self) -> usize {
        self.ts.len()
    }

    /// Applies an adjacent swap of slots `pos` and `pos + 1`. Self-inverse,
    /// like the assignment swap it mirrors; callable before or after the
    /// assignment itself is swapped (it reads no assignment state).
    ///
    /// Returns `true` iff a coordinate changed — i.e. the swap moved a
    /// power pad into a non-power slot. Callers may cache
    /// [`DeltaIrTracker::delta_ir`] and only refresh it on `true`: the
    /// score is a pure function of `ts`, so an unchanged `ts` reproduces
    /// the cached value bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `pos + 1` is out of range.
    pub fn apply_adjacent_swap(&mut self, pos: FingerIdx) -> bool {
        let i = pos.zero_based();
        assert!(i + 1 < self.rank_of_slot.len(), "swap out of range");
        match (self.rank_of_slot[i], self.rank_of_slot[i + 1]) {
            // Two power pads exchange nets: the occupied slots — and hence
            // the coordinates — are unchanged.
            (Some(_), Some(_)) | (None, None) => false,
            (Some(rank), None) => {
                self.rank_of_slot[i] = None;
                self.rank_of_slot[i + 1] = Some(rank);
                self.ts[rank] = Self::coordinate(i + 1, self.alpha);
                true
            }
            (None, Some(rank)) => {
                self.rank_of_slot[i + 1] = None;
                self.rank_of_slot[i] = Some(rank);
                self.ts[rank] = Self::coordinate(i, self.alpha);
                true
            }
        }
    }

    /// The pad-spacing score, bit-identical to
    /// `PadSpacingProxy::new(&ts)?.delta_ir()` over the same pads: gaps are
    /// visited in the proxy's order (sorted windows, then the wrap-around
    /// gap) and summed left to right. Returns `0.0` with no power pads —
    /// callers guard that case like the naive path guards an empty `ts`.
    #[must_use]
    pub fn delta_ir(&self) -> f64 {
        let k = self.ts.len();
        if k == 0 {
            return 0.0;
        }
        let ideal = 1.0 / k as f64;
        let mut sum = 0.0;
        for w in self.ts.windows(2) {
            sum += (w[1] - w[0] - ideal).powi(2);
        }
        sum += (1.0 - self.ts[k - 1] + self.ts[0] - ideal).powi(2);
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dfa, omega_of_assignment, SectionBaseline};
    use copack_geom::{Quadrant, TierId};
    use rand::{Rng, SeedableRng};

    fn quadrant() -> Quadrant {
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, copack_geom::NetKind::Power)
            .net_kind(5u32, copack_geom::NetKind::Power)
            .net_kind(9u32, copack_geom::NetKind::Power);
        for (i, n) in [10u32, 2, 4, 7, 0, 1, 3, 5, 8, 11, 6, 9].iter().enumerate() {
            b = b.net_tier(*n, TierId::new((i % 3) as u8 + 1));
        }
        b.build().unwrap()
    }

    /// The naive Δ_IR evaluation the tracker replaces, verbatim.
    fn delta_ir_from_scratch(q: &Quadrant, a: &Assignment) -> f64 {
        let alpha = a.finger_count();
        let ts: Vec<f64> = q
            .nets_of_kind(copack_geom::NetKind::Power)
            .filter_map(|n| a.position_of(n))
            .map(|f| (f.get() as f64 - 0.5) / alpha as f64)
            .collect();
        if ts.is_empty() {
            return 0.0;
        }
        copack_power::PadSpacingProxy::new(&ts).unwrap().delta_ir()
    }

    /// Drives both trackers through a random legal-swap walk and checks
    /// them against the from-scratch definitions at every step.
    #[test]
    fn trackers_match_recompute_over_random_walks() {
        let q = quadrant();
        let initial = dfa(&q, 1).unwrap();
        let baseline = SectionBaseline::record(&q, &initial).unwrap();
        let mut sections = SectionTracker::new(&q, &initial).unwrap();
        let mut omega_t = OmegaTracker::new(&q, &initial, 3).unwrap();
        let mut ir = DeltaIrTracker::new(&q, &initial).unwrap();
        let mut a = initial.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let top: Vec<_> = q.row(q.top_row()).to_vec();

        for step in 0..500 {
            let p = rng.gen_range(1..=11u32);
            let left = a.net_at(FingerIdx::new(p)).unwrap();
            let right = a.net_at(FingerIdx::new(p + 1)).unwrap();
            if top.contains(&left) && top.contains(&right) {
                continue; // illegal for the section tracker, skip
            }
            sections.apply_adjacent_swap(left, right);
            omega_t.apply_adjacent_swap(FingerIdx::new(p));
            ir.apply_adjacent_swap(FingerIdx::new(p));
            a.swap(FingerIdx::new(p), FingerIdx::new(p + 1)).unwrap();

            let expected_id = baseline.increased_density(&q, &a).unwrap();
            assert_eq!(sections.increased_density(), expected_id, "step {step}");
            let expected_omega = omega_of_assignment(&q, &a, 3).unwrap();
            assert_eq!(omega_t.omega(), expected_omega, "step {step}");
            // Bit-identical, not approximately equal: the annealer's
            // accept/reject decisions hinge on exact cost comparisons.
            assert_eq!(ir.delta_ir(), delta_ir_from_scratch(&q, &a), "step {step}");
        }
    }

    #[test]
    fn swaps_are_self_inverse() {
        let q = quadrant();
        let a = dfa(&q, 1).unwrap();
        let mut sections = SectionTracker::new(&q, &a).unwrap();
        let mut omega_t = OmegaTracker::new(&q, &a, 3).unwrap();
        let mut ir = DeltaIrTracker::new(&q, &a).unwrap();
        let s0 = sections.clone();
        let o0 = omega_t.clone();
        let i0 = ir.clone();
        let left = a.net_at(FingerIdx::new(4)).unwrap();
        let right = a.net_at(FingerIdx::new(5)).unwrap();
        sections.apply_adjacent_swap(left, right);
        omega_t.apply_adjacent_swap(FingerIdx::new(4));
        ir.apply_adjacent_swap(FingerIdx::new(4));
        // Revert: note the nets' sides are now exchanged.
        sections.apply_adjacent_swap(right, left);
        omega_t.apply_adjacent_swap(FingerIdx::new(4));
        ir.apply_adjacent_swap(FingerIdx::new(4));
        assert_eq!(sections, s0);
        assert_eq!(omega_t, o0);
        assert_eq!(ir, i0);
    }

    #[test]
    fn delta_ir_tracker_matches_proxy_at_construction() {
        let q = quadrant();
        let a = dfa(&q, 1).unwrap();
        let ir = DeltaIrTracker::new(&q, &a).unwrap();
        assert_eq!(ir.power_pad_count(), 3);
        assert_eq!(ir.delta_ir(), delta_ir_from_scratch(&q, &a));
    }

    #[test]
    fn delta_ir_tracker_handles_powerless_quadrants() {
        let q = Quadrant::builder().row([1u32, 2]).build().unwrap();
        let a = Assignment::from_order([1u32, 2]);
        let ir = DeltaIrTracker::new(&q, &a).unwrap();
        assert_eq!(ir.power_pad_count(), 0);
        assert_eq!(ir.delta_ir(), 0.0);
    }

    #[test]
    fn delta_ir_tracker_tracks_sparse_assignments() {
        // More fingers than nets: power pads can move into empty slots.
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, copack_geom::NetKind::Power)
            .net_kind(5u32, copack_geom::NetKind::Power)
            .fingers(15);
        for (i, n) in [10u32, 2, 4, 7, 0, 1, 3, 5, 8, 11, 6, 9].iter().enumerate() {
            b = b.net_tier(*n, TierId::new((i % 3) as u8 + 1));
        }
        let q = b.build().unwrap();
        let initial = dfa(&q, 1).unwrap();
        let mut ir = DeltaIrTracker::new(&q, &initial).unwrap();
        let mut a = initial.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for step in 0..300 {
            let p = rng.gen_range(1..=14u32);
            ir.apply_adjacent_swap(FingerIdx::new(p));
            a.swap(FingerIdx::new(p), FingerIdx::new(p + 1)).unwrap();
            assert_eq!(ir.delta_ir(), delta_ir_from_scratch(&q, &a), "step {step}");
        }
    }

    #[test]
    fn section_tracker_starts_at_zero_id() {
        let q = quadrant();
        let a = dfa(&q, 1).unwrap();
        let t = SectionTracker::new(&q, &a).unwrap();
        assert_eq!(t.increased_density(), 0);
        assert_eq!(t.counts().iter().sum::<u32>() as usize, 9);
    }

    #[test]
    fn omega_tracker_requires_dense_assignments() {
        let q = quadrant();
        let mut sparse = Assignment::empty(13);
        for (i, net) in dfa(&q, 1).unwrap().order().into_iter().enumerate() {
            sparse.place(net, FingerIdx::from_zero_based(i)).unwrap();
        }
        assert!(OmegaTracker::new(&q, &sparse, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot swap")]
    fn section_tracker_rejects_double_delimiters() {
        let q = quadrant();
        let a = dfa(&q, 1).unwrap();
        let mut t = SectionTracker::new(&q, &a).unwrap();
        // 11 and 6 are both top-row nets.
        t.apply_adjacent_swap(NetId::new(11), NetId::new(6));
    }
}
