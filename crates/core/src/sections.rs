//! The increased-density metric `ID` (paper Eq. 2).
//!
//! After the congestion-driven assignment, the paper records how the nets
//! are distributed over the sections delimited by the top-row nets ("if the
//! recorded number is x, nets could be divided into x+1 sections"). During
//! the exchange step every candidate order is scored by how much any
//! section has *grown* relative to that baseline:
//!
//! ```text
//! ID = max_c (I_c_new − I_c_ini),   1 ≤ c ≤ x + 1     (Eq. 2)
//! ```
//!
//! Because monotonic routing concentrates wires on the highest line, a
//! section that grows is a section whose top-line segment gets more
//! crossing wires — so penalising `ID` suppresses density increases without
//! re-routing anything.

use copack_geom::{Assignment, Quadrant};
use copack_route::estimate_congestion;

use crate::CoreError;

/// The section counts recorded right after the congestion-driven
/// assignment — the `I_c^ini` of Eq. 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionBaseline {
    initial: Vec<u32>,
}

impl SectionBaseline {
    /// Records the baseline section counts of `assignment`.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Route`] if the assignment is incomplete.
    pub fn record(quadrant: &Quadrant, assignment: &Assignment) -> Result<Self, CoreError> {
        let est = estimate_congestion(quadrant, assignment)?;
        Ok(Self {
            initial: est.sections,
        })
    }

    /// The recorded `I_c^ini` values.
    #[must_use]
    pub fn initial(&self) -> &[u32] {
        &self.initial
    }

    /// Computes `ID` (Eq. 2) for a candidate order against this baseline.
    ///
    /// Zero when no section grew; always ≥ 0 (the paper's maximum is taken
    /// over signed differences, but since section counts sum to a constant,
    /// any change makes the maximum positive).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Route`] if the candidate is incomplete.
    pub fn increased_density(
        &self,
        quadrant: &Quadrant,
        candidate: &Assignment,
    ) -> Result<u32, CoreError> {
        let est = estimate_congestion(quadrant, candidate)?;
        debug_assert_eq!(est.sections.len(), self.initial.len());
        let id = est
            .sections
            .iter()
            .zip(&self.initial)
            .map(|(&new, &ini)| new.saturating_sub(ini))
            .max()
            .unwrap_or(0);
        Ok(id)
    }
}

/// One-shot convenience wrapper: `ID` of `candidate` relative to
/// `baseline_assignment`.
///
/// # Errors
///
/// Propagates [`CoreError::Route`] for incomplete assignments.
pub fn increased_density(
    quadrant: &Quadrant,
    baseline_assignment: &Assignment,
    candidate: &Assignment,
) -> Result<u32, CoreError> {
    SectionBaseline::record(quadrant, baseline_assignment)?.increased_density(quadrant, candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::FingerIdx;

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    fn dfa_order() -> Assignment {
        Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0])
    }

    #[test]
    fn identical_order_has_zero_id() {
        let q = fig5();
        let a = dfa_order();
        assert_eq!(increased_density(&q, &a, &a).unwrap(), 0);
    }

    #[test]
    fn crowding_a_section_raises_id() {
        let q = fig5();
        let base = dfa_order();
        let baseline = SectionBaseline::record(&q, &base).unwrap();
        // Move net 5 (F9) left past net 9 (F8): the section left of net 9
        // gains a net. Swap slots 8 and 9.
        let mut moved = base.clone();
        moved.swap(FingerIdx::new(8), FingerIdx::new(9)).unwrap();
        let id = baseline.increased_density(&q, &moved).unwrap();
        assert_eq!(id, 1);
    }

    #[test]
    fn moving_within_a_section_keeps_id_zero() {
        let q = fig5();
        let base = dfa_order();
        let baseline = SectionBaseline::record(&q, &base).unwrap();
        // Swap nets 3 and 4 (F6, F7): both live strictly between top-row
        // nets 6 (F5) and 9 (F8) — same section before and after.
        let mut moved = base.clone();
        moved.swap(FingerIdx::new(6), FingerIdx::new(7)).unwrap();
        assert_eq!(baseline.increased_density(&q, &moved).unwrap(), 0);
    }

    #[test]
    fn baseline_matches_fig5_sections() {
        let q = fig5();
        let baseline = SectionBaseline::record(&q, &dfa_order()).unwrap();
        assert_eq!(baseline.initial(), &[1, 2, 2, 4]);
    }

    #[test]
    fn big_migration_shows_up_proportionally() {
        // Compare the clustered random order against the DFA baseline: the
        // random order piles 5 nets into the outermost section (baseline 4)
        // and 4 into the first (baseline 1) → ID = 3.
        let q = fig5();
        let random = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let id = increased_density(&q, &dfa_order(), &random).unwrap();
        assert_eq!(id, 3);
    }

    #[test]
    fn incomplete_candidate_is_an_error() {
        let q = fig5();
        let base = dfa_order();
        let baseline = SectionBaseline::record(&q, &base).unwrap();
        let partial = Assignment::from_order([10u32, 11, 9]);
        assert!(baseline.increased_density(&q, &partial).is_err());
    }
}
