//! Configuration types for the planning pipeline.

use std::fmt;

use copack_power::GridSpec;
use serde::{Deserialize, Serialize};

use crate::{Acceptance, Schedule};

/// Which congestion-driven assignment produces the initial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignMethod {
    /// The random monotonic baseline (paper §4's comparison point).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Intuitive-insertion-based assignment (Fig. 9).
    Ifa,
    /// Density-interval-based assignment (Fig. 11).
    Dfa {
        /// The cut-line slack `n ≥ 1` of the DI formula.
        slack: u32,
    },
}

impl AssignMethod {
    /// The paper's recommended default: DFA ignoring cut-line congestion.
    #[must_use]
    pub const fn dfa_default() -> Self {
        Self::Dfa { slack: 1 }
    }
}

impl fmt::Display for AssignMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Random { seed } => write!(f, "random(seed={seed})"),
            Self::Ifa => f.write_str("ifa"),
            Self::Dfa { slack } => write!(f, "dfa(n={slack})"),
        }
    }
}

/// Weights of the exchange cost function, the paper's Eq. 3 extended
/// with an optional separation-margin term:
/// `Cost = λ·Δ_IR + ρ·ID + φ·ω + μ·SM`.
///
/// `Δ_IR` (a squared perimeter-gap deviation) is dimensionally much smaller
/// than the integer-valued `ID` and `ω`, so λ defaults two orders of
/// magnitude higher. `SM` (the net-separation margin penalty, after
/// Cheng et al.'s margin maximization — see [`crate::margin_penalty`])
/// is **off by default** (μ = 0): default-weight runs are bit-identical
/// to pre-margin builds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// λ: weight of the IR-drop proxy.
    pub lambda: f64,
    /// ρ: weight of the increased-density penalty.
    pub rho: f64,
    /// φ: weight of the bonding-wire balance metric.
    pub phi: f64,
    /// μ: weight of the net-separation margin penalty (0 disables the
    /// term entirely).
    pub margin: f64,
}

impl CostWeights {
    /// Validates that all weights are finite and non-negative.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        [self.lambda, self.rho, self.phi, self.margin]
            .iter()
            .all(|w| w.is_finite() && *w >= 0.0)
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        Self {
            lambda: 800.0,
            rho: 2.0,
            phi: 0.25,
            margin: 0.0,
        }
    }
}

/// How the exchange step's Δ_IR term is evaluated.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum IrObjective {
    /// The paper's fast pad-spacing proxy
    /// ([`copack_power::PadSpacingProxy`]). The default, and the only
    /// practical choice for real schedules.
    #[default]
    Proxy,
    /// Solve the full finite-difference model every move — what the paper
    /// rejects as "very long"; kept for the A3 fidelity ablation. The
    /// solved drop (in volts) replaces the proxy score in Eq. 3; rescale
    /// λ accordingly.
    FullSolve {
        /// The grid to solve on (keep it small: every move pays a solve).
        grid: GridSpec,
    },
}

/// Configuration of the finger/pad exchange step (paper Fig. 14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangeConfig {
    /// Cost-function weights (Eq. 3).
    pub weights: CostWeights,
    /// Annealing schedule.
    pub schedule: Schedule,
    /// Uphill-move acceptance rule.
    pub acceptance: Acceptance,
    /// How Δ_IR is computed.
    pub ir_objective: IrObjective,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        Self {
            weights: CostWeights::default(),
            schedule: Schedule::default(),
            acceptance: Acceptance::Metropolis,
            ir_objective: IrObjective::Proxy,
            seed: 0xC0DE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_are_valid() {
        assert!(CostWeights::default().is_valid());
    }

    #[test]
    fn invalid_weights_are_caught() {
        for bad in [
            CostWeights {
                lambda: -1.0,
                ..CostWeights::default()
            },
            CostWeights {
                rho: f64::NAN,
                ..CostWeights::default()
            },
            CostWeights {
                phi: f64::INFINITY,
                ..CostWeights::default()
            },
        ] {
            assert!(!bad.is_valid());
        }
    }

    #[test]
    fn method_display_is_descriptive() {
        assert_eq!(AssignMethod::Ifa.to_string(), "ifa");
        assert_eq!(AssignMethod::Dfa { slack: 2 }.to_string(), "dfa(n=2)");
        assert_eq!(
            AssignMethod::Random { seed: 7 }.to_string(),
            "random(seed=7)"
        );
        assert_eq!(AssignMethod::dfa_default(), AssignMethod::Dfa { slack: 1 });
    }

    #[test]
    fn default_exchange_config_is_usable() {
        let c = ExchangeConfig::default();
        assert!(c.weights.is_valid());
        assert!(c.schedule.is_valid());
        assert_eq!(c.acceptance, Acceptance::Metropolis);
    }
}
