//! Criterion benchmarks of the IR-drop substrate: SOR vs CG across grid
//! sizes, and the Δ_IR proxy the exchange loop calls thousands of times
//! (its whole reason to exist is being orders of magnitude cheaper than a
//! solve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use copack_power::{solve_cg, solve_sor, GridSpec, PadRing, PadSpacingProxy};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_solve");
    group.sample_size(20);
    for n in [16usize, 32, 48] {
        let spec = GridSpec::default_chip(n);
        let ring = PadRing::uniform(12);
        group.bench_with_input(BenchmarkId::new("sor", n), &(&spec, &ring), |b, (s, r)| {
            b.iter(|| solve_sor(black_box(s), black_box(r)).expect("solves"));
        });
        group.bench_with_input(BenchmarkId::new("cg", n), &(&spec, &ring), |b, (s, r)| {
            b.iter(|| solve_cg(black_box(s), black_box(r)).expect("solves"));
        });
    }
    group.finish();
}

fn bench_proxy(c: &mut Criterion) {
    let ts: Vec<f64> = (0..64).map(|i| (f64::from(i) + 0.37) / 64.0).collect();
    c.bench_function("power_proxy/delta_ir_64_pads", |b| {
        b.iter(|| {
            PadSpacingProxy::new(black_box(&ts))
                .expect("proxy")
                .delta_ir()
        });
    });
}

criterion_group!(benches, bench_solvers, bench_proxy);
criterion_main!(benches);
