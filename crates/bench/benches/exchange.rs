//! Criterion benchmarks of the exchange step: one full annealing run per
//! circuit size (2-D and 4-tier), and the per-move cost evaluation that
//! dominates it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use copack_core::{dfa, exchange, exchange_reference, ExchangeConfig, Schedule, SectionBaseline};
use copack_gen::{circuit, circuits};
use copack_geom::StackConfig;

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    group.sample_size(10);
    // A deliberately short schedule: the benchmark tracks scaling, not
    // solution quality.
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 1e-1,
            cooling: 0.8,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    for circuit in circuits() {
        let nets = circuit.finger_count / 4;
        let q2 = circuit.build_quadrant().expect("builds");
        let initial2 = dfa(&q2, 1).expect("dfa");
        group.bench_with_input(
            BenchmarkId::new("planar", nets),
            &(&q2, &initial2),
            |b, (q, a)| {
                b.iter(|| {
                    exchange(black_box(q), black_box(a), &StackConfig::planar(), &config)
                        .expect("runs")
                });
            },
        );

        let stacked = circuit.stacked(4);
        let q4 = stacked.build_quadrant().expect("builds");
        let initial4 = dfa(&q4, 1).expect("dfa");
        let stack4 = stacked.stack().expect("stack");
        group.bench_with_input(
            BenchmarkId::new("stacked4", nets),
            &(&q4, &initial4),
            |b, (q, a)| {
                b.iter(|| exchange(black_box(q), black_box(a), &stack4, &config).expect("runs"));
            },
        );
    }
    group.finish();
}

fn bench_kernel_vs_reference(c: &mut Criterion) {
    // The headline of the O(1)-per-move rework: the incremental kernel vs
    // the from-scratch reference on the largest circuit, same seed, same
    // trajectory (they are bit-identical under the proxy objective).
    let mut group = c.benchmark_group("exchange_kernel");
    group.sample_size(10);
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 1e-1,
            cooling: 0.8,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    let circuit = circuit(5);
    let q = circuit.build_quadrant().expect("builds");
    let initial = dfa(&q, 1).expect("dfa");
    group.bench_with_input(
        BenchmarkId::new("incremental", "circuit5"),
        &(&q, &initial),
        |b, (q, a)| {
            b.iter(|| {
                exchange(black_box(q), black_box(a), &StackConfig::planar(), &config).expect("runs")
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("reference", "circuit5"),
        &(&q, &initial),
        |b, (q, a)| {
            b.iter(|| {
                exchange_reference(black_box(q), black_box(a), &StackConfig::planar(), &config)
                    .expect("runs")
            });
        },
    );
    group.finish();
}

fn bench_move_cost(c: &mut Criterion) {
    // The ID metric recomputation is the hot inner loop of the annealer.
    let q = circuit(5).build_quadrant().expect("builds");
    let a = dfa(&q, 1).expect("dfa");
    let baseline = SectionBaseline::record(&q, &a).expect("baseline");
    c.bench_function("exchange/id_metric_112_nets", |b| {
        b.iter(|| {
            baseline
                .increased_density(black_box(&q), black_box(&a))
                .expect("id")
        });
    });
}

criterion_group!(
    benches,
    bench_exchange,
    bench_kernel_vs_reference,
    bench_move_cost
);
criterion_main!(benches);
