//! Criterion benchmarks of the assignment algorithms (experiment P1):
//! the paper claims IFA is `O(n²)`, DFA `O(n)`, and all runtimes "within
//! seconds" on 2005-era hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use copack_core::{dfa, ifa, random_assignment};
use copack_gen::finger_count_sweep;

fn bench_assignment_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign");
    for circuit in finger_count_sweep(&[96, 208, 448, 896]) {
        let quadrant = circuit.build_quadrant().expect("builds");
        let nets = quadrant.net_count();
        group.bench_with_input(BenchmarkId::new("ifa", nets), &quadrant, |b, q| {
            b.iter(|| ifa(black_box(q)).expect("ifa"));
        });
        group.bench_with_input(BenchmarkId::new("dfa", nets), &quadrant, |b, q| {
            b.iter(|| dfa(black_box(q), 1).expect("dfa"));
        });
        group.bench_with_input(BenchmarkId::new("random", nets), &quadrant, |b, q| {
            b.iter(|| random_assignment(black_box(q), 7).expect("random"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assignment_methods);
criterion_main!(benches);
