//! Criterion benchmarks of the routing substrate: density analysis, the
//! fast top-line congestion estimator (which the paper's exchange step
//! relies on being much cheaper than full analysis), and path extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use copack_core::dfa;
use copack_gen::circuits;
use copack_route::{
    balanced_density_map, density_map, estimate_congestion, extract_paths, DensityModel,
};

fn bench_routing_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    for circuit in circuits() {
        let quadrant = circuit.build_quadrant().expect("builds");
        let assignment = dfa(&quadrant, 1).expect("dfa");
        let nets = quadrant.net_count();

        group.bench_with_input(
            BenchmarkId::new("density_map", nets),
            &(&quadrant, &assignment),
            |b, (q, a)| {
                b.iter(|| density_map(black_box(q), black_box(a), DensityModel::Geometric));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("estimator", nets),
            &(&quadrant, &assignment),
            |b, (q, a)| {
                b.iter(|| estimate_congestion(black_box(q), black_box(a)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("balanced", nets),
            &(&quadrant, &assignment),
            |b, (q, a)| {
                b.iter(|| balanced_density_map(black_box(q), black_box(a)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("paths", nets),
            &(&quadrant, &assignment),
            |b, (q, a)| {
                b.iter(|| extract_paths(black_box(q), black_box(a)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routing_analysis);
criterion_main!(benches);
