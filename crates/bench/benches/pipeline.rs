//! Criterion benchmark of the full co-design pipeline per circuit — the
//! end-to-end counterpart of the paper's "runtimes for all cases are
//! within seconds" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use copack_core::{Codesign, ExchangeConfig, Schedule};
use copack_gen::circuits;
use copack_power::GridSpec;

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let config = Codesign {
        // A shortened but representative run: coarse grid, short schedule.
        grid: GridSpec::default_chip(24),
        exchange: ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 1,
                final_temp_ratio: 1e-1,
                cooling: 0.8,
                ..Schedule::default()
            },
            ..ExchangeConfig::default()
        },
        ..Codesign::default()
    };
    for circuit in circuits() {
        let quadrant = circuit.build_quadrant().expect("builds");
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.finger_count),
            &quadrant,
            |b, q| {
                b.iter(|| config.run(black_box(q)).expect("pipeline runs"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_full_pipeline);
criterion_main!(benches);
