//! Regenerates the paper's **Fig. 6**: IR-drop maps of the same 138-pad
//! chip under (A) randomly planned power pads, (B) regularly planned power
//! pads, and (C) pads planned by DFA + the finger/pad exchange.
//!
//! The paper's commercial-tool numbers are 117.4 mV, 77.3 mV and 55.2 mV;
//! here the same comparison runs on the finite-difference Eq. 1 model (the
//! substitution documented in DESIGN.md), with the current density
//! calibrated so the regular plan lands in the paper's ~77 mV regime. The
//! "random" panel is the worst of 20 random plans — the paper shows one
//! unspecified random plan; taking the worst makes the panel reproducible.
//!
//! A second sweep repeats the comparison with two power-density hotspots:
//! under non-uniform load the pad plan matters even more (the likely
//! reason the paper's optimised plan beats even the regular ring — a
//! uniform-load model cannot, since the uniform ring is near-optimal
//! there; see EXPERIMENTS.md).
//!
//! The SVG heat maps land in `target/fig6_*.svg`.
//!
//! Run with `cargo run --release -p copack-bench --bin fig6`.

use std::fs;

use copack_core::Codesign;
use copack_gen::{Circuit, NetMix};
use copack_power::{solve_sor, GridSpec, Hotspot, IrMap, PadRing};
use copack_viz::irmap_svg;
use rand::{Rng, SeedableRng};

fn main() {
    // A 138-finger/pad design like the paper's real chip (2.3 M gates,
    // 138 pads). 140 = nearest multiple of 4.
    let chip = Circuit {
        name: "fig6 chip".into(),
        finger_count: 140,
        ball_pitch: 1.2,
        finger_width: 0.006,
        finger_height: 0.2,
        finger_space: 0.007,
        rows: 4,
        mix: NetMix {
            power_fraction: 0.15,
            ground_fraction: 0.15,
        },
        profile: copack_gen::RowProfile::default(),
        tiers: 1,
        seed: 0xF166,
    };
    let quadrant = chip.build_quadrant().expect("chip builds");

    // Current density calibrated to the paper's millivolt regime.
    let grid = GridSpec {
        current_density: 4.6e-7,
        ..GridSpec::default_chip(64)
    };
    let mut hotspot_grid = grid.clone();
    hotspot_grid.hotspots = vec![
        Hotspot {
            cx: 0.3,
            cy: 0.7,
            radius: 0.18,
            multiplier: 3.0,
        },
        Hotspot {
            cx: 0.75,
            cy: 0.25,
            radius: 0.12,
            multiplier: 4.0,
        },
    ];

    let pads = quadrant.nets_of_kind(copack_geom::NetKind::Power).count() * 4;

    for (label, g, paper) in [
        ("uniform load", &grid, Some((117.4, 77.3, 55.2))),
        ("hotspot load", &hotspot_grid, None),
    ] {
        println!("Fig. 6 [{label}]: maximum IR-drop ({pads} power pads, 64x64 grid)");

        // (A) Worst of 20 random pad plans.
        let mut worst: Option<IrMap> = None;
        for seed in 0..20u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let ts: Vec<f64> = (0..pads).map(|_| rng.gen::<f64>()).collect();
            let map = solve_sor(g, &PadRing::from_ts(ts).expect("ring")).expect("solves");
            let better = match &worst {
                Some(w) => map.max_drop() > w.max_drop(),
                None => true,
            };
            if better {
                worst = Some(map);
            }
        }
        let random = worst.expect("twenty plans solved");

        // (B) Regular pad plan.
        let regular = solve_sor(g, &PadRing::uniform(pads)).expect("solves");

        // (C) Our co-design flow: DFA + exchange.
        let report = Codesign {
            grid: g.clone(),
            ..Codesign::default()
        }
        .run(&quadrant)
        .expect("pipeline runs");
        let ours_ts: Vec<f64> = {
            let a = &report.final_assignment;
            let alpha = a.finger_count() as f64;
            quadrant
                .nets_of_kind(copack_geom::NetKind::Power)
                .flat_map(|n| {
                    let frac = (a.position_of(n).expect("placed").get() as f64 - 0.5) / alpha;
                    (0..4).map(move |side| (f64::from(side) + frac) / 4.0)
                })
                .collect()
        };
        let ours = solve_sor(g, &PadRing::from_ts(ours_ts).expect("ring")).expect("solves");

        let scale = random.max_drop() * 1000.0;
        let suffix = if label.starts_with("hotspot") {
            "_hot"
        } else {
            ""
        };
        let paper_mv = paper.map_or([None, None, None], |(a, b, c)| [Some(a), Some(b), Some(c)]);
        for ((name, map), paper_mv) in [("random", &random), ("regular", &regular), ("ours", &ours)]
            .into_iter()
            .zip(paper_mv)
        {
            let mv = map.max_drop() * 1000.0;
            match paper_mv {
                Some(p) => println!("  {name:<8} {mv:8.2} mV   (paper: {p} mV)"),
                None => println!("  {name:<8} {mv:8.2} mV"),
            }
            let path = format!("target/fig6_{name}{suffix}.svg");
            fs::write(&path, irmap_svg(map, scale)).expect("svg written");
        }
        assert!(
            random.max_drop() > regular.max_drop(),
            "a bad random plan must be worse than the regular ring"
        );
        assert!(
            ours.max_drop() <= regular.max_drop() * 1.05,
            "the co-design plan must be competitive with the regular plan"
        );
        println!(
            "  ordering random > regular >= ours reproduced; maps -> target/fig6_*{suffix}.svg\n"
        );
    }
}
