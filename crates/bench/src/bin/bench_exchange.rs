//! Machine-readable exchange-kernel benchmark: runs the incremental
//! [`exchange`] and the from-scratch [`exchange_reference`] on every
//! Table 1 circuit (ψ = 1 and ψ = 4), checks they produce identical
//! results, and writes wall time and moves/second per configuration to
//! `BENCH_exchange.json` for tracking across commits.
//!
//! The runs are strictly serial — concurrent timing on a shared machine
//! would corrupt the numbers.
//!
//! Run with `cargo run --release -p copack-bench --bin bench_exchange`.

use std::fmt::Write as _;
use std::time::Instant;

use copack_core::{
    dfa, exchange, exchange_reference, exchange_traced, ExchangeConfig, ExchangeResult, Schedule,
};
use copack_gen::circuits;
use copack_geom::{Assignment, Quadrant, StackConfig};
use copack_obs::{replay_final_cost, split_runs, JsonlSink, TraceBuffer};

/// One timed run: wall seconds and the proposed-move count.
struct Timing {
    seconds: f64,
    moves: usize,
}

fn time_runs<F>(runs: usize, f: F) -> (Timing, ExchangeResult)
where
    F: Fn() -> ExchangeResult,
{
    // One warm-up, then the timed repetitions.
    let mut result = f();
    let start = Instant::now();
    for _ in 0..runs {
        result = f();
    }
    let seconds = start.elapsed().as_secs_f64() / runs as f64;
    let moves = result.stats.proposed;
    (Timing { seconds, moves }, result)
}

fn json_timing(out: &mut String, key: &str, t: &Timing) {
    let _ = write!(
        out,
        "\"{key}\": {{\"seconds\": {:.6}, \"moves\": {}, \"moves_per_sec\": {:.1}}}",
        t.seconds,
        t.moves,
        t.moves as f64 / t.seconds.max(1e-12)
    );
}

fn bench_pair(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    runs: usize,
) -> (Timing, Timing) {
    let (inc, inc_result) = time_runs(runs, || {
        exchange(quadrant, initial, stack, config).expect("kernel runs")
    });
    let (reference, ref_result) = time_runs(runs, || {
        exchange_reference(quadrant, initial, stack, config).expect("reference runs")
    });
    // The benchmark doubles as an end-to-end equivalence check on real
    // circuit sizes: same seed, same trajectory, same result.
    assert_eq!(
        inc_result, ref_result,
        "kernel diverged from the reference implementation"
    );
    (inc, reference)
}

fn main() {
    // Long enough to amortise the O(P) per-run setup (tracker and cache
    // construction, journal replay) so the numbers measure the per-move
    // inner loop, yet short enough to finish in seconds.
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    let runs = 3;

    let mut entries: Vec<String> = Vec::new();
    for circuit in circuits() {
        for psi in [1u8, 4] {
            let (c, stack) = if psi == 1 {
                (circuit.clone(), StackConfig::planar())
            } else {
                let stacked = circuit.stacked(psi);
                let stack = stacked.stack().expect("valid stack");
                (stacked, stack)
            };
            let quadrant = c.build_quadrant().expect("circuit builds");
            let initial = dfa(&quadrant, 1).expect("dfa");
            let (inc, reference) = bench_pair(&quadrant, &initial, &stack, &config, runs);
            let speedup = reference.seconds / inc.seconds.max(1e-12);

            let mut entry = String::new();
            let _ = write!(
                entry,
                "    {{\"name\": \"{}\", \"psi\": {psi}, \"nets\": {}, ",
                circuit.name,
                quadrant.net_count()
            );
            json_timing(&mut entry, "incremental", &inc);
            entry.push_str(", ");
            json_timing(&mut entry, "reference", &reference);
            let _ = write!(entry, ", \"speedup\": {speedup:.2}}}");
            println!(
                "{} psi={psi}: incremental {:.1} moves/s, reference {:.1} moves/s ({speedup:.2}x)",
                circuit.name,
                inc.moves as f64 / inc.seconds.max(1e-12),
                reference.moves as f64 / reference.seconds.max(1e-12),
            );
            entries.push(entry);
        }
    }

    let telemetry = bench_telemetry(&config, runs);

    let json = format!(
        "{{\n  \"benchmark\": \"exchange\",\n  \"runs_per_config\": {runs},\n  \"circuits\": [\n{}\n  ],\n{telemetry}}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_exchange.json", &json).expect("write BENCH_exchange.json");
    println!("wrote BENCH_exchange.json");
}

/// Measures the telemetry overhead on the largest circuit (Table 1
/// circuit 5, planar): the kernel annealing with a live [`JsonlSink`]
/// versus the untraced kernel, plus the exact-replay check — the trace's
/// accepted moves must replay bit-for-bit to the kernel's final cost.
///
/// The sink stages events in memory during the run and serialises them
/// at `finish`, so the annealing time (what moves/sec is computed over)
/// and the drain time are measured separately — the drain is reporting
/// I/O, not kernel work.
fn bench_telemetry(config: &ExchangeConfig, runs: usize) -> String {
    let all = circuits();
    let circuit = all.last().expect("Table 1 has circuits");
    let quadrant = circuit.build_quadrant().expect("circuit builds");
    let initial = dfa(&quadrant, 1).expect("dfa");
    let stack = StackConfig::planar();

    // The runs are short (a few ms), so scheduler jitter would swamp a
    // back-to-back comparison. Interleave baseline/traced pairs over
    // many repetitions so drift cancels, and take well more repetitions
    // than the table benchmarks do.
    let reps = (runs * 10).max(20);
    let trace_path = std::env::temp_dir().join("bench_exchange_trace.jsonl");
    let mut baseline_result = None;
    let mut traced_result = None;
    let mut baseline_seconds = 0.0;
    let mut anneal_seconds = 0.0;
    let mut drain_seconds = 0.0;
    for timed in 0..=reps {
        let start = Instant::now();
        let base = exchange(&quadrant, &initial, &stack, config).expect("kernel runs");
        let base_elapsed = start.elapsed().as_secs_f64();

        let mut sink = JsonlSink::create(&trace_path).expect("temp trace file");
        let start = Instant::now();
        let result =
            exchange_traced(&quadrant, &initial, &stack, config, &mut sink).expect("kernel runs");
        let anneal = start.elapsed().as_secs_f64();
        let start = Instant::now();
        sink.finish().expect("trace flush");
        // The zeroth pair is warm-up (matching `time_runs`).
        if timed > 0 {
            baseline_seconds += base_elapsed;
            anneal_seconds += anneal;
            drain_seconds += start.elapsed().as_secs_f64();
        }
        baseline_result = Some(base);
        traced_result = Some(result);
    }
    baseline_seconds /= reps as f64;
    anneal_seconds /= reps as f64;
    drain_seconds /= reps as f64;
    assert_eq!(
        baseline_result, traced_result,
        "telemetry perturbed the kernel's result"
    );
    let moves = baseline_result.expect("ran at least once").stats.proposed;
    let baseline = Timing {
        seconds: baseline_seconds,
        moves,
    };
    let traced = Timing {
        seconds: anneal_seconds,
        moves,
    };
    let _ = std::fs::remove_file(&trace_path);

    // Exact replay: capture the same run in memory and fold the accepted
    // moves back to the final cost.
    let mut buffer = TraceBuffer::new();
    let result =
        exchange_traced(&quadrant, &initial, &stack, config, &mut buffer).expect("kernel runs");
    let events = buffer.into_events();
    let replayed = split_runs(&events)
        .first()
        .and_then(|run| replay_final_cost(run))
        .expect("trace has a run");
    assert_eq!(
        replayed.to_bits(),
        result.stats.final_cost.to_bits(),
        "trace replay diverged from the kernel's final cost"
    );

    let base_rate = baseline.moves as f64 / baseline.seconds.max(1e-12);
    let traced_rate = traced.moves as f64 / traced.seconds.max(1e-12);
    let overhead_percent = 100.0 * (base_rate / traced_rate.max(1e-12) - 1.0);
    println!(
        "telemetry ({} psi=1): untraced {base_rate:.1} moves/s, jsonl {traced_rate:.1} moves/s \
         ({overhead_percent:.1}% overhead, drain {:.1} ms), replay exact over {} events",
        circuit.name,
        drain_seconds * 1e3,
        events.len()
    );
    if overhead_percent >= 10.0 {
        eprintln!("warning: telemetry overhead {overhead_percent:.1}% exceeds the 10% budget");
    }

    let mut block = String::new();
    let _ = write!(
        block,
        "  \"telemetry\": {{\"circuit\": \"{}\", \"psi\": 1, ",
        circuit.name
    );
    json_timing(&mut block, "untraced", &baseline);
    block.push_str(", ");
    json_timing(&mut block, "jsonl", &traced);
    let _ = writeln!(
        block,
        ", \"overhead_percent\": {overhead_percent:.2}, \"drain_seconds\": {drain_seconds:.6}, \
         \"events\": {}, \"replay_exact\": true}}",
        events.len()
    );
    block
}
