//! Machine-readable exchange-kernel benchmark: runs the incremental
//! [`exchange`] and the from-scratch [`exchange_reference`] on every
//! Table 1 circuit (ψ = 1 and ψ = 4), checks they produce identical
//! results, and writes wall time and moves/second per configuration to
//! `BENCH_exchange.json` for tracking across commits.
//!
//! The runs are strictly serial — concurrent timing on a shared machine
//! would corrupt the numbers.
//!
//! Run with `cargo run --release -p copack-bench --bin bench_exchange`.

use std::fmt::Write as _;
use std::time::Instant;

use copack_core::{dfa, exchange, exchange_reference, ExchangeConfig, ExchangeResult, Schedule};
use copack_gen::circuits;
use copack_geom::{Assignment, Quadrant, StackConfig};

/// One timed run: wall seconds and the proposed-move count.
struct Timing {
    seconds: f64,
    moves: usize,
}

fn time_runs<F>(runs: usize, f: F) -> (Timing, ExchangeResult)
where
    F: Fn() -> ExchangeResult,
{
    // One warm-up, then the timed repetitions.
    let mut result = f();
    let start = Instant::now();
    for _ in 0..runs {
        result = f();
    }
    let seconds = start.elapsed().as_secs_f64() / runs as f64;
    let moves = result.stats.proposed;
    (Timing { seconds, moves }, result)
}

fn json_timing(out: &mut String, key: &str, t: &Timing) {
    let _ = write!(
        out,
        "\"{key}\": {{\"seconds\": {:.6}, \"moves\": {}, \"moves_per_sec\": {:.1}}}",
        t.seconds,
        t.moves,
        t.moves as f64 / t.seconds.max(1e-12)
    );
}

fn bench_pair(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    runs: usize,
) -> (Timing, Timing) {
    let (inc, inc_result) = time_runs(runs, || {
        exchange(quadrant, initial, stack, config).expect("kernel runs")
    });
    let (reference, ref_result) = time_runs(runs, || {
        exchange_reference(quadrant, initial, stack, config).expect("reference runs")
    });
    // The benchmark doubles as an end-to-end equivalence check on real
    // circuit sizes: same seed, same trajectory, same result.
    assert_eq!(
        inc_result, ref_result,
        "kernel diverged from the reference implementation"
    );
    (inc, reference)
}

fn main() {
    // Long enough to amortise the O(P) per-run setup (tracker and cache
    // construction, journal replay) so the numbers measure the per-move
    // inner loop, yet short enough to finish in seconds.
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    let runs = 3;

    let mut entries: Vec<String> = Vec::new();
    for circuit in circuits() {
        for psi in [1u8, 4] {
            let (c, stack) = if psi == 1 {
                (circuit.clone(), StackConfig::planar())
            } else {
                let stacked = circuit.stacked(psi);
                let stack = stacked.stack().expect("valid stack");
                (stacked, stack)
            };
            let quadrant = c.build_quadrant().expect("circuit builds");
            let initial = dfa(&quadrant, 1).expect("dfa");
            let (inc, reference) = bench_pair(&quadrant, &initial, &stack, &config, runs);
            let speedup = reference.seconds / inc.seconds.max(1e-12);

            let mut entry = String::new();
            let _ = write!(
                entry,
                "    {{\"name\": \"{}\", \"psi\": {psi}, \"nets\": {}, ",
                circuit.name,
                quadrant.net_count()
            );
            json_timing(&mut entry, "incremental", &inc);
            entry.push_str(", ");
            json_timing(&mut entry, "reference", &reference);
            let _ = write!(entry, ", \"speedup\": {speedup:.2}}}");
            println!(
                "{} psi={psi}: incremental {:.1} moves/s, reference {:.1} moves/s ({speedup:.2}x)",
                circuit.name,
                inc.moves as f64 / inc.seconds.max(1e-12),
                reference.moves as f64 / reference.seconds.max(1e-12),
            );
            entries.push(entry);
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"exchange\",\n  \"runs_per_config\": {runs},\n  \"circuits\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_exchange.json", &json).expect("write BENCH_exchange.json");
    println!("wrote BENCH_exchange.json");
}
