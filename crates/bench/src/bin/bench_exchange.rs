//! Machine-readable exchange-kernel benchmark: runs the incremental
//! [`exchange`] and the from-scratch [`exchange_reference`] on every
//! Table 1 circuit (ψ = 1 and ψ = 4), checks they produce identical
//! results, and writes wall time and moves/second per configuration to
//! `BENCH_exchange.json` for tracking across commits.
//!
//! The runs are strictly serial — concurrent timing on a shared machine
//! would corrupt the numbers.
//!
//! Run with `cargo run --release -p copack-bench --bin bench_exchange`.

use std::fmt::Write as _;
use std::time::Instant;

use copack_core::{
    dfa, exchange, exchange_reference, exchange_traced, ExchangeConfig, ExchangeResult, Schedule,
};
use copack_gen::{circuits, large_circuit};
use copack_geom::{Assignment, Quadrant, StackConfig};
use copack_obs::{replay_final_cost, split_runs, JsonlSink, TraceBuffer};

/// One timed run: wall seconds and the proposed-move count.
struct Timing {
    seconds: f64,
    moves: usize,
}

fn time_runs<F>(runs: usize, f: F) -> (Timing, ExchangeResult)
where
    F: Fn() -> ExchangeResult,
{
    // One warm-up, then the timed repetitions.
    let mut result = f();
    let start = Instant::now();
    for _ in 0..runs {
        result = f();
    }
    let seconds = start.elapsed().as_secs_f64() / runs as f64;
    let moves = result.stats.proposed;
    (Timing { seconds, moves }, result)
}

fn json_timing(out: &mut String, key: &str, t: &Timing) {
    let _ = write!(
        out,
        "\"{key}\": {{\"seconds\": {:.6}, \"moves\": {}, \"moves_per_sec\": {:.1}}}",
        t.seconds,
        t.moves,
        t.moves as f64 / t.seconds.max(1e-12)
    );
}

fn bench_pair(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    runs: usize,
) -> (Timing, Timing) {
    let (inc, inc_result) = time_runs(runs, || {
        exchange(quadrant, initial, stack, config).expect("kernel runs")
    });
    let (reference, ref_result) = time_runs(runs, || {
        exchange_reference(quadrant, initial, stack, config).expect("reference runs")
    });
    // The benchmark doubles as an end-to-end equivalence check on real
    // circuit sizes: same seed, same trajectory, same result.
    assert_eq!(
        inc_result, ref_result,
        "kernel diverged from the reference implementation"
    );
    (inc, reference)
}

fn main() {
    // Long enough to amortise the O(P) per-run setup (tracker and cache
    // construction, journal replay) so the numbers measure the per-move
    // inner loop, yet short enough to finish in seconds.
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    let runs = 3;

    let mut entries: Vec<String> = Vec::new();
    for circuit in circuits() {
        for psi in [1u8, 4] {
            let (c, stack) = if psi == 1 {
                (circuit.clone(), StackConfig::planar())
            } else {
                let stacked = circuit.stacked(psi);
                let stack = stacked.stack().expect("valid stack");
                (stacked, stack)
            };
            let quadrant = c.build_quadrant().expect("circuit builds");
            let initial = dfa(&quadrant, 1).expect("dfa");
            let (inc, reference) = bench_pair(&quadrant, &initial, &stack, &config, runs);
            let speedup = reference.seconds / inc.seconds.max(1e-12);

            let mut entry = String::new();
            let _ = write!(
                entry,
                "    {{\"name\": \"{}\", \"psi\": {psi}, \"nets\": {}, ",
                circuit.name,
                quadrant.net_count()
            );
            json_timing(&mut entry, "incremental", &inc);
            entry.push_str(", ");
            json_timing(&mut entry, "reference", &reference);
            let _ = write!(entry, ", \"speedup\": {speedup:.2}}}");
            println!(
                "{} psi={psi}: incremental {:.1} moves/s, reference {:.1} moves/s ({speedup:.2}x)",
                circuit.name,
                inc.moves as f64 / inc.seconds.max(1e-12),
                reference.moves as f64 / reference.seconds.max(1e-12),
            );
            entries.push(entry);
        }
    }

    bench_large(&mut entries);

    let telemetry = bench_telemetry(&config, runs);

    let json = format!(
        "{{\n  \"benchmark\": \"exchange\",\n  \"runs_per_config\": {runs},\n  \"circuits\": [\n{}\n  ],\n{telemetry}}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_exchange.json", &json).expect("write BENCH_exchange.json");
    println!("wrote BENCH_exchange.json");
}

/// Industrial-scale rows: the dense-index kernel against the keyed
/// reference at 1k and 4k nets per quadrant. At these sizes the sparse
/// lookups the reference still does per move stop fitting in cache, so
/// the gap is the whole point of the interning layer — the run asserts
/// the dense kernel holds at least a 1.5× moves/sec lead, turning the
/// bench into a crossover regression gate rather than a scoreboard.
///
/// The schedule is deliberately starved (one move per temperature per
/// finger, fast cooling) to bound the reference's wall time; both
/// kernels run the identical trajectory, so the ratio is unaffected.
fn bench_large(entries: &mut Vec<String>) {
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 5e-2,
            cooling: 0.7,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    for size in ["1k", "4k"] {
        let spec = large_circuit(size, 42).expect("preset name");
        let stack = spec.stack().expect("valid stack");
        let quadrant = spec.build_quadrant().expect("instance builds");
        let initial = dfa(&quadrant, 1).expect("dfa");
        let (inc, reference) = bench_pair(&quadrant, &initial, &stack, &config, 1);
        let inc_rate = inc.moves as f64 / inc.seconds.max(1e-12);
        let ref_rate = reference.moves as f64 / reference.seconds.max(1e-12);
        let speedup = reference.seconds / inc.seconds.max(1e-12);
        assert!(
            inc_rate >= 1.5 * ref_rate,
            "{}: dense kernel at {inc_rate:.1} moves/s lost its 1.5x lead \
             over the reference at {ref_rate:.1} moves/s",
            spec.name
        );

        let mut entry = String::new();
        let _ = write!(
            entry,
            "    {{\"name\": \"{}\", \"psi\": {}, \"nets\": {}, ",
            spec.name,
            spec.tiers,
            quadrant.net_count()
        );
        json_timing(&mut entry, "incremental", &inc);
        entry.push_str(", ");
        json_timing(&mut entry, "reference", &reference);
        let _ = write!(entry, ", \"speedup\": {speedup:.2}}}");
        println!(
            "{} psi={}: incremental {inc_rate:.1} moves/s, reference {ref_rate:.1} moves/s \
             ({speedup:.2}x)",
            spec.name, spec.tiers,
        );
        entries.push(entry);
    }
}

/// The middle element (upper-median) of an unsorted sample.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measures the telemetry overhead on the largest circuit (Table 1
/// circuit 5, planar): the kernel annealing with a live [`JsonlSink`]
/// versus the untraced kernel, plus the exact-replay check — the trace's
/// accepted moves must replay bit-for-bit to the kernel's final cost.
///
/// The sink stages events in memory during the run and serialises them
/// at `finish`, so the annealing time (what moves/sec is computed over)
/// and the drain time are measured separately — the drain is reporting
/// I/O, not kernel work.
fn bench_telemetry(config: &ExchangeConfig, runs: usize) -> String {
    let all = circuits();
    let circuit = all.last().expect("Table 1 has circuits");
    let quadrant = circuit.build_quadrant().expect("circuit builds");
    let initial = dfa(&quadrant, 1).expect("dfa");
    let stack = StackConfig::planar();

    // The runs are short (a few ms), so scheduler jitter would swamp a
    // back-to-back comparison. Interleave baseline/traced pairs over
    // many repetitions and take the per-stream *median* — a mean lets a
    // single scheduler stall in either stream swing the overhead figure
    // by more than the quantity being measured.
    let reps = (runs * 10).max(20);
    let trace_path = std::env::temp_dir().join("bench_exchange_trace.jsonl");
    let mut baseline_result = None;
    let mut traced_result = None;
    let mut baseline_samples = Vec::with_capacity(reps);
    let mut anneal_samples = Vec::with_capacity(reps);
    let mut drain_samples = Vec::with_capacity(reps);
    for timed in 0..=reps {
        let start = Instant::now();
        let base = exchange(&quadrant, &initial, &stack, config).expect("kernel runs");
        let base_elapsed = start.elapsed().as_secs_f64();

        let mut sink = JsonlSink::create(&trace_path).expect("temp trace file");
        let start = Instant::now();
        let result =
            exchange_traced(&quadrant, &initial, &stack, config, &mut sink).expect("kernel runs");
        let anneal = start.elapsed().as_secs_f64();
        let start = Instant::now();
        sink.finish().expect("trace flush");
        // The zeroth pair is warm-up (matching `time_runs`).
        if timed > 0 {
            baseline_samples.push(base_elapsed);
            anneal_samples.push(anneal);
            drain_samples.push(start.elapsed().as_secs_f64());
        }
        baseline_result = Some(base);
        traced_result = Some(result);
    }
    let baseline_seconds = median(&mut baseline_samples);
    let anneal_seconds = median(&mut anneal_samples);
    let drain_seconds = median(&mut drain_samples);
    assert_eq!(
        baseline_result, traced_result,
        "telemetry perturbed the kernel's result"
    );
    let moves = baseline_result.expect("ran at least once").stats.proposed;
    let baseline = Timing {
        seconds: baseline_seconds,
        moves,
    };
    let traced = Timing {
        seconds: anneal_seconds,
        moves,
    };
    let _ = std::fs::remove_file(&trace_path);

    // Exact replay: capture the same run in memory and fold the accepted
    // moves back to the final cost.
    let mut buffer = TraceBuffer::new();
    let result =
        exchange_traced(&quadrant, &initial, &stack, config, &mut buffer).expect("kernel runs");
    let events = buffer.into_events();
    let replayed = split_runs(&events)
        .first()
        .and_then(|run| replay_final_cost(run))
        .expect("trace has a run");
    assert_eq!(
        replayed.to_bits(),
        result.stats.final_cost.to_bits(),
        "trace replay diverged from the kernel's final cost"
    );

    let base_rate = baseline.moves as f64 / baseline.seconds.max(1e-12);
    let traced_rate = traced.moves as f64 / traced.seconds.max(1e-12);
    // Medians still leave the traced stream occasionally *faster* than
    // the baseline on a noisy host; a negative overhead is measurement
    // noise, not a real speedup, so clamp at zero rather than report it.
    let overhead_percent = (100.0 * (base_rate / traced_rate.max(1e-12) - 1.0)).max(0.0);
    println!(
        "telemetry ({} psi=1): untraced {base_rate:.1} moves/s, jsonl {traced_rate:.1} moves/s \
         ({overhead_percent:.1}% overhead, drain {:.1} ms), replay exact over {} events",
        circuit.name,
        drain_seconds * 1e3,
        events.len()
    );
    assert!(
        overhead_percent < 10.0,
        "telemetry overhead {overhead_percent:.1}% exceeds the 10% budget"
    );

    let mut block = String::new();
    let _ = write!(
        block,
        "  \"telemetry\": {{\"circuit\": \"{}\", \"psi\": 1, ",
        circuit.name
    );
    json_timing(&mut block, "untraced", &baseline);
    block.push_str(", ");
    json_timing(&mut block, "jsonl", &traced);
    let _ = writeln!(
        block,
        ", \"overhead_percent\": {overhead_percent:.2}, \"drain_seconds\": {drain_seconds:.6}, \
         \"events\": {}, \"replay_exact\": true}}",
        events.len()
    );
    block
}
