//! Regenerates the paper's **Fig. 15**: routing plots of circuit 2 under
//! the random, IFA and DFA assignments. Writes three SVGs to
//! `target/fig15_{random,ifa,dfa}.svg` and prints the per-plot metrics
//! (DFA should look the straightest and score the lowest density, as in
//! the paper).
//!
//! Run with `cargo run --release -p copack-bench --bin fig15`.

use std::fs;

use copack_core::{assign, AssignMethod};
use copack_gen::circuit;
use copack_geom::Package;
use copack_route::{analyze, DensityModel};
use copack_viz::{package_svg, routing_svg, routing_svg_balanced};

fn main() {
    let c = circuit(2);
    let q = c.build_quadrant().expect("circuit 2 builds");

    let cases = [
        ("random", AssignMethod::Random { seed: 11 }),
        ("ifa", AssignMethod::Ifa),
        ("dfa", AssignMethod::dfa_default()),
    ];

    println!("Fig. 15: routing plots of {} (one quadrant)", c.name);
    let mut densities = Vec::new();
    for (name, method) in cases {
        let a = assign(&q, method).expect("assignment");
        let report = analyze(&q, &a, DensityModel::Geometric).expect("routable");
        let svg = routing_svg(&q, &a).expect("renders");
        let path = format!("target/fig15_{name}.svg");
        fs::write(&path, svg).expect("svg written");
        let balanced = routing_svg_balanced(&q, &a).expect("renders");
        fs::write(format!("target/fig15_{name}_balanced.svg"), balanced).expect("svg written");
        println!(
            "  {name:<7} max density {:>2}, wirelength {:>8.2} um  -> {path}",
            report.max_density, report.total_wirelength
        );
        densities.push(report.max_density);
    }
    assert!(
        densities[2] <= densities[1] && densities[1] <= densities[0],
        "expected DFA <= IFA <= random, got {densities:?}"
    );
    println!("Ordering DFA <= IFA <= random reproduced (paper shows the same).");

    // Bonus: the whole four-quadrant package under the DFA plan.
    let dfa = assign(&q, AssignMethod::dfa_default()).expect("dfa");
    let package = Package::uniform(q);
    let sides = [dfa.clone(), dfa.clone(), dfa.clone(), dfa];
    let svg = package_svg(&package, &sides).expect("renders");
    std::fs::write("target/fig15_package.svg", svg).expect("svg written");
    println!("Whole-package view -> target/fig15_package.svg");
}
