//! Regenerates the paper's **Fig. 13** comparison: on a deeper (4-row,
//! 20-net) ball grid, DFA beats IFA because IFA's insertion only looks at
//! two adjacent lines (paper numbers: IFA density 6, DFA density 5).
//!
//! The paper does not publish Fig. 13's ball layout, and its printed IFA
//! order follows an insert-*after* convention that contradicts the §3.1.1
//! worked example (see EXPERIMENTS.md), so this binary reproduces the
//! *claim* — DFA ≤ IFA on deep grids, with a strict win on at least one
//! instance — across a family of 20-net 4-row instances.
//!
//! Run with `cargo run --release -p copack-bench --bin fig13`.

use copack_bench::TextTable;
use copack_core::{dfa, ifa};
use copack_gen::Circuit;
use copack_route::{analyze, DensityModel};

fn main() {
    let mut table = TextTable::new(["Instance", "IFA density", "DFA density"]);
    let mut ifa_total = 0u32;
    let mut dfa_total = 0u32;
    let mut dfa_wins = 0usize;

    for seed in 0..10u64 {
        let circuit = Circuit {
            name: format!("fig13-{seed}"),
            finger_count: 80, // 20 nets per quadrant, like the figure
            ball_pitch: 1.0,
            finger_width: 0.02,
            finger_height: 0.3,
            finger_space: 0.02,
            rows: 4,
            mix: copack_gen::NetMix {
                power_fraction: 0.0,
                ground_fraction: 0.0,
            },
            profile: copack_gen::RowProfile::default(),
            tiers: 1,
            seed,
        };
        let q = circuit.build_quadrant().expect("instance builds");
        let ifa_d = analyze(&q, &ifa(&q).expect("ifa"), DensityModel::Geometric)
            .expect("routable")
            .max_density;
        let dfa_d = analyze(&q, &dfa(&q, 1).expect("dfa"), DensityModel::Geometric)
            .expect("routable")
            .max_density;
        table.row([circuit.name.clone(), ifa_d.to_string(), dfa_d.to_string()]);
        ifa_total += ifa_d;
        dfa_total += dfa_d;
        if dfa_d < ifa_d {
            dfa_wins += 1;
        }
        assert!(dfa_d <= ifa_d, "DFA must never lose to IFA on deep grids");
    }

    println!("Fig. 13: IFA vs DFA on 20-net, 4-row quadrants (10 seeds)");
    println!("{}", table.render());
    println!(
        "totals: IFA {ifa_total}, DFA {dfa_total}; DFA strictly better on {dfa_wins}/10 \
         (paper's single instance: IFA 6, DFA 5)"
    );
    assert!(dfa_wins >= 1, "DFA must strictly win somewhere");
}
