//! Regenerates the paper's **Table 2** (see
//! [`copack_bench::table2_report`] for the experiment description).
//!
//! Run with `cargo run --release -p copack-bench --bin table2`.

fn main() {
    print!("{}", copack_bench::table2_report());
}
