//! Regenerates the paper's **Table 2**: maximum package density and total
//! wirelength of the Random / IFA / DFA assignments on the five Table 1
//! circuits, plus the normalised average row.
//!
//! Paper reference values: average density ratios 1 / 0.63 / 0.36 and
//! average wirelength ratios 1 / 0.88 / 0.82; every circuit satisfies
//! Random > IFA > DFA on density.
//!
//! Run with `cargo run --release -p copack-bench --bin table2`.

use copack_bench::{f2, par_map, thousands, TextTable};
use copack_core::{assign, AssignMethod};
use copack_gen::circuits;
use copack_route::{analyze, balanced_density_map, DensityModel};

fn main() {
    // The random baseline averages a few seeds so one unlucky draw does not
    // skew the ratios (the paper's random column is a single sample of an
    // unspecified seed).
    const RANDOM_SEEDS: [u64; 5] = [11, 23, 37, 51, 73];

    let mut table = TextTable::new([
        "Input case",
        "Bal Random",
        "Bal IFA",
        "Bal DFA",
        "Fly Random",
        "Fly IFA",
        "Fly DFA",
        "WL Random",
        "WL IFA",
        "WL DFA",
    ]);

    // The five circuits are independent; measure them concurrently and
    // aggregate in input order (the output is thread-count invariant).
    let circuits = circuits();
    let rows = par_map(&circuits, 0, |circuit| {
        let quadrant = circuit.build_quadrant().expect("circuit builds");

        let mut rand_density = 0.0;
        let mut rand_balanced = 0.0;
        let mut rand_wl = 0.0;
        for &seed in &RANDOM_SEEDS {
            let a = assign(&quadrant, AssignMethod::Random { seed }).expect("random");
            let r = analyze(&quadrant, &a, DensityModel::Geometric).expect("routable");
            rand_density += f64::from(r.max_density);
            rand_balanced += f64::from(
                balanced_density_map(&quadrant, &a)
                    .expect("routable")
                    .max_density(),
            );
            rand_wl += r.total_wirelength;
        }
        rand_density /= RANDOM_SEEDS.len() as f64;
        rand_balanced /= RANDOM_SEEDS.len() as f64;
        rand_wl /= RANDOM_SEEDS.len() as f64;

        let ifa_a = assign(&quadrant, AssignMethod::Ifa).expect("ifa");
        let ifa_r = analyze(&quadrant, &ifa_a, DensityModel::Geometric).expect("routable");
        let ifa_bal = balanced_density_map(&quadrant, &ifa_a)
            .expect("routable")
            .max_density();
        let dfa_a = assign(&quadrant, AssignMethod::dfa_default()).expect("dfa");
        let dfa_r = analyze(&quadrant, &dfa_a, DensityModel::Geometric).expect("routable");
        let dfa_bal = balanced_density_map(&quadrant, &dfa_a)
            .expect("routable")
            .max_density();

        // The paper reports whole-package numbers (4 identical quadrants):
        // density is per-quadrant, wirelength sums over the package.
        let wl_scale = 4.0;
        let cells = [
            circuit.name.clone(),
            f2(rand_balanced),
            ifa_bal.to_string(),
            dfa_bal.to_string(),
            f2(rand_density),
            ifa_r.max_density.to_string(),
            dfa_r.max_density.to_string(),
            thousands(rand_wl * wl_scale),
            thousands(ifa_r.total_wirelength * wl_scale),
            thousands(dfa_r.total_wirelength * wl_scale),
        ];
        // ratios: balanced ifa, dfa; flyline ifa, dfa; wl ifa, dfa
        let ratios = [
            f64::from(ifa_bal) / rand_balanced,
            f64::from(dfa_bal) / rand_balanced,
            f64::from(ifa_r.max_density) / rand_density,
            f64::from(dfa_r.max_density) / rand_density,
            ifa_r.total_wirelength / rand_wl,
            dfa_r.total_wirelength / rand_wl,
        ];
        (cells, ratios)
    });

    let mut ratio_sums = [0.0f64; 6];
    for (cells, ratios) in rows {
        table.row(cells);
        for (sum, r) in ratio_sums.iter_mut().zip(ratios) {
            *sum += r;
        }
    }

    let n = circuits.len() as f64;
    table.row([
        "Average".to_owned(),
        "1.00".to_owned(),
        f2(ratio_sums[0] / n),
        f2(ratio_sums[1] / n),
        "1.00".to_owned(),
        f2(ratio_sums[2] / n),
        f2(ratio_sums[3] / n),
        "1.00".to_owned(),
        f2(ratio_sums[4] / n),
        f2(ratio_sums[5] / n),
    ]);

    println!(
        "Table 2: maximum density and total wirelength (random avg of {} seeds)",
        RANDOM_SEEDS.len()
    );
    println!("{}", table.render());
    println!("'Bal' = crossings balanced by the router (the paper routes with [10]'s");
    println!("iterative improvement, so its numbers are post-balancing); 'Fly' = naive");
    println!("flyline crossings.");
    println!("Paper averages: density 1 / 0.63 / 0.36, wirelength 1 / 0.88 / 0.82");
}
