//! Regenerates the paper's **Fig. 5 / Fig. 10 / Fig. 12** worked example
//! (see [`copack_bench::fig5_report`] for the experiment description).
//!
//! Run with `cargo run --release -p copack-bench --bin fig5`.

fn main() {
    print!("{}", copack_bench::fig5_report());
}
