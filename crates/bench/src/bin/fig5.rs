//! Regenerates the paper's **Fig. 5 / Fig. 10 / Fig. 12** worked example:
//! the 12-net, 3-row quadrant under the random order (density 4), the IFA
//! order (density 2) and the DFA order (density 2), printed with the same
//! finger orders the paper lists.
//!
//! Run with `cargo run --release -p copack-bench --bin fig5`.

use copack_core::{dfa, ifa};
use copack_geom::{Assignment, Quadrant, QuadrantGeometry};
use copack_route::{analyze, DensityModel};
use copack_viz::{density_histogram, routing_ascii};

fn main() {
    // Figure-style geometry: fingers span the ball grid, as drawn.
    let geometry = QuadrantGeometry {
        ball_pitch: 1.0,
        finger_pitch: 0.5,
        finger_width: 0.3,
        finger_height: 0.4,
        via_diameter: 0.1,
        ball_diameter: 0.2,
    };
    let q = Quadrant::builder()
        .row([10u32, 2, 4, 7, 0])
        .row([1u32, 3, 5, 8])
        .row([11u32, 6, 9])
        .geometry(geometry)
        .build()
        .expect("the Fig. 5 instance builds");

    let cases = [
        (
            "Fig. 5(A) random order",
            Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]),
            4u32,
        ),
        ("Fig. 10 IFA", ifa(&q).expect("ifa runs"), 2),
        ("Fig. 12 DFA", dfa(&q, 1).expect("dfa runs"), 2),
    ];

    for (name, assignment, paper_density) in cases {
        let report = analyze(&q, &assignment, DensityModel::Geometric).expect("orders are legal");
        println!("== {name} ==");
        print!("{}", routing_ascii(&q, &assignment).expect("renders"));
        print!(
            "{}",
            density_histogram(&q, &assignment, DensityModel::Geometric).expect("renders")
        );
        println!(
            "max density {} (paper: {paper_density}), wirelength {:.2} um\n",
            report.max_density, report.total_wirelength
        );
        assert_eq!(
            report.max_density, paper_density,
            "{name}: model disagrees with the paper"
        );
    }
    println!("All three worked examples match the paper exactly.");
}
