//! Machine-readable auto-tuner benchmark: `copack-tune` over the
//! eight-member tuning family (quick space, two halving rounds) and
//! the industrial `large-1k` instance (a fast-schedule space, one
//! round), gating the subsystem's never-worse guarantee — for **every
//! instance class** the tuned winner's full-run cost is at most the
//! default configuration's. A final end-to-end spot check replays one
//! family member through `exchange_portfolio` under the emitted
//! profile and under the defaults, and asserts the tuned run does not
//! lose there either.
//!
//! Unlike the timing benches, every number here is deterministic (the
//! tuner is seeded and thread-invariant), so the gate is exact, not
//! statistical. Wall-clock totals are reported for context only.
//! Results go to `BENCH_tune.json`.
//!
//! Run with `cargo run --release -p copack-bench --bin bench_tune`.

use std::fmt::Write as _;
use std::time::Instant;

use copack_core::{dfa, exchange_portfolio, ExchangeConfig, PortfolioConfig, Schedule};
use copack_gen::{large_circuit, tune_family};
use copack_geom::{Quadrant, StackConfig};
use copack_io::ClassConfig;
use copack_tune::{tune, TrialSpace, TuneOptions};

/// One class outcome as a JSON object line.
fn class_entry(suite: &str, class: &copack_tune::ClassOutcome) -> String {
    let mut entry = String::new();
    let _ = write!(
        entry,
        "    {{\"suite\": \"{suite}\", \"class\": \"{}\", \"members\": {}, \
         \"winner_point\": {}, \"default_cost\": {:.6}, \"winner_cost\": {:.6}, \
         \"correlation\": {:.4}, \"pruned_points\": {}}}",
        class.key,
        class.members.len(),
        class.winner,
        class.default_cost,
        class.winner_cost,
        class.correlation,
        class.pruned_points
    );
    entry
}

/// Gates every class of a report on the never-worse guarantee.
fn gate(suite: &str, report: &copack_tune::TuneReport, entries: &mut Vec<String>) {
    for class in &report.classes {
        assert!(
            class.winner_cost <= class.default_cost,
            "{suite}/{}: tuned winner {:.6} regressed past the default {:.6}",
            class.key,
            class.winner_cost,
            class.default_cost
        );
        entries.push(class_entry(suite, class));
    }
}

/// Full-length portfolio cost of `point` on one instance, the way
/// `copack plan --profile` runs it (base seed, single-threaded).
fn plan_cost(quadrant: &Quadrant, stack: &StackConfig, point: &ClassConfig) -> f64 {
    let mut config = ExchangeConfig::default();
    let mut portfolio = PortfolioConfig::default();
    point.apply(&mut config, &mut portfolio);
    portfolio.threads = 1;
    let initial = dfa(quadrant, 1).expect("dfa");
    exchange_portfolio(quadrant, &initial, stack, &config, &portfolio)
        .expect("portfolio runs")
        .result
        .stats
        .final_cost
}

fn main() {
    let mut entries: Vec<String> = Vec::new();

    // Suite 1: the tuning family under the CI-quick space and the
    // default two-round halving schedule.
    let family: Vec<(String, Quadrant, StackConfig)> = tune_family()
        .iter()
        .map(|c| {
            (
                c.name.replace(' ', ""),
                c.build_quadrant().expect("family member builds"),
                c.stack().expect("family member stacks"),
            )
        })
        .collect();
    let started = Instant::now();
    let family_report =
        tune(&family, &TrialSpace::quick(), &TuneOptions::default()).expect("family tune runs");
    let family_seconds = started.elapsed().as_secs_f64();
    gate("family-quick", &family_report, &mut entries);
    println!(
        "family-quick: {} classes, {} trials, {family_seconds:.3} s",
        family_report.classes.len(),
        family_report.trials
    );

    // Suite 2: the industrial large-1k instance under a fast-schedule
    // single-start space — the shape a user would tune a big design
    // with when full-length portfolios are too expensive to sweep.
    let spec = large_circuit("1k", 42).expect("preset name");
    let quadrant = spec.build_quadrant().expect("instance builds");
    let stack = spec.stack().expect("valid stack");
    let base = ClassConfig::from_configs(
        &ExchangeConfig {
            schedule: Schedule {
                cooling: 0.7,
                moves_per_temp_per_finger: 1,
                ..Schedule::default()
            },
            ..ExchangeConfig::default()
        },
        &PortfolioConfig {
            starts: 1,
            ..PortfolioConfig::default()
        },
    );
    let space = TrialSpace {
        points: vec![
            base,
            ClassConfig {
                cooling: 0.85,
                ..base
            },
            ClassConfig {
                lambda: base.lambda * 0.5,
                ..base
            },
            ClassConfig {
                starts: 2,
                prune_margin: 0.25,
                ..base
            },
        ],
    };
    let started = Instant::now();
    let large_report = tune(
        &[(spec.name.clone(), quadrant, stack)],
        &space,
        &TuneOptions {
            rounds: 1,
            ..TuneOptions::default()
        },
    )
    .expect("large tune runs");
    let large_seconds = started.elapsed().as_secs_f64();
    gate("large-1k-fast", &large_report, &mut entries);
    println!(
        "large-1k-fast: {} classes, {} trials, {large_seconds:.3} s",
        large_report.classes.len(),
        large_report.trials
    );

    // End-to-end spot check: plan one family member the way the CLI
    // would under `--profile` and under the defaults; the profile must
    // not lose on its own training family.
    let (name, quadrant, stack) = &family[0];
    let tuned_point = family_report.profile.config_for(quadrant);
    let tuned = plan_cost(quadrant, stack, &tuned_point);
    let default = plan_cost(quadrant, stack, &ClassConfig::default_config());
    assert!(
        tuned <= default,
        "{name}: planned cost under the profile {tuned:.6} regressed past the default {default:.6}"
    );
    println!("spot-check {name}: tuned {tuned:.4} <= default {default:.4}");

    let json = format!(
        "{{\n  \"benchmark\": \"tune\",\n  \"gate\": \"winner_cost <= default_cost per class\",\n  \
         \"family_seconds\": {family_seconds:.6},\n  \"large_seconds\": {large_seconds:.6},\n  \
         \"spot_check\": {{\"member\": \"{name}\", \"tuned_cost\": {tuned:.6}, \
         \"default_cost\": {default:.6}}},\n  \"classes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_tune.json", &json).expect("write BENCH_tune.json");
    println!("wrote BENCH_tune.json");
}
