//! Regenerates the **A8 margin ablation** (see
//! [`copack_bench::margin_report`] for the experiment description).
//!
//! Run with `cargo run --release -p copack-bench --bin margin`.

fn main() {
    print!("{}", copack_bench::margin_report());
}
