//! Regenerates the paper's **Table 1**: the published parameters of the
//! five test circuits, plus the derived per-quadrant structure our
//! generator fills in (ball rows, supply-pad counts).
//!
//! Run with `cargo run --release -p copack-bench --bin table1`.

use copack_bench::TextTable;
use copack_gen::circuits;
use copack_geom::NetKind;

fn main() {
    let mut table = TextTable::new([
        "Input case",
        "Finger/pads",
        "Ball space (um)",
        "Finger w (um)",
        "Finger h (um)",
        "Finger s (um)",
        "Rows/quadrant",
        "Row sizes (bottom-up)",
        "Power",
        "Ground",
    ]);
    for c in circuits() {
        let q = c.build_quadrant().expect("circuit builds");
        let sizes: Vec<String> = (1..=q.row_count() as u32)
            .map(|y| q.row(y).len().to_string())
            .collect();
        table.row([
            c.name.clone(),
            c.finger_count.to_string(),
            format!("{}", c.ball_pitch),
            format!("{}", c.finger_width),
            format!("{}", c.finger_height),
            format!("{}", c.finger_space),
            c.rows.to_string(),
            sizes.join("/"),
            (q.nets_of_kind(NetKind::Power).count() * 4).to_string(),
            (q.nets_of_kind(NetKind::Ground).count() * 4).to_string(),
        ]);
    }
    println!("Table 1: experimental data of the test circuits");
    println!("{}", table.render());
    println!("Published columns (2-6) are verbatim from the paper; the rest are");
    println!("the synthetic fill-ins documented in DESIGN.md.");
}
