//! Machine-readable replan benchmark: a warm-started incremental
//! replan versus a cold from-scratch re-plan of a whole 4-quadrant
//! package under an ECO batch, on the industrial `large` family at 1k
//! and 4k nets per quadrant.
//!
//! The package model is the repo's standard one — four identical
//! quadrants — and the ECO batch is the realistic mixed delta: one
//! quadrant genuinely edited, one resubmitted with a **no-op delta**
//! (edit lists that cancel out, which
//! [`copack_core::QuadrantDelta::is_noop_for`] detects so the previous
//! plan is reused without repair or annealing), and two untouched. A
//! cold re-plan anneals all four from scratch; the incremental path
//! answers the clean quadrants from the result cache, dismisses the
//! no-op delta with one equivalence check, and warm-starts only the
//! dirty one ([`exchange_warm`]: repair, reheat, shortened schedule).
//! The expected gap is therefore ~4× from the dirty-set reduction
//! times ~1.5× from the shortened schedule, and the run **asserts**
//! the measured replan speedup holds at least 5× — a regression gate
//! on the warm path, not a scoreboard.
//!
//! The runs are strictly serial — concurrent timing on a shared
//! machine would corrupt the numbers. Results go to `BENCH_replan.json`.
//!
//! Run with `cargo run --release -p copack-bench --bin bench_replan`.

use std::fmt::Write as _;
use std::time::Instant;

use copack_core::{
    cancelling_delta, dfa, exchange, exchange_warm, CancelToken, ExchangeConfig, Schedule,
};
use copack_gen::{churn, large_circuit, STANDARD_CHURN};
use copack_obs::NoopRecorder;

/// Times `f` with one warm-up invocation then `runs` individually
/// timed ones, returning (minimum seconds, last value). The minimum —
/// not the average — is the estimator: a scheduler stall can only
/// inflate a sample, never deflate it, so the fastest run is the
/// closest to the code's true cost and the gate cannot be swung by a
/// single noisy sample on a shared machine.
fn timed<T>(runs: usize, f: impl Fn() -> T) -> (f64, T) {
    let mut value = f();
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        value = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, value)
}

fn main() {
    // Enough temperature steps that the anneal dominates the fixed
    // per-run setup (repair, reheat heat evaluations, tracker
    // construction) — on a starved schedule those fixed costs eat the
    // shortened-schedule gain and the gate sits on the noise floor.
    // Both sides run the identical config, so the ratio is what it
    // would be under the default schedule.
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-3,
            cooling: 0.9,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    const QUADRANTS: f64 = 4.0;
    const CHURN_SEED: u64 = 9;
    const MIN_SPEEDUP: f64 = 5.0;
    let runs = 5;

    let mut entries: Vec<String> = Vec::new();
    for size in ["1k", "4k"] {
        let spec = large_circuit(size, 42).expect("preset name");
        let stack = spec.stack().expect("valid stack");
        let quadrant = spec.build_quadrant().expect("instance builds");

        // The original submission: one cold anneal per quadrant. All
        // four quadrants are identical, so one run times them all —
        // and its winner is the `prev` plan the replan warm-starts
        // from.
        let initial = dfa(&quadrant, 1).expect("dfa");
        let (clean_seconds, previous) = timed(runs, || {
            exchange(&quadrant, &initial, &stack, &config).expect("cold anneal runs")
        });

        // The ECO batch dirties exactly one quadrant under the standard
        // churn, and resubmits a second with a delta whose edits cancel
        // out to a no-op.
        let edited = churn(&quadrant, CHURN_SEED, STANDARD_CHURN).expect("churn applies");
        let noop = cancelling_delta(&quadrant, &edited);
        assert!(!noop.is_empty(), "the no-op delta must carry real edits");

        // Cold replan: every quadrant re-anneals from scratch — the
        // edited one plus the three untouched ones.
        let dirty_initial = dfa(&edited, 1).expect("dfa on the edited instance");
        let (dirty_seconds, scratch) = timed(runs, || {
            exchange(&edited, &dirty_initial, &stack, &config).expect("cold dirty anneal runs")
        });
        let cold_seconds = dirty_seconds + (QUADRANTS - 1.0) * clean_seconds;

        // Incremental replan: the untouched quadrants answer from the
        // cache (zero annealer work), the no-op resubmission is
        // dismissed by one equivalence check, and only the dirty one
        // warm-starts.
        let (noop_seconds, noop_detected) = timed(runs, || {
            noop.is_noop_for(&quadrant).expect("no-op check runs")
        });
        assert!(noop_detected, "the cancelling delta must read as a no-op");
        let (anneal_seconds, warm) = timed(runs, || {
            exchange_warm(
                &edited,
                &previous.assignment,
                &stack,
                &config,
                &mut NoopRecorder,
                &CancelToken::new(),
            )
            .expect("warm replan runs")
        });
        let warm_seconds = anneal_seconds + noop_seconds;

        // The warm path is seeded and repair is pure: a second run must
        // reproduce the first bit for bit.
        let again = exchange_warm(
            &edited,
            &previous.assignment,
            &stack,
            &config,
            &mut NoopRecorder,
            &CancelToken::new(),
        )
        .expect("warm replan reruns");
        assert_eq!(warm, again, "{size}: warm replan is not deterministic");

        let speedup = cold_seconds / warm_seconds.max(1e-12);
        let cost_ratio = warm.stats.final_cost / scratch.stats.final_cost.max(1e-12);
        println!(
            "large-{size} ({} nets/quadrant): cold {cold_seconds:.3} s, replan \
             {warm_seconds:.3} s ({speedup:.1}x, no-op check {noop_seconds:.6} s), \
             warm/scratch cost {cost_ratio:.3}",
            quadrant.net_count()
        );
        assert!(
            speedup >= MIN_SPEEDUP,
            "large-{size}: replan speedup {speedup:.2}x fell below the {MIN_SPEEDUP}x gate \
             (cold {cold_seconds:.3} s over {QUADRANTS} quadrants, warm {warm_seconds:.3} s)"
        );

        let mut entry = String::new();
        let _ = write!(
            entry,
            "    {{\"name\": \"{}\", \"nets\": {}, \"quadrants\": {QUADRANTS}, \
             \"churn\": {STANDARD_CHURN}, \
             \"cold_seconds\": {cold_seconds:.6}, \"warm_seconds\": {warm_seconds:.6}, \
             \"noop_check_seconds\": {noop_seconds:.6}, \
             \"speedup\": {speedup:.2}, \"cost_ratio\": {cost_ratio:.4}, \
             \"deterministic\": true}}",
            spec.name,
            quadrant.net_count()
        );
        entries.push(entry);
    }

    let json = format!(
        "{{\n  \"benchmark\": \"replan\",\n  \"model\": \"4-quadrant package, 1 dirty under \
         standard churn, 1 no-op resubmission, 2 clean\",\n  \
         \"min_speedup\": {MIN_SPEEDUP},\n  \"instances\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_replan.json", &json).expect("write BENCH_replan.json");
    println!("wrote BENCH_replan.json");
}
