//! Ablation studies (experiments A1–A3 in `DESIGN.md`) — our additions
//! beyond the paper's tables, probing its design choices:
//!
//! * **A1** — the acceptance rule exactly as printed in Fig. 14
//!   (`rand > exp(−ΔC/T)`) vs classic Metropolis: the printed rule inverts
//!   hill-climbing and should do no better.
//! * **A2** — DFA's cut-line slack `n ∈ {1, 2, 3}`: larger slack trades
//!   interior density for room along the quadrant cut-lines.
//! * **A3** — the Δ_IR pad-spacing proxy vs the full finite-difference
//!   solve: how well the cheap surrogate tracks the real objective across
//!   many candidate pad plans.
//! * **A4** — wire-bond boundary ring vs flip-chip area array at equal pad
//!   budgets (the paper's §2.4 claim).
//! * **A5** — the paper's bottom-left via rule vs bottom-right: the
//!   "without loss of generality" claim, measured.
//! * **A6** — naive (flyline) vs optimally balanced crossings: how much of
//!   a bad assignment a perfect router could repair, and how little it can
//!   add on top of DFA.
//! * **A7** — stacking-depth sweep ψ ∈ {2, 3, 4, 6}: how the bonding-wire
//!   reclaim and the exchange's density cost scale with tier count (the
//!   paper only evaluates ψ = 4).
//! * **A8** — the optional net-separation margin term μ (Eq. 3's fourth
//!   term, off by default) swept over {0, 1.5, 5}: what it buys in
//!   bond-wire margin and costs in density. Rendered by
//!   [`copack_bench::margin_report`] and golden-pinned in
//!   `tests/golden/margin.txt`.
//!
//! Run with `cargo run --release -p copack-bench --bin ablation`.

use copack_bench::{f2, par_map, TextTable};
use copack_core::{
    assign, dfa, exchange, Acceptance, AssignMethod, Codesign, CostWeights, ExchangeConfig,
    IrObjective, Schedule,
};
use copack_gen::{circuit, circuits};
use copack_geom::{Assignment, Package};
use copack_power::{
    solve_plan, solve_sor, GridSpec, PadArray, PadPlan, PadRing, PadSpacingProxy, Solver,
};
use copack_route::{
    analyze, balanced_density_map, cutline_congestion, density_map, density_map_with_plan,
    via_plan_with, DensityModel, ViaRule,
};
use rand::{Rng, SeedableRng};

fn main() {
    acceptance_rule();
    dfa_slack();
    proxy_vs_solver();
    flipchip_vs_wirebond();
    via_rule();
    balanced_router();
    psi_sweep();
    margin_term();
}

/// A8: the net-separation margin term, printed from the same pure
/// report function the golden test pins.
fn margin_term() {
    print!("{}", copack_bench::margin_report());
}

/// A1: Metropolis vs the literally printed acceptance rule.
fn acceptance_rule() {
    let c = circuit(3);
    let q = c.build_quadrant().expect("builds");
    let initial = dfa(&q, 1).expect("dfa");
    let grid = GridSpec::default_chip(48);

    let mut table = TextTable::new([
        "Acceptance",
        "best cost",
        "IR-drop (mV)",
        "accepted",
        "uphill accepted",
    ]);
    for (name, acceptance) in [
        ("metropolis", Acceptance::Metropolis),
        ("as-written", Acceptance::AsWritten),
        ("greedy", Acceptance::Greedy),
    ] {
        let cfg = ExchangeConfig {
            acceptance,
            ..ExchangeConfig::default()
        };
        let r = exchange(&q, &initial, &copack_geom::StackConfig::planar(), &cfg)
            .expect("exchange runs");
        let ir = copack_core::evaluate_ir(&q, &r.assignment, &grid)
            .expect("solves")
            .expect("power nets exist");
        table.row([
            name.to_owned(),
            format!("{:.4}", r.stats.final_cost),
            f2(ir * 1000.0),
            r.stats.accepted.to_string(),
            r.stats.uphill_accepted.to_string(),
        ]);
    }
    println!("A1: acceptance rule (circuit 3, 2-D exchange)");
    println!("{}", table.render());
}

/// A2: DFA slack sweep over the five circuits, including the shared
/// cut-line congestion across a full 4-quadrant package (the quantity the
/// slack exists to control).
fn dfa_slack() {
    let mut table = TextTable::new([
        "Input case",
        "n=1 dens",
        "n=2 dens",
        "n=3 dens",
        "n=1 interior",
        "n=2 interior",
        "n=3 interior",
        "n=1 cutline",
        "n=2 cutline",
        "n=3 cutline",
    ]);
    for cells in par_map(&circuits(), 0, |c| {
        let q = c.build_quadrant().expect("builds");
        let package = Package::uniform(q.clone());
        let mut cells = vec![c.name.clone()];
        let mut interior = Vec::new();
        let mut cutline = Vec::new();
        for slack in [1u32, 2, 3] {
            let a = assign(&q, AssignMethod::Dfa { slack }).expect("dfa");
            let r = analyze(&q, &a, DensityModel::Geometric).expect("routable");
            cells.push(r.max_density.to_string());
            interior.push(r.max_density_interior.to_string());
            let sides: [Assignment; 4] = [a.clone(), a.clone(), a.clone(), a];
            let cut =
                cutline_congestion(&package, &sides, DensityModel::Geometric).expect("routable");
            cutline.push(cut.max().to_string());
        }
        cells.extend(interior);
        cells.extend(cutline);
        cells
    }) {
        table.row(cells);
    }
    println!("A2: DFA cut-line slack sweep");
    println!("{}", table.render());
}

/// A3: how well the Δ_IR proxy ranks pad plans vs the full solver.
fn proxy_vs_solver() {
    let grid = GridSpec::default_chip(32);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xAB1A);
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for _ in 0..40 {
        let pads = 12;
        let ts: Vec<f64> = (0..pads).map(|_| rng.gen::<f64>()).collect();
        let proxy = PadSpacingProxy::new(&ts).expect("proxy").delta_ir();
        let drop = solve_sor(&grid, &PadRing::from_ts(ts).expect("ring"))
            .expect("solves")
            .max_drop();
        samples.push((proxy, drop));
    }
    // Kendall-style concordance between proxy and solved drop.
    let mut concordant = 0usize;
    let mut total = 0usize;
    for i in 0..samples.len() {
        for j in i + 1..samples.len() {
            total += 1;
            if (samples[i].0 - samples[j].0) * (samples[i].1 - samples[j].1) > 0.0 {
                concordant += 1;
            }
        }
    }
    let pct = 100.0 * concordant as f64 / total as f64;
    println!("A3: delta_IR proxy vs full solve (40 random 12-pad rings, 32x32 grid)");
    println!("  pairwise rank agreement: {pct:.1}% ({concordant}/{total} pairs)");
    assert!(pct > 65.0, "the proxy must track the solver");
    let _ = Codesign::default(); // the pipeline uses the proxy internally

    // Part 2: anneal with the full solve *inside* the loop — the option the
    // paper rejects as too slow — on circuit 1 with a tiny schedule, and
    // compare outcome and wall time against the proxy.
    let c = circuit(1);
    let q = c.build_quadrant().expect("builds");
    let initial = dfa(&q, 1).expect("dfa");
    let eval_grid = GridSpec::default_chip(32);
    let schedule = Schedule {
        moves_per_temp_per_finger: 1,
        final_temp_ratio: 1e-1,
        cooling: 0.8,
        ..Schedule::default()
    };
    let mut results = Vec::new();
    for (name, objective, lambda) in [
        ("proxy", IrObjective::Proxy, 800.0),
        (
            "full-solve",
            IrObjective::FullSolve {
                grid: GridSpec::default_chip(12),
            },
            4000.0,
        ),
    ] {
        let cfg = ExchangeConfig {
            ir_objective: objective,
            weights: CostWeights {
                lambda,
                ..CostWeights::default()
            },
            schedule,
            ..ExchangeConfig::default()
        };
        let start = std::time::Instant::now();
        let r = exchange(&q, &initial, &copack_geom::StackConfig::planar(), &cfg)
            .expect("exchange runs");
        let elapsed = start.elapsed();
        let ir = copack_core::evaluate_ir(&q, &r.assignment, &eval_grid)
            .expect("solves")
            .expect("power nets");
        println!(
            "  in-loop {name:<10}: IR {:.3} mV in {:?} ({} moves)",
            ir * 1000.0,
            elapsed,
            r.stats.proposed
        );
        results.push((elapsed, ir));
    }
    println!(
        "  full-solve costs {:.0}x the proxy's time for a comparable result",
        results[1].0.as_secs_f64() / results[0].0.as_secs_f64().max(1e-9)
    );

    println!();
}

/// A4: the paper's §2.4 claim — wire-bond IR-drop is worse than flip-chip.
fn flipchip_vs_wirebond() {
    let grid = GridSpec {
        current_density: 4.6e-7,
        ..GridSpec::default_chip(48)
    };
    let mut table = TextTable::new(["pads", "wire-bond (mV)", "flip-chip (mV)", "ratio"]);
    for side in [2usize, 4, 8] {
        let pads = side * side;
        let wb = solve_plan(
            &grid,
            &PadPlan::WireBond(PadRing::uniform(pads)),
            Solver::Sor,
        )
        .expect("solves");
        let fc = solve_plan(
            &grid,
            &PadPlan::FlipChip(PadArray::new(side, side).expect("array")),
            Solver::Sor,
        )
        .expect("solves");
        assert!(fc.max_drop() < wb.max_drop(), "flip-chip must win");
        table.row([
            pads.to_string(),
            f2(wb.max_drop() * 1000.0),
            f2(fc.max_drop() * 1000.0),
            f2(wb.max_drop() / fc.max_drop()),
        ]);
    }
    println!("A4: wire-bond vs flip-chip IR-drop (uniform load, 48x48)");
    println!("{}", table.render());
}

/// A5: the bottom-left via rule vs bottom-right, across the circuits.
fn via_rule() {
    let mut table = TextTable::new([
        "Input case",
        "DFA dens (BL)",
        "DFA dens (BR)",
        "interior (BL)",
        "interior (BR)",
    ]);
    for cells in par_map(&circuits(), 0, |c| {
        let q = c.build_quadrant().expect("builds");
        let a = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let mut cells = vec![c.name.clone()];
        let mut interior = Vec::new();
        for rule in [ViaRule::BottomLeft, ViaRule::BottomRight] {
            let plan = via_plan_with(&q, rule);
            let map =
                density_map_with_plan(&q, &a, DensityModel::Geometric, &plan).expect("routable");
            cells.push(map.max_density().to_string());
            interior.push(map.max_density_interior().to_string());
        }
        cells.extend(interior);
        cells
    }) {
        table.row(cells);
    }
    println!("A5: via-corner rule (bottom-left = the paper's, vs bottom-right)");
    println!("{}", table.render());
    println!("Similar densities either way back the paper's 'without loss of generality'.");
}

/// A6: flyline vs optimally balanced crossings, per assignment method.
fn balanced_router() {
    let mut table = TextTable::new([
        "Input case",
        "random fly",
        "random bal",
        "ifa fly",
        "ifa bal",
        "dfa fly",
        "dfa bal",
    ]);
    for cells in par_map(&circuits(), 0, |c| {
        let q = c.build_quadrant().expect("builds");
        let mut cells = vec![c.name.clone()];
        for method in [
            AssignMethod::Random { seed: 11 },
            AssignMethod::Ifa,
            AssignMethod::dfa_default(),
        ] {
            let a = assign(&q, method).expect("assigns");
            let fly = density_map(&q, &a, DensityModel::Geometric)
                .expect("routable")
                .max_density();
            let bal = balanced_density_map(&q, &a)
                .expect("routable")
                .max_density();
            assert!(bal <= fly);
            cells.push(fly.to_string());
            cells.push(bal.to_string());
        }
        // Reorder: flys then bals were interleaved per method; fine as-is.
        cells
    }) {
        table.row(cells);
    }
    println!("A6: flyline vs balanced (best-achievable) max density");
    println!("{}", table.render());
    println!("Even a perfect router cannot repair a bad order down to DFA's level:");
    println!("the planarity-forced spans are set by the assignment alone.");
}

/// A7: stacking-depth sweep on circuit 3.
fn psi_sweep() {
    let mut table = TextTable::new([
        "psi",
        "omega before",
        "omega after",
        "bondwire impr %",
        "dens DFA",
        "dens exch",
        "IR impr %",
    ]);
    for cells in par_map(&[2u8, 3, 4, 6], 0, |&psi| {
        let circuit = circuit(3).stacked(psi);
        let q = circuit.build_quadrant().expect("builds");
        let cfg = Codesign {
            stack: circuit.stack().expect("stack"),
            grid: GridSpec::default_chip(32),
            ..Codesign::default()
        };
        let r = cfg.run(&q).expect("pipeline");
        [
            psi.to_string(),
            r.omega_before.to_string(),
            r.omega_after.to_string(),
            f2(r.omega_improvement_percent.unwrap_or(0.0)),
            r.routing_before.max_density.to_string(),
            r.routing_after.max_density.to_string(),
            f2(r.ir_improvement_percent.unwrap_or(0.0)),
        ]
    }) {
        table.row(cells);
    }
    println!("A7: stacking-depth sweep (circuit 3)");
    println!("{}", table.render());
    println!("Deeper stacks have more zero-bit capacity to reclaim but a tighter");
    println!("interleaving target; the paper evaluates only psi = 4.");
}
