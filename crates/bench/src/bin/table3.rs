//! Regenerates the paper's **Table 3** (see
//! [`copack_bench::table3_report`] for the experiment description).
//!
//! Run with `cargo run --release -p copack-bench --bin table3`.

fn main() {
    print!("{}", copack_bench::table3_report());
}
