//! Regenerates the paper's **Table 3**: the effect of the finger/pad
//! exchange step after DFA, for 2-D (ψ = 1) and 4-tier stacking (ψ = 4)
//! versions of the five circuits — max density before/after, IR-drop
//! improvement, and (for stacking) the bonding-wire improvement.
//!
//! Paper reference values: 2-D IR-drop improvement avg 10.61%; stacking
//! (ψ = 4) IR-drop improvement avg 4.58% and bonding-wire improvement avg
//! 15.66%; density after exchanging grows by a couple of units (the cost
//! of the IR/bond-wire gains).
//!
//! Run with `cargo run --release -p copack-bench --bin table3`.

use copack_bench::{f2, par_map, TextTable};
use copack_core::{Codesign, CodesignReport};
use copack_gen::circuits;
use copack_geom::Quadrant;
use copack_power::GridSpec;

/// Exchange seeds averaged per configuration (the annealer is stochastic;
/// the paper reports single runs of an unspecified seed).
const SEEDS: [u64; 3] = [0xC0DE, 0xBEEF, 0xF00D];

/// Runs the flow once per seed and returns the last report plus the
/// seed-averaged IR improvement, bonding-wire improvement, and
/// after-exchange max density.
fn averaged(base: &Codesign, quadrant: &Quadrant) -> (CodesignReport, f64, f64, f64) {
    let mut ir_sum = 0.0;
    let mut bw_sum = 0.0;
    let mut dens_sum = 0.0;
    let mut last = None;
    for &seed in &SEEDS {
        let mut cfg = base.clone();
        cfg.exchange.seed = seed;
        let report = cfg.run(quadrant).expect("pipeline runs");
        ir_sum += report.ir_improvement_percent.unwrap_or(0.0);
        bw_sum += report.omega_improvement_percent.unwrap_or(0.0);
        dens_sum += f64::from(report.routing_after.max_density);
        last = Some(report);
    }
    let n = SEEDS.len() as f64;
    (
        last.expect("at least one seed"),
        ir_sum / n,
        bw_sum / n,
        dens_sum / n,
    )
}

fn main() {
    let base = Codesign {
        grid: GridSpec::default_chip(48),
        ..Codesign::default()
    };

    let mut table = TextTable::new([
        "Input case",
        "2D dens DFA",
        "2D dens exch",
        "2D IR impr %",
        "4T dens DFA",
        "4T dens exch",
        "4T IR impr %",
        "4T bondwire impr %",
    ]);

    // Each circuit's 2-D and stacked runs are independent of every other
    // circuit; fan them out and aggregate in input order.
    let circuits = circuits();
    let rows = par_map(&circuits, 0, |circuit| {
        // 2-D run.
        let q2 = circuit.build_quadrant().expect("circuit builds");
        let (r2, ir2, _, dens2) = averaged(&base, &q2);

        // 4-tier stacking run.
        let stacked = circuit.stacked(4);
        let q4 = stacked.build_quadrant().expect("stacked circuit builds");
        let cfg4 = Codesign {
            stack: stacked.stack().expect("valid stack"),
            ..base.clone()
        };
        let (r4, ir4, bw4, dens4) = averaged(&cfg4, &q4);

        let cells = [
            circuit.name.clone(),
            r2.routing_before.max_density.to_string(),
            f2(dens2),
            f2(ir2),
            r4.routing_before.max_density.to_string(),
            f2(dens4),
            f2(ir4),
            f2(bw4),
        ];
        (cells, [ir2, ir4, bw4])
    });

    let mut sums = [0.0f64; 3];
    for (cells, improvements) in rows {
        table.row(cells);
        for (sum, v) in sums.iter_mut().zip(improvements) {
            *sum += v;
        }
    }

    let n = circuits.len() as f64;
    table.row([
        "Average improvement".to_owned(),
        String::new(),
        String::new(),
        f2(sums[0] / n),
        String::new(),
        String::new(),
        f2(sums[1] / n),
        f2(sums[2] / n),
    ]);

    println!(
        "Table 3: finger/pad exchange on 2-D (psi=1) and stacking (psi=4) ICs \
         (improvements averaged over {} seeds)",
        SEEDS.len()
    );
    println!("{}", table.render());
    println!("Paper averages: 2-D IR 10.61%, stacking IR 4.58%, bonding wire 15.66%");
}
