//! Machine-readable portfolio-annealing benchmark: for every Table 1
//! circuit, sweep the portfolio width (quality vs. starts at a fixed
//! thread count), the worker count (wall clock vs. threads at a fixed
//! width), and the cooperation mode (quality vs. `race`/`coop`/`temper`
//! at an equal move budget), asserting the structural guarantees along
//! the way — the K-start winner is never worse than the single start it
//! contains, the winner is bit-identical for every thread count, and
//! the cooperative modes never lose to `race` at the same budget.
//! Writes the curves to `BENCH_portfolio.json` for tracking across
//! commits.
//!
//! Run with `cargo run --release -p copack-bench --bin bench_portfolio`.

use std::fmt::Write as _;
use std::time::Instant;

use copack_core::{
    assign, exchange_portfolio, AssignMethod, ExchangeConfig, PortfolioConfig, PortfolioMode,
    Schedule,
};
use copack_gen::{circuits, large_circuit};
use copack_geom::{Assignment, Quadrant, StackConfig};

/// Portfolio widths for the quality sweep (K = 1 is the plain-exchange
/// baseline).
const WIDTHS: [u32; 4] = [1, 2, 4, 8];

/// Worker counts for the wall-clock sweep (at the widest portfolio).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A deliberately starved schedule: with this little annealing budget a
/// single start routinely stalls in a local minimum, which is exactly
/// the regime where portfolio width pays (and the sweep stays fast
/// enough to run five circuits times twelve configurations).
fn bench_config() -> ExchangeConfig {
    ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 5e-2,
            cooling: 0.7,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    }
}

/// The schedule for the quality-vs-mode sweep. Deeper than the starved
/// width sweep on purpose: parallel tempering spends most of its rungs
/// holding the ladder's hotter temperatures, so on a one-shot starved
/// ramp it has a single effective cold trajectory and structurally
/// trails `race`'s K independent anneals. The paper-style claim the
/// mode gate pins — cooperation never loses at an equal move budget —
/// is about schedules deep enough for the ladder (and `coop`'s
/// crossover respawns) to actually mix.
fn mode_config() -> ExchangeConfig {
    ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    }
}

/// The cooperation modes the quality gate sweeps, `race` first (it is
/// the baseline the other two are compared against).
const MODES: [PortfolioMode; 3] = [
    PortfolioMode::Race,
    PortfolioMode::Coop,
    PortfolioMode::Temper,
];

/// One portfolio run's measurements.
struct Sample {
    starts: u32,
    threads: usize,
    winner_start: u32,
    cost: f64,
    pruned: usize,
    wall_seconds: f64,
}

fn run_portfolio(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    starts: u32,
    threads: usize,
) -> Sample {
    let portfolio = PortfolioConfig {
        starts,
        threads,
        ..PortfolioConfig::default()
    };
    let t = Instant::now();
    let won =
        exchange_portfolio(quadrant, initial, stack, config, &portfolio).expect("portfolio runs");
    Sample {
        starts,
        threads,
        winner_start: won.winner_start,
        cost: won.result.stats.final_cost,
        pruned: won.pruned(),
        wall_seconds: t.elapsed().as_secs_f64(),
    }
}

/// Runs the three cooperation modes at an equal move budget and asserts
/// the never-worse gate: `coop` and `temper` winner costs must not
/// exceed `race`'s on the same instance, schedule, and seed. `template`
/// carries the portfolio shape (starts, sync epochs, ladder ratio); the
/// mode is overridden per run. Returns the samples in `MODES` order.
fn mode_sweep(
    name: &str,
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    template: &PortfolioConfig,
) -> Vec<Sample> {
    let sweep: Vec<Sample> = MODES
        .iter()
        .map(|&mode| {
            let portfolio = PortfolioConfig {
                mode,
                threads: 1,
                ..*template
            };
            let t = Instant::now();
            let won = exchange_portfolio(quadrant, initial, stack, config, &portfolio)
                .expect("portfolio runs");
            Sample {
                starts: template.starts,
                threads: 1,
                winner_start: won.winner_start,
                cost: won.result.stats.final_cost,
                pruned: won.pruned(),
                wall_seconds: t.elapsed().as_secs_f64(),
            }
        })
        .collect();
    let race = sweep[0].cost;
    // ULP headroom, not a quality band: equal-quality plans reached via
    // different accept orders re-accumulate the λ-weighted Δ_IR term in
    // a different order, so ties can differ in the cost's last bits.
    let gate = race * (1.0 + 1e-12);
    for (mode, sample) in MODES.iter().zip(&sweep).skip(1) {
        assert!(
            sample.cost <= gate,
            "{name}: {} winner ({:.17e}) lost to race ({race:.17e}) at an equal move budget",
            mode.as_str(),
            sample.cost
        );
    }
    sweep
}

fn json_mode_sweep(out: &mut String, template: &PortfolioConfig, sweep: &[Sample]) {
    out.push_str("     \"quality_vs_mode\": [");
    for (j, (mode, s)) in MODES.iter().zip(sweep).enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"mode\": \"{}\", \"starts\": {}, \"sync_epochs\": {}, \"kick_size\": {}, \
             \"ladder_ratio\": {}, \"cost\": {:.6}, \"pruned\": {}, \"wall_seconds\": {:.6}}}",
            mode.as_str(),
            s.starts,
            template.sync_epochs,
            template.kick_size,
            template.ladder_ratio,
            s.cost,
            s.pruned,
            s.wall_seconds
        );
    }
    out.push(']');
}

fn json_sample(out: &mut String, sample: &Sample) {
    let _ = write!(
        out,
        "{{\"starts\": {}, \"threads\": {}, \"winner_start\": {}, \"cost\": {:.6}, \
         \"pruned\": {}, \"wall_seconds\": {:.6}}}",
        sample.starts,
        sample.threads,
        sample.winner_start,
        sample.cost,
        sample.pruned,
        sample.wall_seconds
    );
}

fn main() {
    let mut json = String::from("{\n  \"benchmark\": \"portfolio\",\n  \"circuits\": [\n");
    // Circuits run serially so the wall-clock sweep measures the
    // portfolio's own threading, not cross-circuit contention.
    for (i, circuit) in circuits().iter().enumerate() {
        let quadrant = circuit.build_quadrant().expect("circuit builds");
        let initial = assign(&quadrant, AssignMethod::dfa_default()).expect("dfa");

        // Quality vs. starts at one worker: how much does width buy?
        let quality: Vec<Sample> = WIDTHS
            .iter()
            .map(|&k| {
                run_portfolio(
                    &quadrant,
                    &initial,
                    &StackConfig::planar(),
                    &bench_config(),
                    k,
                    1,
                )
            })
            .collect();
        let baseline = quality[0].cost;
        let widest = quality.last().expect("non-empty sweep");
        assert!(
            widest.cost <= baseline,
            "{}: K={} winner ({:.6}) worse than single start ({:.6})",
            &circuit.name,
            widest.starts,
            widest.cost,
            baseline
        );

        // Wall clock vs. threads at the widest portfolio; the winner must
        // not move.
        let scaling: Vec<Sample> = THREADS
            .iter()
            .map(|&t| {
                run_portfolio(
                    &quadrant,
                    &initial,
                    &StackConfig::planar(),
                    &bench_config(),
                    *WIDTHS.last().expect("widths"),
                    t,
                )
            })
            .collect();
        for s in &scaling {
            assert!(
                s.cost.to_bits() == scaling[0].cost.to_bits()
                    && s.winner_start == scaling[0].winner_start,
                "{}: winner changed under --threads {}",
                circuit.name,
                s.threads
            );
        }

        // Quality vs. cooperation mode at an equal move budget; the
        // never-worse gate fires inside the sweep.
        let mode_shape = PortfolioConfig {
            starts: *WIDTHS.last().expect("widths"),
            ..PortfolioConfig::default()
        };
        let modes = mode_sweep(
            &circuit.name,
            &quadrant,
            &initial,
            &StackConfig::planar(),
            &mode_config(),
            &mode_shape,
        );

        println!(
            "{}: K=1 cost {:.4} -> K=8 cost {:.4} (winner start {}, {} pruned); \
             1 thread {:.3} s -> {} threads {:.3} s; \
             race {:.4} / coop {:.4} / temper {:.4}",
            &circuit.name,
            baseline,
            widest.cost,
            widest.winner_start,
            widest.pruned,
            scaling[0].wall_seconds,
            scaling.last().expect("non-empty sweep").threads,
            scaling.last().expect("non-empty sweep").wall_seconds,
            modes[0].cost,
            modes[1].cost,
            modes[2].cost,
        );

        let _ = write!(json, "    {{\"name\": \"{}\",\n", circuit.name);
        json.push_str("     \"quality_vs_starts\": [");
        for (j, s) in quality.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            json_sample(&mut json, s);
        }
        json.push_str("],\n     \"wall_clock_vs_threads\": [");
        for (j, s) in scaling.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            json_sample(&mut json, s);
        }
        json.push_str("],\n");
        json_mode_sweep(&mut json, &mode_shape, &modes);
        json.push('}');
        if i + 1 < circuits().len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ],\n");
    bench_large(&mut json);
    json.push_str("}\n");
    std::fs::write("BENCH_portfolio.json", &json).expect("write BENCH_portfolio.json");
    println!("wrote BENCH_portfolio.json");
}

/// The industrial-scale rows the parallelism and cooperation stories
/// hang on. On the 1k-net preset an eight-start portfolio is swept over
/// worker counts: at Table 1 sizes a start finishes in microseconds and
/// thread spawn overhead eats the speedup, but at 1k nets each start
/// carries real work, so this run *asserts* the crossover — eight
/// workers must finish the same portfolio in less wall time than one —
/// alongside the usual bit-identity of the winner across every thread
/// count. Both the 1k and 4k presets then run the quality-vs-mode gate:
/// `coop` and `temper` must not lose to `race` at an equal move budget
/// at industrial scale either.
fn bench_large(json: &mut String) {
    // A fuller schedule than the Table 1 sweep: enough annealing per
    // start that the work, not the thread plumbing, dominates. Doubles
    // as the mode-gate schedule at this scale (deep enough for the
    // temperature ladder to mix).
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    json.push_str("  \"large\": [\n");
    for (row, preset) in ["1k", "4k"].iter().enumerate() {
        let spec = large_circuit(preset, 42).expect("preset name");
        let stack = spec.stack().expect("valid stack");
        let quadrant = spec.build_quadrant().expect("instance builds");
        let initial = assign(&quadrant, AssignMethod::dfa_default()).expect("dfa");

        // The thread-scaling sweep (and its crossover assert) only on
        // the 1k row: it pins the plumbing, and once is enough.
        let scaling: Option<Vec<Sample>> = (*preset == "1k").then(|| {
            let scaling: Vec<Sample> = THREADS
                .iter()
                .map(|&t| {
                    run_portfolio(
                        &quadrant,
                        &initial,
                        &stack,
                        &config,
                        *WIDTHS.last().expect("widths"),
                        t,
                    )
                })
                .collect();
            for s in &scaling {
                assert!(
                    s.cost.to_bits() == scaling[0].cost.to_bits()
                        && s.winner_start == scaling[0].winner_start,
                    "{}: winner changed under --threads {}",
                    spec.name,
                    s.threads
                );
            }
            let serial = scaling.first().expect("non-empty sweep");
            let widest = scaling.last().expect("non-empty sweep");
            // The crossover only exists where the hardware can actually
            // run the workers side by side; on a single core the same
            // sweep instead bounds the thread plumbing's overhead.
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            if cores >= 2 {
                assert!(
                    widest.wall_seconds < serial.wall_seconds,
                    "{}: {} threads ({:.3} s) failed to beat 1 thread ({:.3} s) on {cores} cores",
                    spec.name,
                    widest.threads,
                    widest.wall_seconds,
                    serial.wall_seconds
                );
            } else {
                println!(
                    "note: single core — asserting thread overhead is bounded, not the crossover"
                );
                assert!(
                    widest.wall_seconds < serial.wall_seconds * 1.5,
                    "{}: {} threads ({:.3} s) cost >50% over 1 thread ({:.3} s) on one core",
                    spec.name,
                    widest.threads,
                    widest.wall_seconds,
                    serial.wall_seconds
                );
            }
            println!(
                "{}: K={} cost {:.4} (winner start {}); 1 thread {:.3} s -> {} threads {:.3} s \
                 ({:.2}x)",
                spec.name,
                widest.starts,
                widest.cost,
                widest.winner_start,
                serial.wall_seconds,
                widest.threads,
                widest.wall_seconds,
                serial.wall_seconds / widest.wall_seconds.max(1e-12),
            );
            scaling
        });

        // At industrial scale the ladder needs room to mix before the
        // gate is meaningful: at least as many barriers as rungs (so a
        // good configuration can percolate from the hot end to the cold
        // one) and a soft ratio (so adjacent rungs overlap enough for
        // Metropolis swaps to fire). With the Table 1 defaults (4
        // barriers, ratio 1.5) tempering never exchanges anything here
        // and simply forfeits 7 of its 8 rungs to unproductive heat.
        let mode_shape = PortfolioConfig {
            starts: *WIDTHS.last().expect("widths"),
            sync_epochs: 8,
            ladder_ratio: 1.1,
            ..PortfolioConfig::default()
        };
        let modes = mode_sweep(
            &spec.name,
            &quadrant,
            &initial,
            &stack,
            &config,
            &mode_shape,
        );
        println!(
            "{}: race {:.4} / coop {:.4} / temper {:.4} at K=8",
            spec.name, modes[0].cost, modes[1].cost, modes[2].cost
        );

        let _ = write!(json, "    {{\"name\": \"{}\",\n", spec.name);
        if let Some(scaling) = &scaling {
            json.push_str("     \"wall_clock_vs_threads\": [");
            for (j, s) in scaling.iter().enumerate() {
                if j > 0 {
                    json.push_str(", ");
                }
                json_sample(json, s);
            }
            json.push_str("],\n");
        }
        json_mode_sweep(json, &mode_shape, &modes);
        json.push('}');
        if row == 0 {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ]\n");
}
