//! Machine-readable portfolio-annealing benchmark: for every Table 1
//! circuit, sweep the portfolio width (quality vs. starts at a fixed
//! thread count) and the worker count (wall clock vs. threads at a fixed
//! width), asserting the two structural guarantees along the way — the
//! K-start winner is never worse than the single start it contains, and
//! the winner is bit-identical for every thread count. Writes the curves
//! to `BENCH_portfolio.json` for tracking across commits.
//!
//! Run with `cargo run --release -p copack-bench --bin bench_portfolio`.

use std::fmt::Write as _;
use std::time::Instant;

use copack_core::{
    assign, exchange_portfolio, AssignMethod, ExchangeConfig, PortfolioConfig, Schedule,
};
use copack_gen::{circuits, large_circuit};
use copack_geom::{Assignment, Quadrant, StackConfig};

/// Portfolio widths for the quality sweep (K = 1 is the plain-exchange
/// baseline).
const WIDTHS: [u32; 4] = [1, 2, 4, 8];

/// Worker counts for the wall-clock sweep (at the widest portfolio).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A deliberately starved schedule: with this little annealing budget a
/// single start routinely stalls in a local minimum, which is exactly
/// the regime where portfolio width pays (and the sweep stays fast
/// enough to run five circuits times twelve configurations).
fn bench_config() -> ExchangeConfig {
    ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 5e-2,
            cooling: 0.7,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    }
}

/// One portfolio run's measurements.
struct Sample {
    starts: u32,
    threads: usize,
    winner_start: u32,
    cost: f64,
    pruned: usize,
    wall_seconds: f64,
}

fn run_portfolio(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    starts: u32,
    threads: usize,
) -> Sample {
    let portfolio = PortfolioConfig {
        starts,
        threads,
        ..PortfolioConfig::default()
    };
    let t = Instant::now();
    let won =
        exchange_portfolio(quadrant, initial, stack, config, &portfolio).expect("portfolio runs");
    Sample {
        starts,
        threads,
        winner_start: won.winner_start,
        cost: won.result.stats.final_cost,
        pruned: won.pruned(),
        wall_seconds: t.elapsed().as_secs_f64(),
    }
}

fn json_sample(out: &mut String, sample: &Sample) {
    let _ = write!(
        out,
        "{{\"starts\": {}, \"threads\": {}, \"winner_start\": {}, \"cost\": {:.6}, \
         \"pruned\": {}, \"wall_seconds\": {:.6}}}",
        sample.starts,
        sample.threads,
        sample.winner_start,
        sample.cost,
        sample.pruned,
        sample.wall_seconds
    );
}

fn main() {
    let mut json = String::from("{\n  \"benchmark\": \"portfolio\",\n  \"circuits\": [\n");
    // Circuits run serially so the wall-clock sweep measures the
    // portfolio's own threading, not cross-circuit contention.
    for (i, circuit) in circuits().iter().enumerate() {
        let quadrant = circuit.build_quadrant().expect("circuit builds");
        let initial = assign(&quadrant, AssignMethod::dfa_default()).expect("dfa");

        // Quality vs. starts at one worker: how much does width buy?
        let quality: Vec<Sample> = WIDTHS
            .iter()
            .map(|&k| {
                run_portfolio(
                    &quadrant,
                    &initial,
                    &StackConfig::planar(),
                    &bench_config(),
                    k,
                    1,
                )
            })
            .collect();
        let baseline = quality[0].cost;
        let widest = quality.last().expect("non-empty sweep");
        assert!(
            widest.cost <= baseline,
            "{}: K={} winner ({:.6}) worse than single start ({:.6})",
            circuit.name,
            widest.starts,
            widest.cost,
            baseline
        );

        // Wall clock vs. threads at the widest portfolio; the winner must
        // not move.
        let scaling: Vec<Sample> = THREADS
            .iter()
            .map(|&t| {
                run_portfolio(
                    &quadrant,
                    &initial,
                    &StackConfig::planar(),
                    &bench_config(),
                    *WIDTHS.last().expect("widths"),
                    t,
                )
            })
            .collect();
        for s in &scaling {
            assert!(
                s.cost.to_bits() == scaling[0].cost.to_bits()
                    && s.winner_start == scaling[0].winner_start,
                "{}: winner changed under --threads {}",
                circuit.name,
                s.threads
            );
        }

        println!(
            "{}: K=1 cost {:.4} -> K=8 cost {:.4} (winner start {}, {} pruned); \
             1 thread {:.3} s -> {} threads {:.3} s",
            circuit.name,
            baseline,
            widest.cost,
            widest.winner_start,
            widest.pruned,
            scaling[0].wall_seconds,
            scaling.last().expect("non-empty sweep").threads,
            scaling.last().expect("non-empty sweep").wall_seconds,
        );

        let _ = write!(json, "    {{\"name\": \"{}\",\n", circuit.name);
        json.push_str("     \"quality_vs_starts\": [");
        for (j, s) in quality.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            json_sample(&mut json, s);
        }
        json.push_str("],\n     \"wall_clock_vs_threads\": [");
        for (j, s) in scaling.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            json_sample(&mut json, s);
        }
        json.push_str("]}");
        if i + 1 < circuits().len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ],\n");
    bench_large(&mut json);
    json.push_str("}\n");
    std::fs::write("BENCH_portfolio.json", &json).expect("write BENCH_portfolio.json");
    println!("wrote BENCH_portfolio.json");
}

/// The industrial-scale row the whole parallelism story hangs on: an
/// eight-start portfolio on the 1k-net preset, swept over worker counts.
/// At Table 1 sizes a start finishes in microseconds and thread spawn
/// overhead eats the speedup; at 1k nets each start carries real work,
/// so this run *asserts* the crossover — eight workers must finish the
/// same portfolio in less wall time than one — alongside the usual
/// bit-identity of the winner across every thread count.
fn bench_large(json: &mut String) {
    let spec = large_circuit("1k", 42).expect("preset name");
    let stack = spec.stack().expect("valid stack");
    let quadrant = spec.build_quadrant().expect("instance builds");
    let initial = assign(&quadrant, AssignMethod::dfa_default()).expect("dfa");
    // A fuller schedule than the Table 1 sweep: enough annealing per
    // start that the work, not the thread plumbing, dominates.
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    let scaling: Vec<Sample> = THREADS
        .iter()
        .map(|&t| {
            run_portfolio(
                &quadrant,
                &initial,
                &stack,
                &config,
                *WIDTHS.last().expect("widths"),
                t,
            )
        })
        .collect();
    for s in &scaling {
        assert!(
            s.cost.to_bits() == scaling[0].cost.to_bits()
                && s.winner_start == scaling[0].winner_start,
            "{}: winner changed under --threads {}",
            spec.name,
            s.threads
        );
    }
    let serial = scaling.first().expect("non-empty sweep");
    let widest = scaling.last().expect("non-empty sweep");
    // The crossover only exists where the hardware can actually run the
    // workers side by side; on a single core the same sweep instead
    // bounds the thread plumbing's overhead.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores >= 2 {
        assert!(
            widest.wall_seconds < serial.wall_seconds,
            "{}: {} threads ({:.3} s) failed to beat 1 thread ({:.3} s) on {cores} cores",
            spec.name,
            widest.threads,
            widest.wall_seconds,
            serial.wall_seconds
        );
    } else {
        println!("note: single core — asserting thread overhead is bounded, not the crossover");
        assert!(
            widest.wall_seconds < serial.wall_seconds * 1.5,
            "{}: {} threads ({:.3} s) cost >50% over 1 thread ({:.3} s) on one core",
            spec.name,
            widest.threads,
            widest.wall_seconds,
            serial.wall_seconds
        );
    }
    println!(
        "{}: K={} cost {:.4} (winner start {}); 1 thread {:.3} s -> {} threads {:.3} s ({:.2}x)",
        spec.name,
        widest.starts,
        widest.cost,
        widest.winner_start,
        serial.wall_seconds,
        widest.threads,
        widest.wall_seconds,
        serial.wall_seconds / widest.wall_seconds.max(1e-12),
    );

    let _ = write!(json, "  \"large\": [\n    {{\"name\": \"{}\",\n", spec.name);
    json.push_str("     \"wall_clock_vs_threads\": [");
    for (j, s) in scaling.iter().enumerate() {
        if j > 0 {
            json.push_str(", ");
        }
        json_sample(json, s);
    }
    json.push_str("]}\n  ]\n");
}
