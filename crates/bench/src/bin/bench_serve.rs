//! Machine-readable serving-throughput benchmark: an in-process daemon
//! on an ephemeral port, hammered by concurrent client threads in four
//! scenarios — a **cold** phase of distinct jobs (every submission
//! executes), a **warm** phase resubmitting the same jobs (every
//! submission is answered from the content-addressed cache or coalesces
//! onto an in-flight duplicate), a **sustained** fixed-duration hammer
//! over the warm set (steady-state jobs/sec through the reactor), and a
//! **restart** scenario that shuts a cache-dir-backed daemon down and
//! measures how much of the cold cost the disk tier recovers on the
//! next boot. Writes per-scenario throughput and latency percentiles to
//! `BENCH_serve.json` for tracking across commits.
//!
//! Run with `cargo run --release -p copack-bench --bin bench_serve`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use copack_gen::circuits;
use copack_io::write_quadrant;
use copack_serve::{Client, JobSpec, PoolMetrics, ServeConfig, Server};

/// One benchmark phase's measurements.
struct Phase {
    jobs: usize,
    wall_seconds: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl Phase {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.wall_seconds.max(1e-12)
    }
}

/// Submits every spec once, one client thread per `clients` slice, and
/// returns the phase timing (latencies measured per submission).
fn run_phase(addr: std::net::SocketAddr, specs: &[JobSpec], clients: usize) -> Phase {
    let started = Instant::now();
    let mut latencies: Vec<f64> = Vec::with_capacity(specs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|lane| {
                let lane_specs: Vec<&JobSpec> = specs.iter().skip(lane).step_by(clients).collect();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lane_latencies = Vec::with_capacity(lane_specs.len());
                    for spec in lane_specs {
                        let t = Instant::now();
                        client.plan(spec).expect("job plans");
                        lane_latencies.push(t.elapsed().as_secs_f64() * 1000.0);
                    }
                    lane_latencies
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = (p / 100.0 * (latencies.len() as f64 - 1.0)).round() as usize;
        latencies[rank.min(latencies.len() - 1)]
    };
    Phase {
        jobs: specs.len(),
        wall_seconds,
        p50_ms: percentile(50.0),
        p99_ms: percentile(99.0),
    }
}

/// Hammers the (already warm) spec set for a fixed wall-clock window,
/// each client cycling through its lane's specs, and returns the
/// steady-state phase timing.
fn run_sustained(
    addr: std::net::SocketAddr,
    specs: &[JobSpec],
    clients: usize,
    window: Duration,
) -> Phase {
    let started = Instant::now();
    let deadline = started + window;
    let mut latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|lane| {
                let lane_specs: Vec<&JobSpec> = specs.iter().skip(lane).step_by(clients).collect();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lane_latencies = Vec::new();
                    'window: loop {
                        for spec in &lane_specs {
                            if Instant::now() >= deadline {
                                break 'window;
                            }
                            let t = Instant::now();
                            client.plan(spec).expect("job plans");
                            lane_latencies.push(t.elapsed().as_secs_f64() * 1000.0);
                        }
                    }
                    lane_latencies
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    let jobs = latencies.len();
    latencies.sort_by(f64::total_cmp);
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = (p / 100.0 * (latencies.len() as f64 - 1.0)).round() as usize;
        latencies[rank.min(latencies.len() - 1)]
    };
    Phase {
        jobs,
        wall_seconds,
        p50_ms: percentile(50.0),
        p99_ms: percentile(99.0),
    }
}

fn json_phase(out: &mut String, key: &str, phase: &Phase) {
    let _ = write!(
        out,
        "\"{key}\": {{\"jobs\": {}, \"wall_seconds\": {:.6}, \"jobs_per_sec\": {:.1}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        phase.jobs,
        phase.wall_seconds,
        phase.jobs_per_sec(),
        phase.p50_ms,
        phase.p99_ms
    );
}

/// The cold-vs-warm-restart measurements.
struct Restart {
    jobs: usize,
    cold_wall: f64,
    warm_wall: f64,
    disk_hits: u64,
}

/// Runs `specs` cold on a cache-dir-backed daemon, shuts it down, boots
/// a successor on the same directory, and resubmits everything — every
/// answer must come from the disk tier, and the two walls quantify what
/// the persistent cache saves across a restart.
fn run_restart(specs: &[JobSpec], workers: usize) -> Restart {
    let dir = std::env::temp_dir().join(format!("bench_serve_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = |dir: &std::path::Path| ServeConfig {
        workers,
        queue_capacity: specs.len().max(64),
        cache_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    };

    // First life: compute and persist everything, then exit cleanly.
    let server = Server::bind("127.0.0.1:0", config(&dir)).expect("bind first life");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let cold = run_phase(addr, specs, 1);
    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    daemon
        .join()
        .expect("daemon thread")
        .expect("first life exits cleanly");

    // Second life, same directory: memory is empty, so every submission
    // must be answered by the warm disk store.
    let server = Server::bind("127.0.0.1:0", config(&dir)).expect("bind second life");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let started = Instant::now();
    let mut client = Client::connect(addr).expect("connect");
    for spec in specs {
        let plan = client.plan(spec).expect("restarted daemon plans");
        assert_eq!(
            plan.cache, "disk",
            "a restarted daemon answers a persisted job from the disk tier"
        );
    }
    let warm_wall = started.elapsed().as_secs_f64();
    client.shutdown().expect("shutdown");
    let summary = daemon
        .join()
        .expect("daemon thread")
        .expect("second life exits cleanly");
    let metrics = PoolMetrics::from_events(&summary.events);
    assert_eq!(metrics.disk_hits as usize, specs.len());
    let _ = std::fs::remove_dir_all(&dir);

    Restart {
        jobs: specs.len(),
        cold_wall: cold.wall_seconds,
        warm_wall,
        disk_hits: metrics.disk_hits,
    }
}

fn main() {
    let workers = 4usize;
    let clients = 8usize;
    // Distinct jobs: every Table 1 circuit under several configurations
    // (exchange off for volume — the serving layer, not the annealer, is
    // under test).
    let mut specs: Vec<JobSpec> = Vec::new();
    for circuit in circuits() {
        let quadrant = circuit.build_quadrant().expect("circuit builds");
        let text = write_quadrant(&circuit.name, &quadrant);
        for slack in 1u32..=8 {
            specs.push(JobSpec {
                method: copack_core::AssignMethod::Dfa { slack },
                ..JobSpec::new(text.clone())
            });
        }
        specs.push(JobSpec {
            method: copack_core::AssignMethod::Ifa,
            ..JobSpec::new(text.clone())
        });
        for seed in 0u64..4 {
            specs.push(JobSpec {
                method: copack_core::AssignMethod::Random { seed },
                ..JobSpec::new(text.clone())
            });
        }
    }

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_capacity: specs.len().max(64),
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());

    let cold = run_phase(addr, &specs, clients);
    let warm = run_phase(addr, &specs, clients);
    let sustained = run_sustained(addr, &specs, clients, Duration::from_secs(3));

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let summary = daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
    let metrics = PoolMetrics::from_events(&summary.events);
    assert_eq!(
        summary.status.completed as usize,
        specs.len(),
        "every distinct job must execute exactly once across both phases"
    );

    println!(
        "cold: {} jobs in {:.3} s ({:.1} jobs/s, p50 {:.2} ms, p99 {:.2} ms)",
        cold.jobs,
        cold.wall_seconds,
        cold.jobs_per_sec(),
        cold.p50_ms,
        cold.p99_ms
    );
    println!(
        "warm: {} jobs in {:.3} s ({:.1} jobs/s, p50 {:.2} ms, p99 {:.2} ms)",
        warm.jobs,
        warm.wall_seconds,
        warm.jobs_per_sec(),
        warm.p50_ms,
        warm.p99_ms
    );
    println!(
        "sustained: {} jobs in {:.3} s ({:.1} jobs/s, p50 {:.2} ms, p99 {:.2} ms)",
        sustained.jobs,
        sustained.wall_seconds,
        sustained.jobs_per_sec(),
        sustained.p50_ms,
        sustained.p99_ms
    );
    println!(
        "cache: {} hits, {} coalesced over {} submissions (hit-rate {:.1}%)",
        metrics.cache_hits,
        metrics.coalesced,
        metrics.jobs,
        100.0 * metrics.cache_hit_rate()
    );

    // Cold-vs-warm restart on a smaller distinct set (one client, so
    // the walls compare like for like).
    let restart_specs: Vec<JobSpec> = specs.iter().take(12).cloned().collect();
    let restart = run_restart(&restart_specs, workers);
    println!(
        "restart: {} jobs cold in {:.3} s, warm from disk in {:.3} s \
         ({:.1}x speedup, {} disk hits)",
        restart.jobs,
        restart.cold_wall,
        restart.warm_wall,
        restart.cold_wall / restart.warm_wall.max(1e-12),
        restart.disk_hits
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"benchmark\": \"serve\",\n  \"workers\": {workers}, \"clients\": {clients}, \
         \"distinct_jobs\": {},\n  ",
        specs.len()
    );
    json_phase(&mut json, "cold", &cold);
    json.push_str(",\n  ");
    json_phase(&mut json, "warm", &warm);
    json.push_str(",\n  ");
    json_phase(&mut json, "sustained", &sustained);
    let _ = write!(
        json,
        ",\n  \"restart\": {{\"jobs\": {}, \"cold_wall_seconds\": {:.6}, \
         \"warm_wall_seconds\": {:.6}, \"speedup\": {:.2}, \"disk_hits\": {}}}",
        restart.jobs,
        restart.cold_wall,
        restart.warm_wall,
        restart.cold_wall / restart.warm_wall.max(1e-12),
        restart.disk_hits
    );
    let _ = writeln!(
        json,
        ",\n  \"cache_hits\": {}, \"coalesced\": {}, \"hit_rate\": {:.4}, \
         \"warm_speedup\": {:.2}\n}}",
        metrics.cache_hits,
        metrics.coalesced,
        metrics.cache_hit_rate(),
        cold.wall_seconds / warm.wall_seconds.max(1e-12)
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
