//! The paper-artefact generators as pure functions.
//!
//! Each function renders one table or figure of the paper to the exact
//! text its `src/bin/` wrapper prints — the binaries stay the command-line
//! entry points, while `tests/golden_outputs.rs` pins the bytes against
//! the checked-in goldens in `tests/golden/` (the no-op-recorder
//! bit-identity guarantee).

use std::fmt::Write as _;

use copack_core::{
    assign, dfa, exchange, ifa, margin_penalty, AssignMethod, Codesign, CodesignReport,
    CostWeights, ExchangeConfig,
};
use copack_gen::circuits;
use copack_geom::{Assignment, Quadrant, QuadrantGeometry};
use copack_power::GridSpec;
use copack_route::{analyze, balanced_density_map, DensityModel};
use copack_viz::{density_histogram, routing_ascii};

use crate::{f2, par_map, thousands, TextTable};

/// Renders the paper's **Table 2**: maximum package density and total
/// wirelength of the Random / IFA / DFA assignments on the five Table 1
/// circuits, plus the normalised average row.
///
/// Paper reference values: average density ratios 1 / 0.63 / 0.36 and
/// average wirelength ratios 1 / 0.88 / 0.82; every circuit satisfies
/// Random > IFA > DFA on density.
#[must_use]
pub fn table2_report() -> String {
    // The random baseline averages a few seeds so one unlucky draw does not
    // skew the ratios (the paper's random column is a single sample of an
    // unspecified seed).
    const RANDOM_SEEDS: [u64; 5] = [11, 23, 37, 51, 73];

    let mut table = TextTable::new([
        "Input case",
        "Bal Random",
        "Bal IFA",
        "Bal DFA",
        "Fly Random",
        "Fly IFA",
        "Fly DFA",
        "WL Random",
        "WL IFA",
        "WL DFA",
    ]);

    // The five circuits are independent; measure them concurrently and
    // aggregate in input order (the output is thread-count invariant).
    let circuits = circuits();
    let rows = par_map(&circuits, 0, |circuit| {
        let quadrant = circuit.build_quadrant().expect("circuit builds");

        let mut rand_density = 0.0;
        let mut rand_balanced = 0.0;
        let mut rand_wl = 0.0;
        for &seed in &RANDOM_SEEDS {
            let a = assign(&quadrant, AssignMethod::Random { seed }).expect("random");
            let r = analyze(&quadrant, &a, DensityModel::Geometric).expect("routable");
            rand_density += f64::from(r.max_density);
            rand_balanced += f64::from(
                balanced_density_map(&quadrant, &a)
                    .expect("routable")
                    .max_density(),
            );
            rand_wl += r.total_wirelength;
        }
        rand_density /= RANDOM_SEEDS.len() as f64;
        rand_balanced /= RANDOM_SEEDS.len() as f64;
        rand_wl /= RANDOM_SEEDS.len() as f64;

        let ifa_a = assign(&quadrant, AssignMethod::Ifa).expect("ifa");
        let ifa_r = analyze(&quadrant, &ifa_a, DensityModel::Geometric).expect("routable");
        let ifa_bal = balanced_density_map(&quadrant, &ifa_a)
            .expect("routable")
            .max_density();
        let dfa_a = assign(&quadrant, AssignMethod::dfa_default()).expect("dfa");
        let dfa_r = analyze(&quadrant, &dfa_a, DensityModel::Geometric).expect("routable");
        let dfa_bal = balanced_density_map(&quadrant, &dfa_a)
            .expect("routable")
            .max_density();

        // The paper reports whole-package numbers (4 identical quadrants):
        // density is per-quadrant, wirelength sums over the package.
        let wl_scale = 4.0;
        let cells = [
            circuit.name.clone(),
            f2(rand_balanced),
            ifa_bal.to_string(),
            dfa_bal.to_string(),
            f2(rand_density),
            ifa_r.max_density.to_string(),
            dfa_r.max_density.to_string(),
            thousands(rand_wl * wl_scale),
            thousands(ifa_r.total_wirelength * wl_scale),
            thousands(dfa_r.total_wirelength * wl_scale),
        ];
        // ratios: balanced ifa, dfa; flyline ifa, dfa; wl ifa, dfa
        let ratios = [
            f64::from(ifa_bal) / rand_balanced,
            f64::from(dfa_bal) / rand_balanced,
            f64::from(ifa_r.max_density) / rand_density,
            f64::from(dfa_r.max_density) / rand_density,
            ifa_r.total_wirelength / rand_wl,
            dfa_r.total_wirelength / rand_wl,
        ];
        (cells, ratios)
    });

    let mut ratio_sums = [0.0f64; 6];
    for (cells, ratios) in rows {
        table.row(cells);
        for (sum, r) in ratio_sums.iter_mut().zip(ratios) {
            *sum += r;
        }
    }

    let n = circuits.len() as f64;
    table.row([
        "Average".to_owned(),
        "1.00".to_owned(),
        f2(ratio_sums[0] / n),
        f2(ratio_sums[1] / n),
        "1.00".to_owned(),
        f2(ratio_sums[2] / n),
        f2(ratio_sums[3] / n),
        "1.00".to_owned(),
        f2(ratio_sums[4] / n),
        f2(ratio_sums[5] / n),
    ]);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: maximum density and total wirelength (random avg of {} seeds)",
        RANDOM_SEEDS.len()
    );
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "'Bal' = crossings balanced by the router (the paper routes with [10]'s"
    );
    let _ = writeln!(
        out,
        "iterative improvement, so its numbers are post-balancing); 'Fly' = naive"
    );
    let _ = writeln!(out, "flyline crossings.");
    let _ = writeln!(
        out,
        "Paper averages: density 1 / 0.63 / 0.36, wirelength 1 / 0.88 / 0.82"
    );
    out
}

/// Exchange seeds averaged per configuration (the annealer is stochastic;
/// the paper reports single runs of an unspecified seed).
const TABLE3_SEEDS: [u64; 3] = [0xC0DE, 0xBEEF, 0xF00D];

/// Runs the flow once per seed and returns the last report plus the
/// seed-averaged IR improvement, bonding-wire improvement, and
/// after-exchange max density.
fn averaged(base: &Codesign, quadrant: &Quadrant) -> (CodesignReport, f64, f64, f64) {
    let mut ir_sum = 0.0;
    let mut bw_sum = 0.0;
    let mut dens_sum = 0.0;
    let mut last = None;
    for &seed in &TABLE3_SEEDS {
        let mut cfg = base.clone();
        cfg.exchange.seed = seed;
        let report = cfg.run(quadrant).expect("pipeline runs");
        ir_sum += report.ir_improvement_percent.unwrap_or(0.0);
        bw_sum += report.omega_improvement_percent.unwrap_or(0.0);
        dens_sum += f64::from(report.routing_after.max_density);
        last = Some(report);
    }
    let n = TABLE3_SEEDS.len() as f64;
    (
        last.expect("at least one seed"),
        ir_sum / n,
        bw_sum / n,
        dens_sum / n,
    )
}

/// Renders the paper's **Table 3**: the effect of the finger/pad exchange
/// step after DFA, for 2-D (ψ = 1) and 4-tier stacking (ψ = 4) versions of
/// the five circuits — max density before/after, IR-drop improvement, and
/// (for stacking) the bonding-wire improvement.
///
/// Paper reference values: 2-D IR-drop improvement avg 10.61%; stacking
/// (ψ = 4) IR-drop improvement avg 4.58% and bonding-wire improvement avg
/// 15.66%; density after exchanging grows by a couple of units (the cost
/// of the IR/bond-wire gains).
#[must_use]
pub fn table3_report() -> String {
    let base = Codesign {
        grid: GridSpec::default_chip(48),
        ..Codesign::default()
    };

    let mut table = TextTable::new([
        "Input case",
        "2D dens DFA",
        "2D dens exch",
        "2D IR impr %",
        "4T dens DFA",
        "4T dens exch",
        "4T IR impr %",
        "4T bondwire impr %",
    ]);

    // Each circuit's 2-D and stacked runs are independent of every other
    // circuit; fan them out and aggregate in input order.
    let circuits = circuits();
    let rows = par_map(&circuits, 0, |circuit| {
        // 2-D run.
        let q2 = circuit.build_quadrant().expect("circuit builds");
        let (r2, ir2, _, dens2) = averaged(&base, &q2);

        // 4-tier stacking run.
        let stacked = circuit.stacked(4);
        let q4 = stacked.build_quadrant().expect("stacked circuit builds");
        let cfg4 = Codesign {
            stack: stacked.stack().expect("valid stack"),
            ..base.clone()
        };
        let (r4, ir4, bw4, dens4) = averaged(&cfg4, &q4);

        let cells = [
            circuit.name.clone(),
            r2.routing_before.max_density.to_string(),
            f2(dens2),
            f2(ir2),
            r4.routing_before.max_density.to_string(),
            f2(dens4),
            f2(ir4),
            f2(bw4),
        ];
        (cells, [ir2, ir4, bw4])
    });

    let mut sums = [0.0f64; 3];
    for (cells, improvements) in rows {
        table.row(cells);
        for (sum, v) in sums.iter_mut().zip(improvements) {
            *sum += v;
        }
    }

    let n = circuits.len() as f64;
    table.row([
        "Average improvement".to_owned(),
        String::new(),
        String::new(),
        f2(sums[0] / n),
        String::new(),
        String::new(),
        f2(sums[1] / n),
        f2(sums[2] / n),
    ]);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: finger/pad exchange on 2-D (psi=1) and stacking (psi=4) ICs \
         (improvements averaged over {} seeds)",
        TABLE3_SEEDS.len()
    );
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "Paper averages: 2-D IR 10.61%, stacking IR 4.58%, bonding wire 15.66%"
    );
    out
}

/// Renders the **A8 margin ablation**: the optional net-separation
/// margin term `SM` (weight μ, the fourth term of Eq. 3 — off by
/// default) swept over μ ∈ {0, 1.5, 5} on the five Table 1 circuits,
/// one exchange run each from the DFA initial order (seed 0xC0DE).
///
/// Reported per circuit: the initial DFA penalty, the penalty after
/// exchanging at each weight, and the after-exchange max density at the
/// extremes — the ablation shows what the term buys (margin) and what
/// it costs (density), and the golden pin in `tests/golden/margin.txt`
/// locks the μ = 0 column to the pre-margin annealer bit-for-bit.
#[must_use]
pub fn margin_report() -> String {
    const MARGIN_WEIGHTS: [f64; 3] = [0.0, 1.5, 5.0];

    let mut table = TextTable::new([
        "Input case",
        "SM DFA",
        "SM u=0",
        "SM u=1.5",
        "SM u=5",
        "dens u=0",
        "dens u=5",
    ]);

    // Circuits are independent; measure concurrently, aggregate in
    // input order (thread-count invariant like every other report).
    let circuits = circuits();
    let rows = par_map(&circuits, 0, |circuit| {
        let quadrant = circuit.build_quadrant().expect("circuit builds");
        let initial = dfa(&quadrant, 1).expect("dfa runs");
        let stack = copack_geom::StackConfig::planar();

        let mut penalties = Vec::with_capacity(MARGIN_WEIGHTS.len());
        let mut densities = Vec::with_capacity(MARGIN_WEIGHTS.len());
        for &margin in &MARGIN_WEIGHTS {
            let config = ExchangeConfig {
                weights: CostWeights {
                    margin,
                    ..CostWeights::default()
                },
                ..ExchangeConfig::default()
            };
            let result = exchange(&quadrant, &initial, &stack, &config).expect("exchange runs");
            penalties.push(margin_penalty(&quadrant, &result.assignment));
            densities.push(
                analyze(&quadrant, &result.assignment, DensityModel::Geometric)
                    .expect("routable")
                    .max_density,
            );
        }

        let cells = [
            circuit.name.clone(),
            margin_penalty(&quadrant, &initial).to_string(),
            penalties[0].to_string(),
            penalties[1].to_string(),
            penalties[2].to_string(),
            densities[0].to_string(),
            densities[2].to_string(),
        ];
        // Ratio of the strongly-weighted penalty to the unweighted one.
        let ratio = penalties[2] as f64 / penalties[0] as f64;
        (cells, ratio)
    });

    let mut ratio_sum = 0.0;
    for (cells, ratio) in rows {
        table.row(cells);
        ratio_sum += ratio;
    }
    let n = circuits.len() as f64;
    table.row([
        "Average SM ratio (u=5 / u=0)".to_owned(),
        String::new(),
        "1.00".to_owned(),
        String::new(),
        f2(ratio_sum / n),
        String::new(),
        String::new(),
    ]);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "A8: net-separation margin term (mu, the optional fourth term of Eq. 3)"
    );
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "SM sums R - |row(a) - row(a+1)| over adjacent occupied fingers; lower"
    );
    let _ = writeln!(
        out,
        "is more lateral bond-wire margin. mu = 0 is bit-identical to the"
    );
    let _ = writeln!(
        out,
        "pre-margin annealer (the tracker is never built), so its column pins"
    );
    let _ = writeln!(out, "the default flow while the sweep shows the trade-off.");
    out
}

/// Renders the paper's **Fig. 5 / Fig. 10 / Fig. 12** worked example: the
/// 12-net, 3-row quadrant under the random order (density 4), the IFA
/// order (density 2) and the DFA order (density 2), printed with the same
/// finger orders the paper lists.
///
/// # Panics
///
/// Panics if the routability model disagrees with the paper's densities —
/// the worked example doubles as a correctness check.
#[must_use]
pub fn fig5_report() -> String {
    // Figure-style geometry: fingers span the ball grid, as drawn.
    let geometry = QuadrantGeometry {
        ball_pitch: 1.0,
        finger_pitch: 0.5,
        finger_width: 0.3,
        finger_height: 0.4,
        via_diameter: 0.1,
        ball_diameter: 0.2,
    };
    let q = Quadrant::builder()
        .row([10u32, 2, 4, 7, 0])
        .row([1u32, 3, 5, 8])
        .row([11u32, 6, 9])
        .geometry(geometry)
        .build()
        .expect("the Fig. 5 instance builds");

    let cases = [
        (
            "Fig. 5(A) random order",
            Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]),
            4u32,
        ),
        ("Fig. 10 IFA", ifa(&q).expect("ifa runs"), 2),
        ("Fig. 12 DFA", dfa(&q, 1).expect("dfa runs"), 2),
    ];

    let mut out = String::new();
    for (name, assignment, paper_density) in cases {
        let report = analyze(&q, &assignment, DensityModel::Geometric).expect("orders are legal");
        let _ = writeln!(out, "== {name} ==");
        let _ = write!(out, "{}", routing_ascii(&q, &assignment).expect("renders"));
        let _ = write!(
            out,
            "{}",
            density_histogram(&q, &assignment, DensityModel::Geometric).expect("renders")
        );
        let _ = writeln!(
            out,
            "max density {} (paper: {paper_density}), wirelength {:.2} um\n",
            report.max_density, report.total_wirelength
        );
        assert_eq!(
            report.max_density, paper_density,
            "{name}: model disagrees with the paper"
        );
    }
    let _ = writeln!(out, "All three worked examples match the paper exactly.");
    out
}
