//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see the experiment index in `DESIGN.md`); this small library holds the
//! text-table plumbing they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reports;

pub use reports::{fig5_report, margin_report, table2_report, table3_report};

use std::fmt::Write as _;

/// A plain-text table printer that mimics the paper's layout: a header row,
/// aligned columns, and whatever summary rows the caller appends.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let print_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            let _ = writeln!(out);
        };
        print_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            print_row(row, &mut out);
        }
        out
    }
}

/// Maps `f` over `items` on up to `threads` OS threads (`0` = the
/// machine's available parallelism), returning results in input order.
///
/// The harness binaries use this to process the five Table 1 circuits
/// concurrently: each item's work is independent, so the output — and any
/// aggregate computed from it — is identical for every thread count.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .min(items.len())
    .max(1);
    let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
    if workers == 1 {
        for (slot, item) in results.iter_mut().zip(items) {
            *slot = Some(f(item));
        }
    } else {
        // Contiguous chunks keep each worker's output slots disjoint.
        let chunk = items.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for (work, out) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (item, slot) in work.iter().zip(out.iter_mut()) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every item mapped"))
        .collect()
}

/// Formats a float with 2 decimal places (the paper's table style).
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float as a whole-number micron count with thousands
/// separators, like the paper's wirelength columns ("42,844").
#[must_use]
pub fn thousands(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    if n < 0 {
        out.insert(0, '-');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.starts_with("a    bb"), "{s}");
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn thousands_inserts_separators() {
        assert_eq!(thousands(42844.0), "42,844");
        assert_eq!(thousands(999.4), "999");
        assert_eq!(thousands(1_234_567.0), "1,234,567");
        assert_eq!(thousands(-1234.0), "-1,234");
    }

    #[test]
    fn f2_rounds_to_two_places() {
        assert_eq!(f2(10.619), "10.62");
        assert_eq!(f2(1.0), "1.00");
    }

    #[test]
    fn par_map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..13).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0usize, 1, 2, 5, 32] {
            assert_eq!(
                par_map(&items, threads, |x| x * x),
                expected,
                "threads = {threads}"
            );
        }
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, 4, |x| x + 1).is_empty());
    }
}
