//! Terminal renderings for quick inspection.

use std::fmt::Write as _;

use copack_geom::{Assignment, Quadrant};
use copack_route::{density_map, DensityModel, RouteError};

/// Renders an assignment as text: the finger order on top, then each ball
/// row (top row first), mimicking the layout of the paper's Fig. 5.
///
/// # Errors
///
/// Never fails today; `Result` mirrors the SVG renderers.
pub fn routing_ascii(quadrant: &Quadrant, assignment: &Assignment) -> Result<String, RouteError> {
    let mut out = String::new();
    let _ = writeln!(out, "fingers: {assignment}");
    for (row, nets) in quadrant.rows_top_down() {
        let cells: Vec<String> = nets.iter().map(|n| n.raw().to_string()).collect();
        let _ = writeln!(out, "balls y={}: {}", row.get(), cells.join(" "));
    }
    Ok(out)
}

/// Renders the per-line segment densities as a text bar chart: one row per
/// horizontal line, one `#` per wire in the line's worst segment, with the
/// full segment counts appended.
///
/// # Errors
///
/// Propagates [`RouteError`] from the density analysis.
pub fn density_histogram(
    quadrant: &Quadrant,
    assignment: &Assignment,
    model: DensityModel,
) -> Result<String, RouteError> {
    let map = density_map(quadrant, assignment, model)?;
    let mut out = String::new();
    for row in &map.rows {
        let _ = writeln!(
            out,
            "y={:<2} max {:>3} |{}| {:?}",
            row.row.get(),
            row.max(),
            "#".repeat(row.max() as usize),
            row.counts
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::Assignment;

    fn fig5() -> (Quadrant, Assignment) {
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        (q, a)
    }

    #[test]
    fn ascii_lists_fingers_and_rows() {
        let (q, a) = fig5();
        let s = routing_ascii(&q, &a).unwrap();
        assert!(s.contains("fingers: 10,11,1,2,6,3,4,9,5,7,8,0"));
        assert!(s.contains("balls y=3: 11 6 9"));
        assert!(s.contains("balls y=1: 10 2 4 7 0"));
    }

    #[test]
    fn histogram_has_one_line_per_row() {
        let (q, a) = fig5();
        let s = density_histogram(&q, &a, DensityModel::Geometric).unwrap();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("y=3"));
        assert!(s.contains('#'));
    }

    #[test]
    fn histogram_rejects_illegal_orders() {
        let (q, _) = fig5();
        let bad = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        assert!(density_histogram(&q, &bad, DensityModel::Geometric).is_err());
    }
}
