//! ASCII sparklines for telemetry curves (acceptance rates, solver
//! residuals).

use copack_obs::{acceptance_curve, portfolio_cost_curves, residual_curve, Event, Solver};
use std::fmt::Write as _;

/// The eight block glyphs, lowest to highest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a one-line block-glyph sparkline, scaled linearly
/// between the slice's min and max. A flat (or single-value) series
/// renders at the lowest glyph; an empty slice gives an empty string.
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return ' ';
            }
            if span <= 0.0 {
                return BLOCKS[0];
            }
            let t = ((v - min) / span * 7.0).round() as usize;
            BLOCKS[t.min(7)]
        })
        .collect()
}

/// [`sparkline`] over `log10(value)` — the right scale for solver
/// residuals, which fall over many orders of magnitude. Non-positive
/// values render as blanks.
#[must_use]
pub fn sparkline_log(values: &[f64]) -> String {
    let logs: Vec<f64> = values
        .iter()
        .map(|&v| if v > 0.0 { v.log10() } else { f64::NAN })
        .collect();
    sparkline(&logs)
}

/// Downsamples `values` to at most `width` points (bucket means) so long
/// curves fit one terminal line.
#[must_use]
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if width == 0 || values.is_empty() || values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|b| {
            let lo = b * values.len() / width;
            let hi = (((b + 1) * values.len()) / width).max(lo + 1);
            let bucket = &values[lo..hi];
            bucket.iter().sum::<f64>() / bucket.len() as f64
        })
        .collect()
}

/// Multi-line telemetry view of a trace: one sparkline for the SA
/// acceptance-rate curve (per temperature step), one per solver for
/// the residual curves (log scale), and — for multi-start portfolio
/// traces — one cost curve per start (pruned starts flagged), each
/// capped at `width` glyphs. Curves absent from the trace are omitted;
/// an empty trace gives an empty string.
#[must_use]
pub fn trace_sparklines(events: &[Event], width: usize) -> String {
    let mut out = String::new();
    let acceptance = acceptance_curve(events);
    if !acceptance.is_empty() {
        out.push_str("acceptance ");
        out.push_str(&sparkline(&downsample(&acceptance, width)));
        out.push('\n');
    }
    for (solver, label) in [(Solver::Sor, "sor resid "), (Solver::Cg, "cg resid  ")] {
        let residuals = residual_curve(events, solver);
        if !residuals.is_empty() {
            out.push_str(label);
            out.push(' ');
            out.push_str(&sparkline_log(&downsample(&residuals, width)));
            out.push('\n');
        }
    }
    for curve in portfolio_cost_curves(events) {
        if curve.costs.is_empty() {
            continue;
        }
        let _ = write!(out, "start {:<4} ", curve.start);
        out.push_str(&sparkline(&downsample(&curve.costs, width)));
        if curve.pruned {
            out.push_str(" (pruned)");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_the_glyph_range() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
        let flat = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(flat, "▁▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_is_monotone_in_its_input() {
        let s: Vec<char> = sparkline(&[0.0, 0.25, 0.5, 0.75, 1.0]).chars().collect();
        for pair in s.windows(2) {
            assert!(pair[0] <= pair[1], "{s:?}");
        }
    }

    #[test]
    fn log_sparkline_handles_decades_and_zeros() {
        let s: Vec<char> = sparkline_log(&[1.0, 1e-6, 1e-12, 0.0]).chars().collect();
        assert_eq!(s.len(), 4);
        assert!(s[0] > s[1] && s[1] > s[2], "{s:?}");
        assert_eq!(s[3], ' ');
    }

    #[test]
    fn downsample_caps_the_width() {
        let long: Vec<f64> = (0..1000).map(f64::from).collect();
        let short = downsample(&long, 40);
        assert_eq!(short.len(), 40);
        // Bucket means preserve monotonicity.
        for pair in short.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(downsample(&long, 0), long);
        assert_eq!(downsample(&[1.0], 40), vec![1.0]);
    }

    #[test]
    fn trace_sparklines_renders_present_curves_only() {
        let events = vec![
            Event::TempStep {
                step: 0,
                temperature: 1.0,
                proposed: 10,
                accepted: 8,
                uphill_accepted: 2,
                constraint_rejected: 0,
                ir_noop_applied: 0,
                cost: 5.0,
            },
            Event::TempStep {
                step: 1,
                temperature: 0.9,
                proposed: 10,
                accepted: 2,
                uphill_accepted: 0,
                constraint_rejected: 1,
                ir_noop_applied: 0,
                cost: 4.0,
            },
        ];
        let text = trace_sparklines(&events, 60);
        assert!(text.starts_with("acceptance "), "{text}");
        assert!(!text.contains("resid"), "{text}");
        assert!(!text.contains("start"), "{text}");
        assert_eq!(trace_sparklines(&[], 60), "");
    }

    #[test]
    fn portfolio_traces_get_one_line_per_start() {
        let temp_step = |cost: f64| Event::TempStep {
            step: 0,
            temperature: 1.0,
            proposed: 10,
            accepted: 5,
            uphill_accepted: 0,
            constraint_rejected: 0,
            ir_noop_applied: 0,
            cost,
        };
        let events = vec![
            Event::PortfolioStart { start: 0, seed: 1 },
            temp_step(9.0),
            temp_step(7.0),
            Event::PortfolioStart { start: 1, seed: 2 },
            temp_step(9.5),
            Event::PortfolioPrune {
                start: 1,
                epoch: 0,
                best_cost: 9.5,
                global_best: 7.0,
            },
        ];
        let text = trace_sparklines(&events, 60);
        assert!(text.contains("start 0"), "{text}");
        assert!(text.contains("start 1"), "{text}");
        assert!(text.contains("(pruned)"), "{text}");
        assert_eq!(text.matches("(pruned)").count(), 1, "{text}");
    }
}
