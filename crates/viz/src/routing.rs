//! Quadrant routing plots in the style of the paper's Fig. 15.

use copack_geom::{Assignment, Quadrant};
use copack_route::{balanced_paths, extract_paths, NetPath, RouteError};

use crate::{wire_color, SvgCanvas};

/// Renders the monotonic routing of `assignment` on `quadrant` as SVG:
/// fingers along the top, bump balls and vias on their grid lines, Layer-1
/// routes as coloured polylines and Layer-2 stubs as dashed-free thin
/// lines.
///
/// # Errors
///
/// Propagates [`RouteError`] if the assignment is incomplete or breaks the
/// monotonic rule.
pub fn routing_svg(quadrant: &Quadrant, assignment: &Assignment) -> Result<String, RouteError> {
    let paths = extract_paths(quadrant, assignment)?;
    render_paths(quadrant, assignment, &paths)
}

/// Like [`routing_svg`], but with the crossings placed by the optimal
/// balancer ([`copack_route::balanced_paths`]) — the router-improved
/// picture rather than the naive flyline one.
///
/// # Errors
///
/// Propagates [`RouteError`] if the assignment is incomplete or breaks the
/// monotonic rule.
pub fn routing_svg_balanced(
    quadrant: &Quadrant,
    assignment: &Assignment,
) -> Result<String, RouteError> {
    let paths = balanced_paths(quadrant, assignment)?;
    render_paths(quadrant, assignment, &paths)
}

fn render_paths(
    quadrant: &Quadrant,
    assignment: &Assignment,
    paths: &[NetPath],
) -> Result<String, RouteError> {
    // Model-space extent.
    let pitch = quadrant.geometry().ball_pitch;
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    for p in paths {
        for pt in p.layer1.iter().chain([&p.ball]) {
            min_x = min_x.min(pt.x);
            max_x = max_x.max(pt.x);
        }
    }
    let fy = quadrant.finger_line_y();
    let mut canvas = SvgCanvas::new(min_x - pitch, -pitch, max_x + pitch, fy + pitch);

    // Grid lines.
    for (row, _) in quadrant.rows_bottom_up() {
        let y = quadrant.line_y(row);
        canvas.line(min_x - pitch, y, max_x + pitch, y, "#dddddd", pitch * 0.02);
    }

    // Wires first (under the pads).
    let wire_w = pitch * 0.04;
    for (i, p) in paths.iter().enumerate() {
        let pts: Vec<(f64, f64)> = p.layer1.iter().map(|q| (q.x, q.y)).collect();
        canvas.polyline(&pts, wire_color(i), wire_w);
        // Layer-2 stub via → ball.
        canvas.line(
            p.via.x,
            p.via.y,
            p.ball.x,
            p.ball.y,
            "#aaaaaa",
            wire_w * 0.8,
        );
    }

    // Balls, vias, fingers.
    for (row, nets) in quadrant.rows_bottom_up() {
        for (j, _net) in nets.iter().enumerate() {
            let b = quadrant.ball_center(row, j as u32 + 1);
            canvas.circle(b.x, b.y, pitch * 0.18, "#444444");
        }
        for s in 1..=quadrant.via_site_count(row) as u32 {
            let x = quadrant.via_site_x(row, s);
            canvas.circle(x, quadrant.line_y(row), pitch * 0.07, "#888888");
        }
    }
    for (finger, net) in assignment.iter() {
        let f = quadrant.finger_center(finger);
        let w = quadrant.geometry().finger_pitch * 0.6;
        canvas.rect(f.x - w / 2.0, f.y - pitch * 0.1, w, pitch * 0.2, "#333333");
        canvas.text(f.x, f.y + pitch * 0.25, pitch * 0.3, &net.raw().to_string());
    }
    Ok(canvas.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::Assignment;

    fn fig5() -> (Quadrant, Assignment) {
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        (q, a)
    }

    #[test]
    fn svg_contains_all_nets() {
        let (q, a) = fig5();
        let svg = routing_svg(&q, &a).unwrap();
        assert!(svg.starts_with("<svg"));
        // One polyline per net.
        assert_eq!(svg.matches("<polyline").count(), 12);
        // Finger labels present.
        assert!(svg.contains(">11<"));
        assert!(svg.contains(">0<"));
    }

    #[test]
    fn illegal_assignment_is_rejected() {
        let (q, _) = fig5();
        let bad = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        assert!(routing_svg(&q, &bad).is_err());
    }

    #[test]
    fn balanced_rendering_differs_from_flyline_for_bad_orders() {
        let (q, _) = fig5();
        let random = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let fly = routing_svg(&q, &random).unwrap();
        let bal = routing_svg_balanced(&q, &random).unwrap();
        assert_ne!(fly, bal);
        assert_eq!(bal.matches("<polyline").count(), 12);
    }

    #[test]
    fn different_orders_render_differently() {
        let (q, a) = fig5();
        let b = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        assert_ne!(routing_svg(&q, &a).unwrap(), routing_svg(&q, &b).unwrap());
    }
}
