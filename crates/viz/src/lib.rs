//! SVG and ASCII visualisation of package routing and IR-drop maps.
//!
//! Regenerates the paper's visual artefacts:
//!
//! * [`routing_svg`] — quadrant routing plots in the style of Fig. 15
//!   (fingers, balls, vias, and the monotonic Layer-1/Layer-2 routes);
//! * [`irmap_svg`] — IR-drop heat maps in the style of Fig. 6;
//! * [`routing_ascii`] — a quick terminal rendering of an assignment;
//! * [`density_histogram`] — per-line segment loads as a text bar chart.
//!
//! All output is plain [`String`]s; callers decide where to write them.
//!
//! # Example
//!
//! ```
//! use copack_geom::{Assignment, Quadrant};
//! use copack_viz::routing_svg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = Quadrant::builder()
//!     .row([10u32, 2, 4, 7, 0])
//!     .row([1u32, 3, 5, 8])
//!     .row([11u32, 6, 9])
//!     .build()?;
//! let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
//! let svg = routing_svg(&q, &a)?;
//! assert!(svg.starts_with("<svg"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod irmap;
mod package_view;
mod palette;
mod routing;
mod sparkline;
mod svg;

pub use ascii::{density_histogram, routing_ascii};
pub use irmap::irmap_svg;
pub use package_view::package_svg;
pub use palette::{heat_color, wire_color};
pub use routing::{routing_svg, routing_svg_balanced};
pub use sparkline::{downsample, sparkline, sparkline_log, trace_sparklines};
pub use svg::SvgCanvas;
