//! Whole-package rendering: four quadrants around the die.

use copack_geom::{Assignment, Package, Point, QuadrantSide};
use copack_route::{extract_paths, RouteError};

use crate::{wire_color, SvgCanvas};

/// Renders a full four-quadrant package: each side's routing is drawn in
/// its physical orientation around the central die (bottom as-is, right
/// rotated 90°, top 180°, left 270°), so the diagonal cut-lines and the
/// flank wires that crowd them are visible.
///
/// # Errors
///
/// Propagates [`RouteError`] if any side's assignment is incomplete or
/// illegal.
pub fn package_svg(package: &Package, assignments: &[Assignment; 4]) -> Result<String, RouteError> {
    // Extent: the largest quadrant decides the die-centred radius.
    let mut radius: f64 = 0.0;
    for (_, q) in package.quadrants() {
        radius = radius.max(q.finger_line_y() + q.geometry().ball_pitch);
        let widest = q.row(copack_geom::RowIdx::new(1)).len() as f64;
        radius = radius.max((widest / 2.0 + 1.0) * q.geometry().ball_pitch);
    }
    let mut canvas = SvgCanvas::new(-radius, -radius, radius, radius);

    // Die outline (the fingers of each quadrant sit just outside it).
    let die = package
        .quadrants()
        .map(|(_, q)| radius - q.finger_line_y())
        .fold(f64::INFINITY, f64::min)
        .max(radius * 0.05);
    canvas.rect(-die, -die, 2.0 * die, 2.0 * die, "#f2f2f2");

    // Diagonal cut-lines.
    let pen = radius * 0.004;
    canvas.line(-radius, -radius, radius, radius, "#eecccc", pen);
    canvas.line(-radius, radius, radius, -radius, "#eecccc", pen);

    for (side, quadrant) in package.quadrants() {
        let assignment = &assignments[side.index()];
        let paths = extract_paths(quadrant, assignment)?;
        // Quadrant-local coordinates grow from the fingers (y high, near
        // the die) to the bottom row (y low, near the edge). Map local
        // (x, y) to package space: the fingers line lands at the die edge.
        let fy = quadrant.finger_line_y();
        let place = |p: Point| -> (f64, f64) {
            let (lx, ly) = (p.x, radius - (fy - p.y) - die);
            // ly grows outward from (just inside) the die edge; now rotate
            // the "bottom" frame into the side's orientation.
            let out = -ly; // distance from centre towards this side's edge
            match side {
                QuadrantSide::Bottom => (lx, -out),
                QuadrantSide::Right => (-out, lx),
                QuadrantSide::Top => (-lx, out),
                QuadrantSide::Left => (out, -lx),
            }
        };
        let pitch = quadrant.geometry().ball_pitch;
        for (i, p) in paths.iter().enumerate() {
            let pts: Vec<(f64, f64)> = p.layer1.iter().map(|&q| place(q)).collect();
            canvas.polyline(&pts, wire_color(i), pitch * 0.04);
            let (bx, by) = place(p.ball);
            canvas.circle(bx, by, pitch * 0.15, "#444444");
        }
    }
    Ok(canvas.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::Quadrant;

    fn package() -> (Package, [Assignment; 4]) {
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        (Package::uniform(q), [a.clone(), a.clone(), a.clone(), a])
    }

    #[test]
    fn renders_all_four_sides() {
        let (p, a) = package();
        let svg = package_svg(&p, &a).unwrap();
        assert!(svg.starts_with("<svg"));
        // 12 wires per side.
        assert_eq!(svg.matches("<polyline").count(), 48);
        // 12 balls per side.
        assert_eq!(svg.matches("<circle").count(), 48);
    }

    #[test]
    fn illegal_side_is_rejected() {
        let (p, mut a) = package();
        a[1] = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        assert!(package_svg(&p, &a).is_err());
    }

    #[test]
    fn different_orders_change_the_picture() {
        let (p, a) = package();
        let mut b = a.clone();
        b[0] = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        assert_ne!(package_svg(&p, &a).unwrap(), package_svg(&p, &b).unwrap());
    }
}
