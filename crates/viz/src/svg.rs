//! A minimal SVG canvas (kept dependency-free on purpose).

use std::fmt::Write as _;

/// An append-only SVG document builder with a user-space viewbox.
///
/// Coordinates are given in model space; the canvas flips the y-axis so
/// model "up" renders upwards (SVG's y grows downwards).
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    min_x: f64,
    max_y: f64,
    body: String,
    width: f64,
    height: f64,
}

impl SvgCanvas {
    /// Creates a canvas covering the model-space rectangle
    /// `[min_x, max_x] × [min_y, max_y]`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is degenerate or not finite.
    #[must_use]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x.is_finite() && max_x.is_finite() && min_y.is_finite() && max_y.is_finite(),
            "canvas bounds must be finite"
        );
        assert!(max_x > min_x && max_y > min_y, "canvas must have area");
        Self {
            min_x,
            max_y,
            body: String::new(),
            width: max_x - min_x,
            height: max_y - min_y,
        }
    }

    fn tx(&self, x: f64) -> f64 {
        x - self.min_x
    }

    fn ty(&self, y: f64) -> f64 {
        self.max_y - y
    }

    /// Draws a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = write!(
            self.body,
            r#"<line x1="{:.3}" y1="{:.3}" x2="{:.3}" y2="{:.3}" stroke="{stroke}" stroke-width="{width}"/>"#,
            self.tx(x1),
            self.ty(y1),
            self.tx(x2),
            self.ty(y2)
        );
    }

    /// Draws a polyline through the given model-space points.
    pub fn polyline(&mut self, pts: &[(f64, f64)], stroke: &str, width: f64) {
        if pts.len() < 2 {
            return;
        }
        let mut coords = String::new();
        for &(x, y) in pts {
            let _ = write!(coords, "{:.3},{:.3} ", self.tx(x), self.ty(y));
        }
        let _ = write!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}"/>"#,
            coords.trim_end()
        );
    }

    /// Draws a circle.
    pub fn circle(&mut self, x: f64, y: f64, r: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<circle cx="{:.3}" cy="{:.3}" r="{r}" fill="{fill}"/>"#,
            self.tx(x),
            self.ty(y)
        );
    }

    /// Draws an axis-aligned rectangle (model-space corner + size).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<rect x="{:.3}" y="{:.3}" width="{:.3}" height="{:.3}" fill="{fill}"/>"#,
            self.tx(x),
            self.ty(y + h),
            w,
            h
        );
    }

    /// Draws text anchored at its centre.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = write!(
            self.body,
            r#"<text x="{:.3}" y="{:.3}" font-size="{size}" text-anchor="middle" font-family="sans-serif">{escaped}</text>"#,
            self.tx(x),
            self.ty(y)
        );
    }

    /// Finalises the document.
    #[must_use]
    pub fn finish(self) -> String {
        format!(
            concat!(
                r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {w:.3} {h:.3}" "#,
                r#"width="{pw:.0}" height="{ph:.0}">"#,
                r#"<rect width="100%" height="100%" fill="white"/>{body}</svg>"#
            ),
            w = self.width,
            h = self.height,
            pw = 800.0,
            ph = 800.0 * self.height / self.width,
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_produces_wellformed_svg() {
        let mut c = SvgCanvas::new(-1.0, -1.0, 1.0, 1.0);
        c.line(-1.0, 0.0, 1.0, 0.0, "black", 0.01);
        c.circle(0.0, 0.0, 0.1, "red");
        c.rect(-0.5, -0.5, 1.0, 0.2, "#eee");
        c.text(0.0, 0.5, 0.1, "a<b&c");
        c.polyline(&[(0.0, 0.0), (0.5, 0.5), (1.0, 0.0)], "blue", 0.02);
        let svg = c.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<line"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("a&lt;b&amp;c"), "text is escaped");
        // Balanced tags (crude well-formedness check).
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut c = SvgCanvas::new(0.0, 0.0, 10.0, 10.0);
        c.circle(0.0, 10.0, 1.0, "red"); // model top-left
        let svg = c.finish();
        assert!(svg.contains(r#"cx="0.000" cy="0.000""#));
    }

    #[test]
    fn short_polylines_are_ignored() {
        let mut c = SvgCanvas::new(0.0, 0.0, 1.0, 1.0);
        c.polyline(&[(0.5, 0.5)], "red", 0.1);
        assert!(!c.finish().contains("polyline"));
    }

    #[test]
    #[should_panic(expected = "area")]
    fn degenerate_canvas_panics() {
        let _ = SvgCanvas::new(0.0, 0.0, 0.0, 1.0);
    }
}
