//! IR-drop heat maps in the style of the paper's Fig. 6.

use copack_power::IrMap;

use crate::{heat_color, SvgCanvas};

/// Renders an [`IrMap`] as an SVG heat map: one cell per grid node,
/// white → yellow → red with increasing drop, annotated with the maximum
/// drop in millivolts (the number the paper prints under each Fig. 6
/// panel).
///
/// `scale_mv` fixes the colour scale's red point (so several panels can
/// share a scale); pass the worst of the maps being compared, or the map's
/// own [`IrMap::max_drop`] for a standalone rendering.
#[must_use]
pub fn irmap_svg(map: &IrMap, scale_mv: f64) -> String {
    let (nx, ny) = (map.nx(), map.ny());
    let mut canvas = SvgCanvas::new(0.0, -1.5, nx as f64, ny as f64);
    let scale = scale_mv.max(1e-9);
    for j in 0..ny {
        for i in 0..nx {
            let drop_mv = map.drop_at(i, j) * 1000.0;
            canvas.rect(i as f64, j as f64, 1.0, 1.0, &heat_color(drop_mv / scale));
        }
    }
    canvas.text(
        nx as f64 / 2.0,
        -1.0,
        (nx as f64 / 24.0).max(0.8),
        &format!("max IR-drop: {:.1} mV", map.max_drop() * 1000.0),
    );
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_power::{solve_sor, GridSpec, PadRing};

    fn sample_map() -> IrMap {
        let spec = GridSpec::default_chip(8);
        solve_sor(&spec, &PadRing::uniform(4)).unwrap()
    }

    #[test]
    fn heat_map_has_one_cell_per_node() {
        let map = sample_map();
        let svg = irmap_svg(&map, map.max_drop() * 1000.0);
        // 64 node cells + 1 background rect.
        assert_eq!(svg.matches("<rect").count(), 8 * 8 + 1);
        assert!(svg.contains("max IR-drop"));
    }

    #[test]
    fn worst_node_is_red_under_its_own_scale() {
        let map = sample_map();
        let svg = irmap_svg(&map, map.max_drop() * 1000.0);
        assert!(svg.contains("#c80000"), "worst cell saturates the scale");
    }

    #[test]
    fn shared_scale_desaturates_better_maps() {
        let map = sample_map();
        // With a scale 10× the map's own worst, nothing is deep red.
        let svg = irmap_svg(&map, map.max_drop() * 10_000.0);
        assert!(!svg.contains("#c80000"));
    }
}
