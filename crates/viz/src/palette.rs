//! Colour helpers for the renderers.

/// A categorical colour for wire `i` (cycles through a colour-blind-safe
/// eight-colour palette).
#[must_use]
pub fn wire_color(i: usize) -> &'static str {
    const PALETTE: [&str; 8] = [
        "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#56b4e9", "#e69f00", "#000000", "#999999",
    ];
    PALETTE[i % PALETTE.len()]
}

/// Maps a normalised severity `t ∈ [0, 1]` to a white→yellow→red heat
/// colour (the usual IR-drop sign-off palette: red = worst drop).
///
/// Values outside `[0, 1]` are clamped.
#[must_use]
pub fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    // 0 → white (255,255,255); 0.5 → yellow (255,220,0); 1 → red (200,0,0).
    let (r, g, b) = if t < 0.5 {
        let u = t * 2.0;
        (255.0, 255.0 - 35.0 * u, 255.0 * (1.0 - u))
    } else {
        let u = (t - 0.5) * 2.0;
        (255.0 - 55.0 * u, 220.0 * (1.0 - u), 0.0)
    };
    format!("#{:02x}{:02x}{:02x}", r as u8, g as u8, b as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_colors_cycle() {
        assert_eq!(wire_color(0), wire_color(8));
        assert_ne!(wire_color(0), wire_color(1));
    }

    #[test]
    fn heat_endpoints() {
        assert_eq!(heat_color(0.0), "#ffffff");
        assert_eq!(heat_color(1.0), "#c80000");
        assert_eq!(heat_color(-1.0), heat_color(0.0));
        assert_eq!(heat_color(2.0), heat_color(1.0));
    }

    #[test]
    fn heat_is_monotone_in_redness() {
        // Green channel decreases as severity grows.
        let g = |t: f64| u8::from_str_radix(&heat_color(t)[3..5], 16).unwrap();
        assert!(g(0.0) >= g(0.3));
        assert!(g(0.3) >= g(0.7));
        assert!(g(0.7) >= g(1.0));
    }
}
