//! Wire-density maps: the paper's congestion metric.

use std::fmt;

use copack_geom::{Assignment, Quadrant, RowIdx};
use serde::{Deserialize, Serialize};

use crate::{line_crossings, via_plan, RouteError};

/// How crossing wires are attributed to segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DensityModel {
    /// Wires cross at their straight-flyline x (clamped into the
    /// planarity-forced span); segments are delimited by **all** via sites,
    /// occupied or not ("between assigned and unassigned vias", paper
    /// Fig. 13). This is the model that reproduces the paper's Fig. 5
    /// numbers and the default.
    #[default]
    Geometric,
    /// Wires are attributed purely by order to the span between the two
    /// occupied (terminating) vias bracketing them; unoccupied sites do not
    /// subdivide. An intentionally coarser ablation model.
    OrderOnly,
}

impl fmt::Display for DensityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Geometric => f.write_str("geometric"),
            Self::OrderOnly => f.write_str("order-only"),
        }
    }
}

/// Per-line wire density.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowDensity {
    /// The ball row whose horizontal line this is.
    pub row: RowIdx,
    /// Segment boundaries (x-coordinates, increasing). Under
    /// [`DensityModel::Geometric`] these are the line's via sites; under
    /// [`DensityModel::OrderOnly`] the occupied vias only.
    pub boundaries: Vec<f64>,
    /// Wire count per segment; `counts.len() == boundaries.len() + 1`
    /// (the outermost segments are unbounded).
    pub counts: Vec<u32>,
}

impl RowDensity {
    /// Maximum segment density on this line.
    #[must_use]
    pub fn max(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Maximum density over the **interior** segments only — the ones
    /// bounded by two via sites, the paper's literal "wire count between
    /// two continuous vias". Wires crossing outside the line's via span
    /// (the flank regions along the quadrant cut-lines, whose congestion
    /// the paper explicitly ignores) are excluded.
    #[must_use]
    pub fn max_interior(&self) -> u32 {
        if self.counts.len() < 3 {
            return 0;
        }
        self.counts[1..self.counts.len() - 1]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Wire-density map of a whole quadrant, lines ordered top-down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityMap {
    /// Per-line densities, highest line first.
    pub rows: Vec<RowDensity>,
}

impl DensityMap {
    /// The paper's "maximum density": the highest segment count anywhere.
    #[must_use]
    pub fn max_density(&self) -> u32 {
        self.rows.iter().map(RowDensity::max).max().unwrap_or(0)
    }

    /// The paper's Table 2 metric: maximum density over interior segments
    /// (bounded by two via sites) anywhere; see
    /// [`RowDensity::max_interior`].
    #[must_use]
    pub fn max_density_interior(&self) -> u32 {
        self.rows
            .iter()
            .map(RowDensity::max_interior)
            .max()
            .unwrap_or(0)
    }

    /// Row achieving the maximum density (highest such line if tied).
    #[must_use]
    pub fn max_density_row(&self) -> Option<RowIdx> {
        let max = self.max_density();
        self.rows.iter().find(|r| r.max() == max).map(|r| r.row)
    }

    /// Density of a specific line.
    #[must_use]
    pub fn row(&self, row: RowIdx) -> Option<&RowDensity> {
        self.rows.iter().find(|r| r.row == row)
    }
}

/// Computes the wire-density map of `assignment` on `quadrant`.
///
/// # Errors
///
/// Propagates legality errors from the crossing model
/// ([`RouteError::NonMonotonic`], [`RouteError::Unplaced`]).
pub fn density_map(
    quadrant: &Quadrant,
    assignment: &Assignment,
    model: DensityModel,
) -> Result<DensityMap, RouteError> {
    density_map_with_plan(quadrant, assignment, model, &via_plan(quadrant))
}

/// [`density_map`] with telemetry: records one
/// [`copack_obs::Event::DensityEvaluated`] carrying the map's maximum
/// density and line count. A disabled recorder costs nothing.
///
/// # Errors
///
/// As [`density_map`].
pub fn density_map_traced(
    quadrant: &Quadrant,
    assignment: &Assignment,
    model: DensityModel,
    recorder: &mut dyn copack_obs::Recorder,
) -> Result<DensityMap, RouteError> {
    let map = density_map(quadrant, assignment, model)?;
    if recorder.enabled() {
        recorder.record(&copack_obs::Event::DensityEvaluated {
            max_density: map.max_density(),
            lines: map.rows.len() as u32,
        });
    }
    Ok(map)
}

/// [`density_map`] under an explicit via plan (see
/// [`crate::via_plan_with`]).
///
/// # Errors
///
/// As [`density_map`].
pub fn density_map_with_plan(
    quadrant: &Quadrant,
    assignment: &Assignment,
    model: DensityModel,
    plan: &crate::ViaPlan,
) -> Result<DensityMap, RouteError> {
    let lines = line_crossings(quadrant, assignment, plan)?;
    let mut rows = Vec::with_capacity(lines.len());
    for line in &lines {
        let boundaries: Vec<f64> = match model {
            DensityModel::Geometric => line.site_xs.clone(),
            DensityModel::OrderOnly => line.terminating.iter().map(|&(_, vx)| vx).collect(),
        };
        let mut counts = vec![0u32; boundaries.len() + 1];
        for c in &line.crossings {
            let x = match model {
                DensityModel::Geometric => c.x,
                // Attribute by span: the wire sits just right of its span's
                // lower boundary (an occupied via or the left extent).
                DensityModel::OrderOnly => c.span.0,
            };
            let seg = boundaries.partition_point(|&b| b < x);
            // Under OrderOnly, a wire whose span starts at a via belongs to
            // the segment *right* of that via; `partition_point` with the
            // strict `<` already lands there because x equals the boundary.
            counts[seg] += 1;
        }
        rows.push(RowDensity {
            row: line.row,
            boundaries,
            counts,
        });
    }
    Ok(DensityMap { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{Assignment, Quadrant};

    fn fig5() -> Quadrant {
        // Figure-style geometry: fingers span the same width as the ball
        // grid, as drawn in the paper's Fig. 5 (12 fingers over 5 balls).
        let geometry = copack_geom::QuadrantGeometry {
            ball_pitch: 1.0,
            finger_pitch: 0.5,
            finger_width: 0.3,
            finger_height: 0.4,
            via_diameter: 0.1,
            ball_diameter: 0.2,
        };
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .geometry(geometry)
            .build()
            .unwrap()
    }

    #[test]
    fn fig5a_random_order_has_max_density_4() {
        // Paper Fig. 5(A): "the maximum density is 4".
        let q = fig5();
        let a = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let d = density_map(&q, &a, DensityModel::Geometric).unwrap();
        assert_eq!(d.max_density(), 4);
    }

    #[test]
    fn fig5b_dfa_order_has_max_density_2() {
        // Paper Fig. 5(B): "the maximum density is 2".
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let d = density_map(&q, &a, DensityModel::Geometric).unwrap();
        assert_eq!(d.max_density(), 2);
    }

    #[test]
    fn fig10_ifa_order_has_max_density_2() {
        // Paper Fig. 10(B): "The maximum density in the routing result is 2".
        let q = fig5();
        let a = Assignment::from_order([10u32, 1, 11, 2, 3, 6, 4, 5, 9, 7, 8, 0]);
        let d = density_map(&q, &a, DensityModel::Geometric).unwrap();
        assert_eq!(d.max_density(), 2);
    }

    #[test]
    fn max_density_row_is_the_top_line() {
        // Monotonic routing concentrates wires on the highest line
        // (paper §3.2 exploits exactly this).
        let q = fig5();
        let a = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let d = density_map(&q, &a, DensityModel::Geometric).unwrap();
        assert_eq!(d.max_density_row().unwrap().get(), 3);
    }

    #[test]
    fn counts_cover_all_crossing_wires() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        for model in [DensityModel::Geometric, DensityModel::OrderOnly] {
            let d = density_map(&q, &a, model).unwrap();
            let totals: Vec<u32> = d.rows.iter().map(|r| r.counts.iter().sum()).collect();
            assert_eq!(totals, vec![9, 5, 0], "model {model}");
        }
    }

    #[test]
    fn order_only_is_never_below_geometric() {
        // Coarser segments can only merge wires together.
        let q = fig5();
        for order in [
            vec![10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0],
            vec![10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0],
        ] {
            let a = Assignment::from_order(order);
            let geo = density_map(&q, &a, DensityModel::Geometric).unwrap();
            let ord = density_map(&q, &a, DensityModel::OrderOnly).unwrap();
            assert!(ord.max_density() >= geo.max_density());
        }
    }

    #[test]
    fn bottom_line_has_no_crossings() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let d = density_map(&q, &a, DensityModel::Geometric).unwrap();
        let bottom = d.row(RowIdx::new(1)).unwrap();
        assert_eq!(bottom.max(), 0);
    }

    #[test]
    fn empty_map_reports_zero() {
        let d = DensityMap { rows: vec![] };
        assert_eq!(d.max_density(), 0);
        assert!(d.max_density_row().is_none());
    }

    #[test]
    fn boundaries_and_counts_are_consistent() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        for model in [DensityModel::Geometric, DensityModel::OrderOnly] {
            let d = density_map(&q, &a, model).unwrap();
            for r in &d.rows {
                assert_eq!(r.counts.len(), r.boundaries.len() + 1);
            }
        }
    }

    #[test]
    fn display_names_models() {
        assert_eq!(DensityModel::Geometric.to_string(), "geometric");
        assert_eq!(DensityModel::OrderOnly.to_string(), "order-only");
    }
}
