//! One-call routing analysis combining legality, density and wirelength.

use std::fmt;

use copack_geom::{Assignment, Quadrant};
use serde::{Deserialize, Serialize};

use crate::{check_monotonic, density_map, total_wirelength, DensityModel, RouteError};

/// Summary of a routed (analysed) assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingReport {
    /// The paper's "maximum density": worst segment wire count.
    pub max_density: u32,
    /// Maximum density over interior segments only (between two via
    /// sites), excluding the cut-line flank regions the paper ignores.
    pub max_density_interior: u32,
    /// 1-based row of the worst line.
    pub max_density_row: u32,
    /// Maximum density per line, highest line first, as `(row, max)`.
    pub per_row_max: Vec<(u32, u32)>,
    /// Total flyline wirelength (µm).
    pub total_wirelength: f64,
    /// Number of routed nets.
    pub nets: usize,
    /// Density model used.
    pub model: DensityModel,
}

impl fmt::Display for RoutingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nets: max density {} (row y={}), wirelength {:.3} um [{}]",
            self.nets, self.max_density, self.max_density_row, self.total_wirelength, self.model
        )
    }
}

/// Analyses `assignment` on `quadrant`: legality check, density map and
/// flyline wirelength.
///
/// # Errors
///
/// * [`RouteError::NonMonotonic`] if the assignment cannot be routed
///   monotonically.
/// * [`RouteError::Unplaced`] if a net is missing a slot.
pub fn analyze(
    quadrant: &Quadrant,
    assignment: &Assignment,
    model: DensityModel,
) -> Result<RoutingReport, RouteError> {
    check_monotonic(quadrant, assignment)?;
    let density = density_map(quadrant, assignment, model)?;
    let wirelength = total_wirelength(quadrant, assignment)?;
    Ok(RoutingReport {
        max_density: density.max_density(),
        max_density_interior: density.max_density_interior(),
        max_density_row: density.max_density_row().map_or(0, |r| r.get()),
        per_row_max: density
            .rows
            .iter()
            .map(|r| (r.row.get(), r.max()))
            .collect(),
        total_wirelength: wirelength,
        nets: assignment.net_count(),
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{Assignment, Quadrant};

    fn fig5() -> Quadrant {
        // Figure-style geometry: fingers span the same width as the ball
        // grid, as drawn in the paper's Fig. 5 (12 fingers over 5 balls).
        let geometry = copack_geom::QuadrantGeometry {
            ball_pitch: 1.0,
            finger_pitch: 0.5,
            finger_width: 0.3,
            finger_height: 0.4,
            via_diameter: 0.1,
            ball_diameter: 0.2,
        };
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .geometry(geometry)
            .build()
            .unwrap()
    }

    #[test]
    fn report_matches_component_analyses() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let r = analyze(&q, &a, DensityModel::Geometric).unwrap();
        assert_eq!(r.max_density, 2);
        assert_eq!(r.nets, 12);
        assert_eq!(r.per_row_max.len(), 3);
        let wl = total_wirelength(&q, &a).unwrap();
        assert!((r.total_wirelength - wl).abs() < 1e-12);
    }

    #[test]
    fn report_rejects_illegal_assignments() {
        let q = fig5();
        let bad = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        assert!(analyze(&q, &bad, DensityModel::Geometric).is_err());
    }

    #[test]
    fn display_mentions_key_numbers() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let r = analyze(&q, &a, DensityModel::Geometric).unwrap();
        let s = r.to_string();
        assert!(s.contains("12 nets") && s.contains("max density 2"));
    }
}
