//! Fast congestion estimation from the highest line only.
//!
//! The paper's exchange step (§3.2) observes that under monotonic routing
//! "the density of the high horizontal line is higher than the density of
//! the low horizontal line", and therefore controls congestion by watching
//! **only the highest line**: the top-row nets divide the finger order into
//! `x + 1` sections, and the per-section net counts approximate the
//! top-line segment loads without routing anything. This module implements
//! that estimator; `copack-core` builds the ID metric (Eq. 2) on top of it.

use copack_geom::{Assignment, NetId, Quadrant};
use serde::{Deserialize, Serialize};

use crate::RouteError;

/// Result of the top-line congestion estimate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CongestionEstimate {
    /// Net count of each section `S_0 .. S_x` of the finger order, where
    /// the `x` top-row nets are the section delimiters (paper §3.2's
    /// "interval numbers" `I_c`).
    pub sections: Vec<u32>,
    /// Largest section count — the congestion hot spot.
    pub max_section: u32,
}

impl CongestionEstimate {
    /// Number of sections (top-row net count + 1).
    #[must_use]
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }
}

/// Estimates the package congestion of `assignment` by counting nets in the
/// sections delimited by the top-row nets, without running the router.
///
/// # Errors
///
/// [`RouteError::Unplaced`] if a top-row net has no finger slot.
pub fn estimate_congestion(
    quadrant: &Quadrant,
    assignment: &Assignment,
) -> Result<CongestionEstimate, RouteError> {
    let top: &[NetId] = quadrant.row(quadrant.top_row());
    // Slot indices (0-based) of the section delimiters, in finger order.
    let mut delim: Vec<usize> = top
        .iter()
        .map(|&n| {
            assignment
                .position_of(n)
                .map(|f| f.zero_based())
                .ok_or(RouteError::Unplaced { net: n })
        })
        .collect::<Result<_, _>>()?;
    delim.sort_unstable();

    let mut sections = vec![0u32; delim.len() + 1];
    for (finger, net) in assignment.iter() {
        if top.contains(&net) {
            continue;
        }
        let i = finger.zero_based();
        let s = delim.partition_point(|&d| d < i);
        sections[s] += 1;
    }
    let max_section = sections.iter().copied().max().unwrap_or(0);
    Ok(CongestionEstimate {
        sections,
        max_section,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{Assignment, Quadrant};

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    #[test]
    fn random_order_concentrates_sections() {
        // Fig. 5(A): 11,6,9 sit at F5..F7; sections are 4|0|0|5.
        let q = fig5();
        let a = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let e = estimate_congestion(&q, &a).unwrap();
        assert_eq!(e.sections, vec![4, 0, 0, 5]);
        assert_eq!(e.max_section, 5);
        assert_eq!(e.section_count(), 4);
    }

    #[test]
    fn dfa_order_balances_sections() {
        // Fig. 5(B): 11@F2, 6@F5, 9@F8 → sections 1|2|2|4.
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let e = estimate_congestion(&q, &a).unwrap();
        assert_eq!(e.sections, vec![1, 2, 2, 4]);
        assert_eq!(e.max_section, 4);
    }

    #[test]
    fn estimate_tracks_real_density_ordering() {
        // The estimator must rank the random order worse than DFA, matching
        // the full density map.
        let q = fig5();
        let random = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let dfa = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let e_random = estimate_congestion(&q, &random).unwrap();
        let e_dfa = estimate_congestion(&q, &dfa).unwrap();
        assert!(e_dfa.max_section <= e_random.max_section);
    }

    #[test]
    fn sections_sum_to_non_top_nets() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let e = estimate_congestion(&q, &a).unwrap();
        let sum: u32 = e.sections.iter().sum();
        assert_eq!(sum as usize, q.net_count() - q.row(q.top_row()).len());
    }

    #[test]
    fn unplaced_top_net_is_an_error() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 1, 2]);
        assert!(matches!(
            estimate_congestion(&q, &a),
            Err(RouteError::Unplaced { .. })
        ));
    }
}
