//! Error type for routing analysis.

use std::error::Error;
use std::fmt;

use copack_geom::{GeomError, NetId};

/// Errors raised by routing and density analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The assignment violates the monotonic via rule: within one ball row,
    /// two nets appear on the fingers in the opposite order to their balls.
    NonMonotonic {
        /// 1-based row where the violation was found.
        row: u32,
        /// Net whose ball is further left but finger further right.
        left_ball: NetId,
        /// Net whose ball is further right but finger further left.
        right_ball: NetId,
    },
    /// A net of the quadrant is missing from the assignment.
    Unplaced {
        /// The unplaced net.
        net: NetId,
    },
    /// An underlying model error.
    Geom(GeomError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonMonotonic {
                row,
                left_ball,
                right_ball,
            } => write!(
                f,
                "assignment breaks the monotonic rule on row y={row}: \
                 {left_ball} sits left of {right_ball} on the balls but right of it on the fingers"
            ),
            Self::Unplaced { net } => write!(f, "net {net} has no finger slot"),
            Self::Geom(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for RouteError {
    fn from(e: GeomError) -> Self {
        Self::Geom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = RouteError::NonMonotonic {
            row: 2,
            left_ball: NetId::new(3),
            right_ball: NetId::new(5),
        };
        let s = e.to_string();
        assert!(s.contains("y=2") && s.contains("N3") && s.contains("N5"));
        assert!(!RouteError::Unplaced { net: NetId::new(1) }
            .to_string()
            .is_empty());
    }

    #[test]
    fn geom_errors_convert_and_chain() {
        let e: RouteError = GeomError::NoRows.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<RouteError>();
    }
}
