//! The planar crossing model: where each wire crosses each horizontal line.

use copack_geom::{Assignment, FingerIdx, NetId, Quadrant, RowIdx};

use crate::{check_monotonic, RouteError, ViaPlan};

/// One wire crossing a horizontal grid line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// The crossing net.
    pub net: NetId,
    /// The net's finger slot.
    pub finger: FingerIdx,
    /// x-coordinate where the wire crosses the line (geometric model:
    /// straight flyline clamped into the planarity-forced span).
    pub x: f64,
    /// Open interval the wire is forced into by the terminating vias that
    /// bracket it in finger order.
    pub span: (f64, f64),
}

/// All wires interacting with one horizontal grid line.
#[derive(Debug, Clone, PartialEq)]
pub struct LineCrossings {
    /// The ball row whose line this is.
    pub row: RowIdx,
    /// y-coordinate of the line.
    pub line_y: f64,
    /// x-coordinates of the line's via sites (balls + 1, increasing).
    pub site_xs: Vec<f64>,
    /// Nets terminating at this line (at their via), with via x, in finger
    /// (= ball) order.
    pub terminating: Vec<(NetId, f64)>,
    /// Nets crossing this line on their way to a lower row, in finger order.
    pub crossings: Vec<Crossing>,
}

impl LineCrossings {
    /// Total wires touching the line (terminating + crossing).
    #[must_use]
    pub fn wire_count(&self) -> usize {
        self.terminating.len() + self.crossings.len()
    }
}

/// Relative clamping margin, as a fraction of the ball pitch. Keeps clamped
/// wires strictly inside their span so segment attribution is unambiguous.
const EPS_FRACTION: f64 = 1e-3;

/// Computes the crossings of every horizontal line of the quadrant, highest
/// line first.
///
/// The assignment must be complete and monotonic-legal.
///
/// # Errors
///
/// * [`RouteError::NonMonotonic`] / [`RouteError::Unplaced`] from the
///   legality pre-check.
pub fn line_crossings(
    quadrant: &Quadrant,
    assignment: &Assignment,
    plan: &ViaPlan,
) -> Result<Vec<LineCrossings>, RouteError> {
    check_monotonic(quadrant, assignment)?;

    // Horizontal extent used when a wire has no bracketing via on one side.
    let pitch = quadrant.geometry().ball_pitch;
    let eps = pitch * EPS_FRACTION;
    let mut half_w: f64 = 0.0;
    for (row, nets) in quadrant.rows_bottom_up() {
        let m = nets.len() as u32;
        half_w = half_w.max(quadrant.via_site_x(row, m + 1).abs());
        half_w = half_w.max(quadrant.via_site_x(row, 1).abs());
    }
    let alpha = quadrant.finger_count() as u32;
    half_w = half_w.max(quadrant.finger_center(FingerIdx::new(alpha)).x.abs());
    let bound = half_w + pitch;

    let finger_y = quadrant.finger_line_y();
    let mut out = Vec::with_capacity(quadrant.row_count());
    for (row, nets) in quadrant.rows_top_down() {
        let line_y = quadrant.line_y(row);
        let m = nets.len() as u32;
        let site_xs: Vec<f64> = (1..=m + 1).map(|s| quadrant.via_site_x(row, s)).collect();

        // Terminating nets, in ball order (= finger order by legality).
        let terminating: Vec<(NetId, f64)> = nets
            .iter()
            .map(|&n| {
                let via = plan.via(n)?;
                Ok((n, via.pos.x))
            })
            .collect::<Result<_, RouteError>>()?;
        let term_pos: Vec<(u32, f64)> = terminating
            .iter()
            .map(|&(n, vx)| {
                let p = assignment
                    .position_of(n)
                    .ok_or(RouteError::Unplaced { net: n })?;
                Ok((p.get(), vx))
            })
            .collect::<Result<_, RouteError>>()?;

        // Crossing nets: via strictly below this line, in finger order.
        let mut crossings = Vec::new();
        for (finger, net) in assignment.iter() {
            let via = plan.via(net)?;
            if via.row >= row {
                continue;
            }
            let fx = quadrant.finger_center(finger).x;
            let (vx, vy) = (via.pos.x, via.pos.y);
            // Straight flyline finger → via, evaluated at this line.
            let t = (finger_y - line_y) / (finger_y - vy);
            let ideal = fx + (vx - fx) * t;
            // Forced span: between the terminating vias bracketing the
            // finger position.
            let p = finger.get();
            let lo = term_pos
                .iter()
                .rev()
                .find(|&&(tp, _)| tp < p)
                .map_or(-bound, |&(_, vx)| vx);
            let hi = term_pos
                .iter()
                .find(|&&(tp, _)| tp > p)
                .map_or(bound, |&(_, vx)| vx);
            let x = ideal.clamp(lo + eps, hi - eps);
            crossings.push(Crossing {
                net,
                finger,
                x,
                span: (lo, hi),
            });
        }

        out.push(LineCrossings {
            row,
            line_y,
            site_xs,
            terminating,
            crossings,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::via_plan;
    use copack_geom::{Assignment, Quadrant};

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    fn dfa_order() -> Assignment {
        Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0])
    }

    #[test]
    fn lines_come_top_down_with_correct_populations() {
        let q = fig5();
        let plan = via_plan(&q);
        let lines = line_crossings(&q, &dfa_order(), &plan).unwrap();
        assert_eq!(lines.len(), 3);
        // Top line: 3 terminate, 9 cross.
        assert_eq!(lines[0].row.get(), 3);
        assert_eq!(lines[0].terminating.len(), 3);
        assert_eq!(lines[0].crossings.len(), 9);
        // Middle line: 4 terminate, 5 cross.
        assert_eq!(lines[1].terminating.len(), 4);
        assert_eq!(lines[1].crossings.len(), 5);
        // Bottom line: 5 terminate, none cross.
        assert_eq!(lines[2].terminating.len(), 5);
        assert_eq!(lines[2].crossings.len(), 0);
    }

    #[test]
    fn every_crossing_is_inside_its_span() {
        let q = fig5();
        let plan = via_plan(&q);
        for a in [
            dfa_order(),
            Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]),
        ] {
            for line in line_crossings(&q, &a, &plan).unwrap() {
                for c in &line.crossings {
                    assert!(c.span.0 < c.x && c.x < c.span.1, "{c:?}");
                }
            }
        }
    }

    #[test]
    fn crossing_order_matches_finger_order() {
        // Planarity: crossings are produced in finger order and their spans
        // never regress (span lows are non-decreasing).
        let q = fig5();
        let plan = via_plan(&q);
        for line in line_crossings(&q, &dfa_order(), &plan).unwrap() {
            for w in line.crossings.windows(2) {
                assert!(w[0].finger < w[1].finger);
                assert!(w[0].span.0 <= w[1].span.0);
                assert!(w[0].span.1 <= w[1].span.1);
            }
        }
    }

    #[test]
    fn illegal_assignment_is_rejected() {
        let q = fig5();
        let plan = via_plan(&q);
        let bad = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        assert!(matches!(
            line_crossings(&q, &bad, &plan),
            Err(RouteError::NonMonotonic { .. })
        ));
    }

    #[test]
    fn site_xs_are_strictly_increasing() {
        let q = fig5();
        let plan = via_plan(&q);
        for line in line_crossings(&q, &dfa_order(), &plan).unwrap() {
            assert_eq!(line.site_xs.len(), line.terminating.len() + 1);
            for w in line.site_xs.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn wire_count_sums_terminating_and_crossing() {
        let q = fig5();
        let plan = via_plan(&q);
        let lines = line_crossings(&q, &dfa_order(), &plan).unwrap();
        assert_eq!(lines[0].wire_count(), 12);
        assert_eq!(lines[1].wire_count(), 9);
        assert_eq!(lines[2].wire_count(), 5);
    }
}
