//! Optimal crossing balancing: the router's freedom, quantified.
//!
//! The flyline model ([`crate::DensityModel::Geometric`]) charges each wire
//! to the segment its straight route would use — the *naive* routing. The
//! actual router of Kubo–Takahashi iteratively improves crossings to spread
//! congestion. Within one horizontal line that freedom is exactly: choose
//! one segment per wire, inside the wire's planarity-forced span, with the
//! chosen segment indices non-decreasing in finger order (wires cannot
//! cross), minimising the maximum per-segment load.
//!
//! [`balance_line`] solves that optimally (binary search on the load with
//! a greedy left-most feasibility check, which is exact for monotone
//! interval constraints), giving the best congestion *any* router could
//! reach for a fixed assignment — a lower bound that separates "the
//! assignment is bad" from "the route realisation is bad".

use copack_geom::{Assignment, Point, Quadrant};

use crate::{line_crossings, via_plan, DensityMap, NetPath, RouteError, RowDensity};

/// Assigns each wire a segment index and returns `(choices, max_load)`.
///
/// `spans[i] = (s_lo, s_hi)` is the inclusive segment-index range wire `i`
/// may use; wires are in planar (finger) order, so choices must be
/// non-decreasing. `segments` is the number of segments on the line.
///
/// # Panics
///
/// Panics if a span is empty (`s_lo > s_hi`) or out of range — the spans
/// produced by the crossing model never are.
#[must_use]
pub fn balance_line(spans: &[(usize, usize)], segments: usize) -> (Vec<usize>, u32) {
    if spans.is_empty() {
        return (Vec::new(), 0);
    }
    for &(lo, hi) in spans {
        assert!(lo <= hi && hi < segments, "invalid span ({lo}, {hi})");
    }
    // Feasibility for a load cap: greedy left-most placement.
    let feasible = |cap: u32| -> Option<Vec<usize>> {
        let mut counts = vec![0u32; segments];
        let mut prev = 0usize;
        let mut choice = Vec::with_capacity(spans.len());
        for &(lo, hi) in spans {
            let mut s = prev.max(lo);
            while s <= hi && counts[s] >= cap {
                s += 1;
            }
            if s > hi {
                return None;
            }
            counts[s] += 1;
            choice.push(s);
            prev = s;
        }
        Some(choice)
    };
    let (mut lo_cap, mut hi_cap) = (1u32, spans.len() as u32);
    let mut best = feasible(hi_cap).expect("cap = wire count is always feasible");
    while lo_cap < hi_cap {
        let mid = lo_cap + (hi_cap - lo_cap) / 2;
        match feasible(mid) {
            Some(choice) => {
                best = choice;
                hi_cap = mid;
            }
            None => lo_cap = mid + 1,
        }
    }
    (best, lo_cap)
}

/// The best-achievable density map for `assignment`: every line's crossings
/// balanced optimally within their planarity-forced spans.
///
/// # Errors
///
/// Propagates legality errors from the crossing model.
pub fn balanced_density_map(
    quadrant: &Quadrant,
    assignment: &Assignment,
) -> Result<DensityMap, RouteError> {
    let plan = via_plan(quadrant);
    let lines = line_crossings(quadrant, assignment, &plan)?;
    let mut rows = Vec::with_capacity(lines.len());
    for line in &lines {
        let boundaries = line.site_xs.clone();
        let segments = boundaries.len() + 1;
        let spans: Vec<(usize, usize)> = line
            .crossings
            .iter()
            .map(|c| {
                let s_lo = boundaries.partition_point(|&b| b <= c.span.0);
                let s_hi = boundaries.partition_point(|&b| b < c.span.1);
                (s_lo, s_hi.min(segments - 1))
            })
            .collect();
        let (choices, _) = balance_line(&spans, segments);
        let mut counts = vec![0u32; segments];
        for s in choices {
            counts[s] += 1;
        }
        rows.push(RowDensity {
            row: line.row,
            boundaries,
            counts,
        });
    }
    Ok(DensityMap { rows })
}

/// Realises the balanced routing as per-net polylines: like
/// [`crate::extract_paths`], but each crossing sits in its *balanced*
/// segment (wires sharing a segment are spread evenly inside it, in order).
///
/// # Errors
///
/// Propagates legality errors from the crossing model.
pub fn balanced_paths(
    quadrant: &Quadrant,
    assignment: &Assignment,
) -> Result<Vec<NetPath>, RouteError> {
    let plan = via_plan(quadrant);
    let lines = line_crossings(quadrant, assignment, &plan)?;
    let pitch = quadrant.geometry().ball_pitch;

    // Balanced crossing x per (line, net).
    let mut crossing_x: std::collections::BTreeMap<(u32, copack_geom::NetId), f64> =
        std::collections::BTreeMap::new();
    for line in &lines {
        let boundaries = &line.site_xs;
        let segments = boundaries.len() + 1;
        let spans: Vec<(usize, usize)> = line
            .crossings
            .iter()
            .map(|c| {
                let s_lo = boundaries.partition_point(|&b| b <= c.span.0);
                let s_hi = boundaries.partition_point(|&b| b < c.span.1);
                (s_lo, s_hi.min(segments - 1))
            })
            .collect();
        let (choices, _) = balance_line(&spans, segments);
        // Spread same-segment wires evenly inside their segment, keeping
        // order (choices are non-decreasing, so grouping preserves it).
        let mut i = 0;
        while i < choices.len() {
            let s = choices[i];
            let mut j = i;
            while j < choices.len() && choices[j] == s {
                j += 1;
            }
            let (lo, hi) = segment_extent(boundaries, s, pitch);
            let k = (j - i) as f64;
            for (slot, c) in line.crossings[i..j].iter().enumerate() {
                let t = (slot as f64 + 1.0) / (k + 1.0);
                crossing_x.insert((line.row.get(), c.net), lo + (hi - lo) * t);
            }
            i = j;
        }
    }

    let mut paths = Vec::with_capacity(assignment.net_count());
    for (finger, net) in assignment.iter() {
        let via = plan.via(net)?;
        let ball = quadrant
            .ball_of(net)
            .ok_or(copack_geom::GeomError::UnknownNet { net })?;
        let mut layer1 = vec![quadrant.finger_center(finger)];
        for line in &lines {
            if line.row <= via.row {
                break;
            }
            if let Some(&x) = crossing_x.get(&(line.row.get(), net)) {
                layer1.push(Point::new(x, line.line_y));
            }
        }
        layer1.push(via.pos);
        paths.push(NetPath {
            net,
            layer1,
            via: via.pos,
            ball: quadrant.ball_center(ball.row, ball.col),
        });
    }
    Ok(paths)
}

/// Finite extent of segment `s` (the flank segments get one pitch of room).
fn segment_extent(boundaries: &[f64], s: usize, pitch: f64) -> (f64, f64) {
    let lo = if s == 0 {
        boundaries.first().copied().unwrap_or(0.0) - pitch
    } else {
        boundaries[s - 1]
    };
    let hi = if s >= boundaries.len() {
        boundaries.last().copied().unwrap_or(0.0) + pitch
    } else {
        boundaries[s]
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{density_map, DensityModel};
    use copack_geom::{Assignment, Quadrant, QuadrantGeometry};

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .geometry(QuadrantGeometry {
                ball_pitch: 1.0,
                finger_pitch: 0.5,
                finger_width: 0.3,
                finger_height: 0.4,
                via_diameter: 0.1,
                ball_diameter: 0.2,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn balance_spreads_free_wires_evenly() {
        // 6 wires, all free over 3 segments: perfect 2/2/2.
        let spans = vec![(0, 2); 6];
        let (choices, max) = balance_line(&spans, 3);
        assert_eq!(max, 2);
        let mut counts = [0; 3];
        for c in choices {
            counts[c] += 1;
        }
        assert_eq!(counts, [2, 2, 2]);
    }

    #[test]
    fn balance_respects_monotone_order() {
        let spans = vec![(0, 1), (0, 2), (1, 2), (2, 2)];
        let (choices, _) = balance_line(&spans, 3);
        for w in choices.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn forced_pile_up_is_reported() {
        // 4 wires all pinned to segment 1: max load must be 4.
        let spans = vec![(1, 1); 4];
        let (_, max) = balance_line(&spans, 3);
        assert_eq!(max, 4);
    }

    #[test]
    fn empty_line_is_trivial() {
        let (choices, max) = balance_line(&[], 5);
        assert!(choices.is_empty());
        assert_eq!(max, 0);
    }

    #[test]
    #[should_panic(expected = "invalid span")]
    fn bad_spans_are_rejected() {
        let _ = balance_line(&[(2, 1)], 3);
    }

    #[test]
    fn balanced_never_exceeds_flyline() {
        let q = fig5();
        for order in [
            vec![10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0], // Fig. 5(A)
            vec![10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0], // Fig. 12 DFA
            vec![10u32, 1, 11, 2, 3, 6, 4, 5, 9, 7, 8, 0], // Fig. 10 IFA
        ] {
            let a = Assignment::from_order(order);
            let naive = density_map(&q, &a, DensityModel::Geometric).unwrap();
            let balanced = balanced_density_map(&q, &a).unwrap();
            assert!(balanced.max_density() <= naive.max_density());
            // Crossing counts are conserved per line.
            for (b, n) in balanced.rows.iter().zip(&naive.rows) {
                assert_eq!(b.counts.iter().sum::<u32>(), n.counts.iter().sum::<u32>());
            }
        }
    }

    #[test]
    fn balanced_paths_are_monotonic_and_ordered() {
        let q = fig5();
        for order in [
            vec![10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0],
            vec![10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0],
        ] {
            let a = Assignment::from_order(order);
            let paths = balanced_paths(&q, &a).unwrap();
            assert_eq!(paths.len(), 12);
            for p in &paths {
                assert!(p.is_monotonic(), "{:?}", p.net);
            }
            // Planarity: wire order per depth is preserved.
            let max_len = paths.iter().map(|p| p.layer1.len()).max().unwrap();
            for depth in 0..max_len - 1 {
                let mut present: Vec<(f64, f64)> = paths
                    .iter()
                    .filter(|p| p.layer1.len() > depth + 1)
                    .map(|p| (p.layer1[depth].x, p.layer1[depth + 1].x))
                    .collect();
                present.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for w in present.windows(2) {
                    assert!(w[0].1 <= w[1].1 + 1e-9, "crossing at depth {depth}");
                }
            }
        }
    }

    #[test]
    fn good_assignments_leave_little_to_balance() {
        // DFA's order is already near the balanced optimum on Fig. 5 —
        // the router cannot improve it further, unlike the random order.
        let q = fig5();
        let dfa = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let naive = density_map(&q, &dfa, DensityModel::Geometric).unwrap();
        let balanced = balanced_density_map(&q, &dfa).unwrap();
        assert_eq!(balanced.max_density(), naive.max_density());
    }
}
