//! Monotonic two-layer BGA package routing, density and wirelength analysis.
//!
//! This crate re-implements the routing substrate the paper builds on: the
//! iterative-improvement global router of Kubo–Takahashi (*"Global routing
//! by iterative improvements for two-layer ball grid array packages"*, IEEE
//! TCAD 2006, the paper's reference \[10\]), specialised to the rules the
//! finger/pad planning paper adopts:
//!
//! * each net uses **at most one via**, fixed at the bottom-left corner of
//!   its bump ball;
//! * routing is **monotonic**: a net's Layer-1 wire crosses every horizontal
//!   grid line between its finger and its via exactly once (no detours);
//! * an assignment is **legal** iff, for every ball row, the left-to-right
//!   ball order equals the left-to-right finger order of that row's nets.
//!
//! # Density model
//!
//! All Layer-1 wires share one layer, so they are planar: the left-to-right
//! order in which wires cross *any* horizontal line equals the finger order
//! restricted to the nets crossing it. A wire crossing a line is therefore
//! forced into the gap between the two **terminating vias** that bracket it
//! in finger order; inside that span the unoccupied via sites subdivide the
//! line into *segments*, and the wire takes the segment nearest its straight
//! flyline. Density of a segment is the number of wires in it; the paper's
//! "maximum density" is the maximum over all segments of all lines. See
//! `DESIGN.md` for the derivation and the validation against the paper's
//! Fig. 5 (random order → max density 4, DFA order → 2).
//!
//! # Example
//!
//! ```
//! use copack_geom::{Assignment, Quadrant};
//! use copack_route::{analyze, DensityModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Paper Fig. 5: three ball rows, twelve nets, drawn with fingers
//! // spanning the same width as the ball grid.
//! let geometry = copack_geom::QuadrantGeometry {
//!     ball_pitch: 1.0,
//!     finger_pitch: 0.5,
//!     finger_width: 0.3,
//!     finger_height: 0.4,
//!     via_diameter: 0.1,
//!     ball_diameter: 0.2,
//! };
//! let q = Quadrant::builder()
//!     .row([10u32, 2, 4, 7, 0])
//!     .row([1u32, 3, 5, 8])
//!     .row([11u32, 6, 9])
//!     .geometry(geometry)
//!     .build()?;
//!
//! // The paper's Fig. 5(B) finger order, produced by DFA.
//! let dfa = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
//! let report = analyze(&q, &dfa, DensityModel::Geometric)?;
//! assert_eq!(report.max_density, 2); // exactly the paper's number
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balance;
mod capacity;
mod crossing;
mod cutline;
mod density;
mod error;
mod estimator;
mod monotonic;
mod path;
mod range_cache;
mod report;
mod via_assign;
mod wirelength;

pub use balance::{balance_line, balanced_density_map, balanced_paths};
pub use capacity::{check_capacity, CapacityViolation};
pub use crossing::{line_crossings, Crossing, LineCrossings};
pub use cutline::{cutline_congestion, CutlineReport, FlankLoad};
pub use density::{
    density_map, density_map_traced, density_map_with_plan, DensityMap, DensityModel, RowDensity,
};
pub use error::RouteError;
pub use estimator::{estimate_congestion, CongestionEstimate};
pub use monotonic::{check_monotonic, exchange_range, is_monotonic};
pub use path::{extract_paths, NetPath};
pub use range_cache::RangeCache;
pub use report::{analyze, RoutingReport};
pub use via_assign::{via_plan, via_plan_with, ViaPlan, ViaRef, ViaRule};
pub use wirelength::{net_wirelength, total_wirelength};
