//! Wirelength estimation from direct flylines.

use copack_geom::{Assignment, NetId, Quadrant};

use crate::{via_plan, RouteError, ViaPlan};

/// Flyline wirelength of one net: finger → via on Layer 1 plus via → ball
/// on Layer 2 (Table 2's caption: "the wirelengths are calculated from the
/// direct flylines between pads/vias").
///
/// # Errors
///
/// [`RouteError::Unplaced`] if the net has no finger slot, or
/// [`RouteError::Geom`] if it is not in the quadrant.
pub fn net_wirelength(
    quadrant: &Quadrant,
    assignment: &Assignment,
    plan: &ViaPlan,
    net: NetId,
) -> Result<f64, RouteError> {
    let finger = assignment
        .position_of(net)
        .ok_or(RouteError::Unplaced { net })?;
    let via = plan.via(net)?;
    let ball = quadrant
        .ball_of(net)
        .ok_or(copack_geom::GeomError::UnknownNet { net })?;
    let fp = quadrant.finger_center(finger);
    let bp = quadrant.ball_center(ball.row, ball.col);
    Ok(fp.distance(via.pos) + via.pos.distance(bp))
}

/// Total flyline wirelength of the whole quadrant.
///
/// # Errors
///
/// Propagates the first per-net error.
pub fn total_wirelength(quadrant: &Quadrant, assignment: &Assignment) -> Result<f64, RouteError> {
    let plan = via_plan(quadrant);
    let mut total = 0.0;
    for net in quadrant.nets() {
        total += net_wirelength(quadrant, assignment, &plan, net.id)?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{Assignment, Quadrant};

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    #[test]
    fn wirelength_is_positive_and_additive() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let plan = via_plan(&q);
        let mut sum = 0.0;
        for net in q.nets() {
            let w = net_wirelength(&q, &a, &plan, net.id).unwrap();
            assert!(w > 0.0);
            sum += w;
        }
        let total = total_wirelength(&q, &a).unwrap();
        assert!((total - sum).abs() < 1e-9);
    }

    #[test]
    fn straighter_orders_are_shorter() {
        // The DFA order spreads nets towards their balls; the paper observes
        // its wirelength beats the clustered random order of Fig. 5(A).
        let q = fig5();
        let random = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let dfa = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let wl_random = total_wirelength(&q, &random).unwrap();
        let wl_dfa = total_wirelength(&q, &dfa).unwrap();
        assert!(wl_dfa < wl_random, "{wl_dfa} !< {wl_random}");
    }

    #[test]
    fn unplaced_net_is_an_error() {
        let q = fig5();
        let partial = Assignment::from_order([10u32, 11]);
        assert!(total_wirelength(&q, &partial).is_err());
    }

    #[test]
    fn wirelength_lower_bound_is_flyline_distance() {
        // finger→via→ball is at least the straight finger→ball distance.
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let plan = via_plan(&q);
        for net in q.nets() {
            let finger = a.position_of(net.id).unwrap();
            let ball = q.ball_of(net.id).unwrap();
            let direct = q
                .finger_center(finger)
                .distance(q.ball_center(ball.row, ball.col));
            let w = net_wirelength(&q, &a, &plan, net.id).unwrap();
            assert!(w + 1e-12 >= direct);
        }
    }
}
