//! Via assignment: one via per net, fixed at the bottom-left of its ball.

use std::collections::BTreeMap;

use copack_geom::{NetId, Point, Quadrant, RowIdx};
use serde::{Deserialize, Serialize};

use crate::RouteError;

/// Which corner of its bump ball a net's via occupies.
///
/// The paper fixes the bottom-**left** corner "without loss of
/// generality"; the bottom-right alternative is provided to test that
/// claim (ablation A5 in `EXPERIMENTS.md`). Either choice keeps the
/// monotonic-order rule intact (via order along a row equals ball order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ViaRule {
    /// Via at the ball's bottom-left corner (the paper's rule).
    #[default]
    BottomLeft,
    /// Via at the ball's bottom-right corner.
    BottomRight,
}

/// The via chosen for one net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaRef {
    /// Net owning the via.
    pub net: NetId,
    /// Ball row whose line the via sits on.
    pub row: RowIdx,
    /// Via site index on that line (1-based; site `s` is the bottom-left
    /// corner of ball `s`).
    pub site: u32,
    /// Physical via location.
    pub pos: Point,
}

/// The via plan of a quadrant: every net's via, fixed per the paper's rule
/// ("the connected via is fixed at the bottom-left corner of the bump ball",
/// §3.1, following Kubo–Takahashi).
///
/// The plan depends only on the quadrant, not on the finger assignment, so
/// it can be computed once and reused across candidate assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaPlan {
    vias: BTreeMap<NetId, ViaRef>,
}

impl ViaPlan {
    /// Via of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Unplaced`] if the net is not in the plan.
    pub fn via(&self, net: NetId) -> Result<ViaRef, RouteError> {
        self.vias
            .get(&net)
            .copied()
            .ok_or(RouteError::Unplaced { net })
    }

    /// Iterates all vias in net-id order.
    pub fn iter(&self) -> impl Iterator<Item = &ViaRef> {
        self.vias.values()
    }

    /// Number of vias (= number of nets).
    #[must_use]
    pub fn len(&self) -> usize {
        self.vias.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vias.is_empty()
    }
}

/// Computes the via plan of a quadrant under the paper's bottom-left rule.
#[must_use]
pub fn via_plan(quadrant: &Quadrant) -> ViaPlan {
    via_plan_with(quadrant, ViaRule::BottomLeft)
}

/// Computes the via plan under an explicit [`ViaRule`].
#[must_use]
pub fn via_plan_with(quadrant: &Quadrant, rule: ViaRule) -> ViaPlan {
    let mut vias = BTreeMap::new();
    for (row, nets) in quadrant.rows_bottom_up() {
        for (j, &net) in nets.iter().enumerate() {
            let site = match rule {
                ViaRule::BottomLeft => j as u32 + 1,
                ViaRule::BottomRight => j as u32 + 2,
            };
            vias.insert(
                net,
                ViaRef {
                    net,
                    row,
                    site,
                    pos: Point::new(quadrant.via_site_x(row, site), quadrant.line_y(row)),
                },
            );
        }
    }
    ViaPlan { vias }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::Quadrant;

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    #[test]
    fn plan_covers_every_net() {
        let q = fig5();
        let plan = via_plan(&q);
        assert_eq!(plan.len(), 12);
        assert!(!plan.is_empty());
        for net in q.nets() {
            assert!(plan.via(net.id).is_ok());
        }
    }

    #[test]
    fn vias_sit_bottom_left_of_their_ball() {
        let q = fig5();
        let plan = via_plan(&q);
        for via in plan.iter() {
            let ball = q.ball_of(via.net).unwrap();
            assert_eq!(via.row, ball.row);
            assert_eq!(via.site, ball.col);
            let ball_pos = q.ball_center(ball.row, ball.col);
            assert!(via.pos.x < ball_pos.x, "via left of ball");
            assert_eq!(via.pos.y, ball_pos.y, "via on the ball's line");
        }
    }

    #[test]
    fn one_via_per_net_at_most() {
        // The paper stipulates ≤ 1 via per net; the plan has exactly one.
        let plan = via_plan(&fig5());
        let mut seen = std::collections::HashSet::new();
        for via in plan.iter() {
            assert!(seen.insert(via.net), "net has two vias");
        }
    }

    #[test]
    fn unknown_net_is_an_error() {
        let plan = via_plan(&fig5());
        assert!(matches!(
            plan.via(NetId::new(99)),
            Err(RouteError::Unplaced { .. })
        ));
    }

    #[test]
    fn bottom_right_rule_mirrors_the_sites() {
        let q = fig5();
        let left = via_plan_with(&q, ViaRule::BottomLeft);
        let right = via_plan_with(&q, ViaRule::BottomRight);
        for net in q.nets() {
            let l = left.via(net.id).unwrap();
            let r = right.via(net.id).unwrap();
            assert_eq!(r.site, l.site + 1);
            assert!(r.pos.x > l.pos.x);
            let ball = q.ball_of(net.id).unwrap();
            assert!(
                r.pos.x > q.ball_center(ball.row, ball.col).x,
                "right of ball"
            );
        }
    }

    #[test]
    fn default_rule_is_bottom_left() {
        let q = fig5();
        assert_eq!(via_plan(&q), via_plan_with(&q, ViaRule::BottomLeft));
        assert_eq!(ViaRule::default(), ViaRule::BottomLeft);
    }

    #[test]
    fn via_sites_within_a_row_are_distinct_and_increasing() {
        let q = fig5();
        let plan = via_plan(&q);
        for (row, nets) in q.rows_bottom_up() {
            let xs: Vec<f64> = nets.iter().map(|&n| plan.via(n).unwrap().pos.x).collect();
            for w in xs.windows(2) {
                assert!(w[0] < w[1]);
            }
            let _ = row;
        }
    }
}
