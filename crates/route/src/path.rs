//! Full routing-path extraction (for visualisation and detailed checks).

use copack_geom::{Assignment, NetId, Point, Quadrant};

use crate::{line_crossings, via_plan, RouteError};

/// The realised route of one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetPath {
    /// The routed net.
    pub net: NetId,
    /// Layer-1 polyline: finger centre, one crossing point per intermediate
    /// horizontal line, then the via.
    pub layer1: Vec<Point>,
    /// Via location (last point of `layer1`).
    pub via: Point,
    /// Layer-2 endpoint: the bump-ball centre.
    pub ball: Point,
}

impl NetPath {
    /// Length of the Layer-1 polyline.
    #[must_use]
    pub fn layer1_length(&self) -> f64 {
        self.layer1.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Length of the Layer-2 flyline (via → ball).
    #[must_use]
    pub fn layer2_length(&self) -> f64 {
        self.via.distance(self.ball)
    }

    /// Total realised length.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.layer1_length() + self.layer2_length()
    }

    /// Whether the Layer-1 polyline is monotonic in y (strictly decreasing),
    /// i.e. the route crosses each horizontal line exactly once.
    #[must_use]
    pub fn is_monotonic(&self) -> bool {
        self.layer1.windows(2).all(|w| w[1].y < w[0].y)
    }
}

/// Extracts the realised monotonic route of every net, in finger order.
///
/// Crossing points come from the planar crossing model, so paths of a legal
/// assignment never cross each other between two adjacent lines (wire order
/// along every line equals finger order).
///
/// # Errors
///
/// Propagates legality errors from the crossing model.
pub fn extract_paths(
    quadrant: &Quadrant,
    assignment: &Assignment,
) -> Result<Vec<NetPath>, RouteError> {
    let plan = via_plan(quadrant);
    let lines = line_crossings(quadrant, assignment, &plan)?;

    let mut paths = Vec::with_capacity(assignment.net_count());
    for (finger, net) in assignment.iter() {
        let via = plan.via(net)?;
        let ball = quadrant
            .ball_of(net)
            .ok_or(copack_geom::GeomError::UnknownNet { net })?;
        let mut layer1 = vec![quadrant.finger_center(finger)];
        // Crossing points on every line above the via's row, top-down.
        for line in &lines {
            if line.row <= via.row {
                break;
            }
            if let Some(c) = line.crossings.iter().find(|c| c.net == net) {
                layer1.push(Point::new(c.x, line.line_y));
            }
        }
        layer1.push(via.pos);
        paths.push(NetPath {
            net,
            layer1,
            via: via.pos,
            ball: quadrant.ball_center(ball.row, ball.col),
        });
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{Assignment, Quadrant};

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    fn dfa() -> Assignment {
        Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0])
    }

    #[test]
    fn every_net_gets_a_path() {
        let q = fig5();
        let paths = extract_paths(&q, &dfa()).unwrap();
        assert_eq!(paths.len(), 12);
    }

    #[test]
    fn paths_are_monotonic() {
        let q = fig5();
        for p in extract_paths(&q, &dfa()).unwrap() {
            assert!(p.is_monotonic(), "{:?}", p.net);
        }
    }

    #[test]
    fn path_point_count_matches_rows_crossed() {
        let q = fig5();
        let paths = extract_paths(&q, &dfa()).unwrap();
        for p in &paths {
            let ball = q.ball_of(p.net).unwrap();
            // finger + one crossing per line strictly above the ball row + via
            let expected = 1 + (q.row_count() - ball.row.get() as usize) + 1;
            assert_eq!(p.layer1.len(), expected, "net {}", p.net);
        }
    }

    #[test]
    fn realised_length_at_least_flyline_length() {
        let q = fig5();
        let a = dfa();
        let plan = crate::via_plan(&q);
        for p in extract_paths(&q, &a).unwrap() {
            let fly = crate::net_wirelength(&q, &a, &plan, p.net).unwrap();
            assert!(p.length() + 1e-12 >= fly);
        }
    }

    #[test]
    fn paths_do_not_cross_between_adjacent_lines() {
        // Planarity: for every pair of consecutive lines, the x-order of
        // wires present on both is identical.
        let q = fig5();
        let paths = extract_paths(&q, &dfa()).unwrap();
        let max_len = paths.iter().map(|p| p.layer1.len()).max().unwrap();
        for depth in 0..max_len - 1 {
            let mut present: Vec<(f64, f64)> = paths
                .iter()
                .filter(|p| p.layer1.len() > depth + 1)
                .map(|p| (p.layer1[depth].x, p.layer1[depth + 1].x))
                .collect();
            present.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in present.windows(2) {
                assert!(
                    w[0].1 <= w[1].1 + 1e-9,
                    "wires cross between lines at depth {depth}"
                );
            }
        }
    }

    #[test]
    fn ball_is_right_of_via() {
        let q = fig5();
        for p in extract_paths(&q, &dfa()).unwrap() {
            assert!(p.ball.x > p.via.x);
            assert!(p.layer2_length() > 0.0);
        }
    }
}
