//! Cut-line congestion across quadrant boundaries.
//!
//! The package is planned one triangular quadrant at a time, but wires that
//! cross a line *outside* its via span (the flank regions) run along the
//! diagonal cut-lines, where they meet the neighbouring quadrant's flank
//! wires. The paper notes this explicitly ("two neighboring triangles
//! contribute to the congestion along the cut-line") and offers the DFA
//! slack `n ≥ 2` to reserve room. This module measures that shared
//! congestion for a whole package.

use copack_geom::{Assignment, Package};
use serde::{Deserialize, Serialize};

use crate::{density_map, DensityModel, RouteError};

/// Flank wire counts of one quadrant: wires crossing left of the first via
/// site and right of the last, maximised over its horizontal lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlankLoad {
    /// Worst per-line count in the left flank region.
    pub left: u32,
    /// Worst per-line count in the right flank region.
    pub right: u32,
}

/// Cut-line congestion of a full package.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutlineReport {
    /// Per-quadrant flank loads, in [`copack_geom::QuadrantSide::ALL`] order.
    pub flanks: [FlankLoad; 4],
    /// Shared congestion on each of the four diagonal cut-lines: the right
    /// flank of side `k` plus the left flank of side `k + 1`.
    pub boundaries: [u32; 4],
}

impl CutlineReport {
    /// The worst shared cut-line congestion.
    #[must_use]
    pub fn max(&self) -> u32 {
        self.boundaries.iter().copied().max().unwrap_or(0)
    }
}

/// Measures the cut-line congestion of a package under per-side
/// assignments (in [`copack_geom::QuadrantSide::ALL`] order).
///
/// # Errors
///
/// Propagates legality errors from any quadrant's density analysis.
pub fn cutline_congestion(
    package: &Package,
    assignments: &[Assignment; 4],
    model: DensityModel,
) -> Result<CutlineReport, RouteError> {
    let mut flanks = [FlankLoad { left: 0, right: 0 }; 4];
    for (side, quadrant) in package.quadrants() {
        let map = density_map(quadrant, &assignments[side.index()], model)?;
        let mut left = 0u32;
        let mut right = 0u32;
        for row in &map.rows {
            left = left.max(*row.counts.first().unwrap_or(&0));
            right = right.max(*row.counts.last().unwrap_or(&0));
        }
        flanks[side.index()] = FlankLoad { left, right };
    }
    let mut boundaries = [0u32; 4];
    for k in 0..4 {
        let next = (k + 1) % 4;
        boundaries[k] = flanks[k].right + flanks[next].left;
    }
    Ok(CutlineReport { flanks, boundaries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{Package, Quadrant};

    fn fig5_package() -> (Package, [Assignment; 4]) {
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        (Package::uniform(q), [a.clone(), a.clone(), a.clone(), a])
    }

    #[test]
    fn symmetric_packages_have_symmetric_boundaries() {
        let (p, a) = fig5_package();
        let report = cutline_congestion(&p, &a, DensityModel::Geometric).unwrap();
        // Four identical quadrants: every boundary carries the same load.
        for b in &report.boundaries {
            assert_eq!(*b, report.boundaries[0]);
        }
        assert_eq!(report.max(), report.boundaries[0]);
    }

    #[test]
    fn boundaries_sum_adjacent_flanks() {
        let (p, a) = fig5_package();
        let report = cutline_congestion(&p, &a, DensityModel::Geometric).unwrap();
        for k in 0..4 {
            let next = (k + 1) % 4;
            assert_eq!(
                report.boundaries[k],
                report.flanks[k].right + report.flanks[next].left
            );
        }
    }

    #[test]
    fn mixed_quadrants_differ_per_boundary() {
        use copack_geom::QuadrantSide::{Bottom, Left, Right, Top};
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap();
        let p = Package::builder()
            .side(Bottom, q.clone())
            .side(Right, q.clone())
            .side(Top, q.clone())
            .side(Left, q)
            .build()
            .unwrap();
        let dfa = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let random = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let assignments = [dfa.clone(), random, dfa.clone(), dfa];
        let report = cutline_congestion(&p, &assignments, DensityModel::Geometric).unwrap();
        // The random side's flanks differ from the DFA sides'.
        let loads: std::collections::HashSet<u32> = report.boundaries.iter().copied().collect();
        assert!(loads.len() > 1, "{report:?}");
    }

    #[test]
    fn illegal_side_is_rejected() {
        let (p, mut a) = fig5_package();
        a[2] = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        assert!(cutline_congestion(&p, &a, DensityModel::Geometric).is_err());
    }
}
