//! Design-rule capacity checking.
//!
//! The paper's motivation for controlling density: "If the density is
//! higher, it indicates that too many wires pass through a narrow range.
//! Therefore, a violation of design rules probably occurred." This module
//! turns that into a check: a segment between two via sites has a physical
//! width; at a given wire pitch it can carry only so many wires. A
//! [`DensityMap`] whose loads exceed those capacities is not manufacturable
//! at that pitch.

use copack_geom::RowIdx;
use serde::{Deserialize, Serialize};

use crate::DensityMap;

/// One over-capacity segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityViolation {
    /// The line's row.
    pub row: RowIdx,
    /// Segment index on that line (0 = the left flank region).
    pub segment: usize,
    /// Wires crossing the segment.
    pub load: u32,
    /// Wires the segment can physically carry.
    pub capacity: u32,
}

/// Checks every **interior** segment of `map` against the wire pitch
/// (centre-to-centre wire spacing, µm) and via diameter; the unbounded
/// flank segments are skipped. Returns all violations, worst first.
///
/// Capacity of a segment of width `w` is `⌊(w − via_diameter) / pitch⌋`,
/// floored at zero.
///
/// # Panics
///
/// Panics if `wire_pitch` is not positive and finite.
#[must_use]
pub fn check_capacity(
    map: &DensityMap,
    wire_pitch: f64,
    via_diameter: f64,
) -> Vec<CapacityViolation> {
    assert!(
        wire_pitch.is_finite() && wire_pitch > 0.0,
        "wire pitch must be positive"
    );
    let mut violations = Vec::new();
    for row in &map.rows {
        for (segment, window) in row.boundaries.windows(2).enumerate() {
            let width = window[1] - window[0];
            let capacity = (((width - via_diameter) / wire_pitch).floor()).max(0.0) as u32;
            let load = row.counts[segment + 1];
            if load > capacity {
                violations.push(CapacityViolation {
                    row: row.row,
                    segment: segment + 1,
                    load,
                    capacity,
                });
            }
        }
    }
    violations.sort_by_key(|v| std::cmp::Reverse(v.load.saturating_sub(v.capacity)));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{density_map, DensityModel};
    use copack_geom::{Assignment, Quadrant, QuadrantGeometry};

    fn fig5_map(order: [u32; 12]) -> DensityMap {
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .geometry(QuadrantGeometry {
                ball_pitch: 1.0,
                finger_pitch: 0.5,
                finger_width: 0.3,
                finger_height: 0.4,
                via_diameter: 0.1,
                ball_diameter: 0.2,
            })
            .build()
            .unwrap();
        density_map(&q, &Assignment::from_order(order), DensityModel::Geometric).unwrap()
    }

    #[test]
    fn generous_pitch_passes_everything() {
        // Segment width 1.0 µm, via 0.1: pitch 0.2 gives capacity 4 ≥ any
        // load of the DFA order (max 2).
        let map = fig5_map([10, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        assert!(check_capacity(&map, 0.2, 0.1).is_empty());
    }

    #[test]
    fn tight_pitch_flags_the_crowded_segments() {
        // Same geometry, random order (loads up to 4 in one segment… its 4
        // are in a flank, interior max is 3): pitch 0.45 gives capacity 2.
        let map = fig5_map([10, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let violations = check_capacity(&map, 0.45, 0.1);
        assert!(!violations.is_empty());
        for v in &violations {
            assert!(v.load > v.capacity);
        }
        // Worst overflow first.
        for w in violations.windows(2) {
            assert!(
                w[0].load - w[0].capacity >= w[1].load - w[1].capacity,
                "{violations:?}"
            );
        }
    }

    #[test]
    fn better_orders_violate_less() {
        let random = fig5_map([10, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
        let dfa = fig5_map([10, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let pitch = 0.45;
        assert!(
            check_capacity(&dfa, pitch, 0.1).len() <= check_capacity(&random, pitch, 0.1).len()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pitch_is_rejected() {
        let map = fig5_map([10, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let _ = check_capacity(&map, 0.0, 0.1);
    }
}
