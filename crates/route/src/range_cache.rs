//! Cached exchange ranges for the annealer's inner loop.
//!
//! [`exchange_range`] re-derives a net's legal span from scratch: a ball
//! lookup, a row scan and up to two position lookups in the assignment's
//! `BTreeMap` — twice per proposed move. A net's span depends only on the
//! *positions of its same-row neighbours*, so an adjacent swap invalidates
//! at most four cached entries (the row-neighbours of the two nets that
//! moved). [`RangeCache`] exploits that: range reads become two array
//! loads, and accepted swaps trigger a constant-size refresh.

use copack_geom::{Assignment, FingerIdx, NetId, NetIndex, Quadrant};

use crate::{exchange_range, RouteError};

/// Per-net cached `(lo, hi)` exchange ranges with `O(1)` reads and
/// constant-size invalidation on adjacent swaps.
///
/// Nets are addressed by a **dense index** in the quadrant's id order
/// (`Quadrant::nets`, i.e. the quadrant's [`NetIndex`]); resolve ids once
/// with [`RangeCache::index_of`] and use indices in the hot loop. After a
/// swap is applied, report every net whose *position changed* via
/// [`RangeCache::note_moved`] with the current 1-based positions (indexed
/// the same way); the cache refreshes the affected neighbours' entries.
///
/// Cached ranges are guaranteed to equal [`exchange_range`] on the live
/// assignment (property-tested in this crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeCache {
    index: NetIndex,
    /// Same-row left/right neighbour of each net, as dense indices.
    left: Vec<Option<usize>>,
    right: Vec<Option<usize>>,
    lo: Vec<u32>,
    hi: Vec<u32>,
    finger_count: u32,
}

impl RangeCache {
    /// Builds the cache for `assignment`, priming every net's range.
    ///
    /// # Errors
    ///
    /// As [`exchange_range`]: every net and row-neighbour must be placed.
    pub fn new(quadrant: &Quadrant, assignment: &Assignment) -> Result<Self, RouteError> {
        let index = quadrant.net_index().clone();
        let count = index.len();
        let mut left = vec![None; count];
        let mut right = vec![None; count];
        for (_, nets) in quadrant.rows_bottom_up() {
            for w in nets.windows(2) {
                let a = index.get(w[0]).expect("row net is interned");
                let b = index.get(w[1]).expect("row net is interned");
                right[a] = Some(b);
                left[b] = Some(a);
            }
        }
        let mut lo = vec![0u32; count];
        let mut hi = vec![0u32; count];
        for (i, &net) in index.ids().iter().enumerate() {
            let (l, h) = exchange_range(quadrant, assignment, net)?;
            lo[i] = l.get();
            hi[i] = h.get();
        }
        Ok(Self {
            index,
            left,
            right,
            lo,
            hi,
            finger_count: u32::try_from(assignment.finger_count()).expect("finger count fits u32"),
        })
    }

    /// Dense index of `net`, or `None` for a net outside the quadrant.
    #[must_use]
    pub fn index_of(&self, net: NetId) -> Option<usize> {
        self.index.get(net)
    }

    /// Number of cached nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.lo.len()
    }

    /// Cached inclusive range of the net at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn range(&self, idx: usize) -> (FingerIdx, FingerIdx) {
        (FingerIdx::new(self.lo[idx]), FingerIdx::new(self.hi[idx]))
    }

    /// Refreshes the entries invalidated by the net at `idx` having moved:
    /// its right neighbour's `lo` and its left neighbour's `hi`. (Its own
    /// range does not depend on its own position.)
    ///
    /// `positions[i]` must be the *current* 1-based slot of the net at
    /// dense index `i`, reflecting the already-applied swap.
    ///
    /// # Panics
    ///
    /// Panics if `idx` or a neighbour index exceeds `positions`.
    pub fn note_moved(&mut self, idx: usize, positions: &[u32]) {
        if let Some(r) = self.right[idx] {
            self.lo[r] = positions[idx] + 1;
        }
        if let Some(l) = self.left[idx] {
            self.hi[l] = positions[idx].saturating_sub(1).max(1);
        }
    }

    /// The quadrant's finger count (the `hi` of every row-rightmost net).
    #[must_use]
    pub fn finger_count(&self) -> u32 {
        self.finger_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::Quadrant;

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    fn positions(q: &Quadrant, a: &Assignment) -> Vec<u32> {
        q.nets()
            .map(|n| a.position_of(n.id).unwrap().get())
            .collect()
    }

    fn assert_matches_recompute(cache: &RangeCache, q: &Quadrant, a: &Assignment) {
        for net in q.nets() {
            let i = cache.index_of(net.id).unwrap();
            let cached = cache.range(i);
            let fresh = exchange_range(q, a, net.id).unwrap();
            assert_eq!(cached, fresh, "net {}", net.id.raw());
        }
    }

    #[test]
    fn primed_cache_matches_exchange_range() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let cache = RangeCache::new(&q, &a).unwrap();
        assert_eq!(cache.net_count(), 12);
        assert_eq!(cache.finger_count(), 12);
        assert_matches_recompute(&cache, &q, &a);
        // The paper's worked example: net 6 ranges over F3..F7.
        let i = cache.index_of(NetId::new(6)).unwrap();
        let (lo, hi) = cache.range(i);
        assert_eq!((lo.get(), hi.get()), (3, 7));
    }

    #[test]
    fn note_moved_tracks_adjacent_swaps() {
        let q = fig5();
        let mut a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let mut cache = RangeCache::new(&q, &a).unwrap();
        // Walk a fixed sequence of legal adjacent swaps, refreshing after
        // each, and compare every entry against the from-scratch ranges.
        for &(p, t) in &[(5u32, 6u32), (6, 7), (2, 3), (7, 6), (9, 10), (3, 2)] {
            let na = a.net_at(FingerIdx::new(p)).unwrap();
            let nb = a.net_at(FingerIdx::new(t)).unwrap();
            a.swap(FingerIdx::new(p), FingerIdx::new(t)).unwrap();
            let pos = positions(&q, &a);
            cache.note_moved(cache.index_of(na).unwrap(), &pos);
            cache.note_moved(cache.index_of(nb).unwrap(), &pos);
            assert_matches_recompute(&cache, &q, &a);
        }
    }

    #[test]
    fn unknown_nets_have_no_index() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let cache = RangeCache::new(&q, &a).unwrap();
        assert_eq!(cache.index_of(NetId::new(77)), None);
    }

    #[test]
    fn unplaced_nets_fail_construction() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11]);
        assert!(RangeCache::new(&q, &a).is_err());
    }
}
