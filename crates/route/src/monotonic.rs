//! Monotonic-rule legality checking and exchange ranges.

use copack_geom::{Assignment, FingerIdx, NetId, Quadrant};

use crate::RouteError;

/// Checks the monotonic via rule (paper §3.1): within every ball row, nets
/// must appear on the fingers in the same left-to-right order as their
/// balls. If the rule holds, a legal monotonic routing exists.
///
/// # Errors
///
/// * [`RouteError::Unplaced`] if a net of the quadrant has no finger slot.
/// * [`RouteError::NonMonotonic`] naming the first violating pair.
pub fn check_monotonic(quadrant: &Quadrant, assignment: &Assignment) -> Result<(), RouteError> {
    for (row, nets) in quadrant.rows_bottom_up() {
        let mut prev: Option<(NetId, FingerIdx)> = None;
        for &net in nets {
            let pos = assignment
                .position_of(net)
                .ok_or(RouteError::Unplaced { net })?;
            if let Some((prev_net, prev_pos)) = prev {
                if prev_pos >= pos {
                    return Err(RouteError::NonMonotonic {
                        row: row.get(),
                        left_ball: prev_net,
                        right_ball: net,
                    });
                }
            }
            prev = Some((net, pos));
        }
    }
    Ok(())
}

/// Convenience predicate form of [`check_monotonic`].
#[must_use]
pub fn is_monotonic(quadrant: &Quadrant, assignment: &Assignment) -> bool {
    check_monotonic(quadrant, assignment).is_ok()
}

/// The legal finger range a net may move to without breaking the monotonic
/// rule: strictly between its same-row neighbours' current positions.
///
/// This is the paper's exchange-range constraint (§3.2): "net 6 is assigned
/// at F5, and the exchange range of net 6 is between F3 and F7" when its row
/// neighbours sit at F2 and F8. Returns an inclusive `(lo, hi)` slot range.
///
/// # Errors
///
/// * [`RouteError::Unplaced`] if the net or a row neighbour has no slot.
/// * [`RouteError::Geom`] if the net is not in the quadrant.
pub fn exchange_range(
    quadrant: &Quadrant,
    assignment: &Assignment,
    net: NetId,
) -> Result<(FingerIdx, FingerIdx), RouteError> {
    let ball = quadrant
        .ball_of(net)
        .ok_or(copack_geom::GeomError::UnknownNet { net })?;
    let row = quadrant.row(ball.row);
    let i = ball.col_zero_based();
    let lo = if i == 0 {
        FingerIdx::new(1)
    } else {
        let left = row[i - 1];
        let p = assignment
            .position_of(left)
            .ok_or(RouteError::Unplaced { net: left })?;
        FingerIdx::new(p.get() + 1)
    };
    let hi = if i + 1 == row.len() {
        FingerIdx::new(u32::try_from(assignment.finger_count()).expect("finger count fits u32"))
    } else {
        let right = row[i + 1];
        let p = assignment
            .position_of(right)
            .ok_or(RouteError::Unplaced { net: right })?;
        FingerIdx::new(p.get().saturating_sub(1).max(1))
    };
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{Assignment, Quadrant};

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    #[test]
    fn paper_orders_are_monotonic() {
        let q = fig5();
        for order in [
            vec![10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0], // Fig. 5(A) random
            vec![10u32, 1, 11, 2, 3, 6, 4, 5, 9, 7, 8, 0], // Fig. 10 IFA
            vec![10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0], // Fig. 12 DFA
        ] {
            let a = Assignment::from_order(order);
            assert!(is_monotonic(&q, &a));
        }
    }

    #[test]
    fn swapped_same_row_nets_are_illegal() {
        let q = fig5();
        // Swap nets 6 and 9 (both on row 3) relative to the DFA order.
        let a = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        let err = check_monotonic(&q, &a).unwrap_err();
        assert_eq!(
            err,
            RouteError::NonMonotonic {
                row: 3,
                left_ball: NetId::new(6),
                right_ball: NetId::new(9),
            }
        );
    }

    #[test]
    fn unplaced_net_is_reported() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11]);
        assert!(matches!(
            check_monotonic(&q, &a),
            Err(RouteError::Unplaced { .. })
        ));
    }

    #[test]
    fn exchange_range_matches_paper_example() {
        // Paper §3.2: in Fig. 5(B), net 6 at F5 may move within F3..F7,
        // because its row-3 neighbours 11 and 9 sit at F2 and F8.
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        let (lo, hi) = exchange_range(&q, &a, NetId::new(6)).unwrap();
        assert_eq!((lo.get(), hi.get()), (3, 7));
    }

    #[test]
    fn edge_nets_range_to_the_quadrant_ends() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        // Net 11 is the leftmost ball of row 3: range starts at F1.
        let (lo, _) = exchange_range(&q, &a, NetId::new(11)).unwrap();
        assert_eq!(lo.get(), 1);
        // Net 9 is the rightmost ball of row 3: range ends at F12.
        let (_, hi) = exchange_range(&q, &a, NetId::new(9)).unwrap();
        assert_eq!(hi.get(), 12);
    }

    #[test]
    fn exchange_range_requires_known_net() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        assert!(exchange_range(&q, &a, NetId::new(77)).is_err());
    }

    #[test]
    fn moves_within_range_stay_monotonic() {
        let q = fig5();
        let a = Assignment::from_order([10u32, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]);
        // Swap net 6 (F5) with its right neighbour (F6, net 3 — a different
        // row), staying inside net 6's range F3..F7: still monotonic.
        let mut b = a.clone();
        b.swap(FingerIdx::new(5), FingerIdx::new(6)).unwrap();
        assert!(is_monotonic(&q, &b));
    }
}
