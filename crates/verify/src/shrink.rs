//! Greedy structural shrinking of failing instances.
//!
//! Two reduction moves — drop one net, keep only the bottom rows — plus
//! exchange-seed canonicalisation. Each move rebuilds the quadrant through
//! [`Quadrant::builder`], so every shrunk candidate satisfies the same
//! structural invariants as a generated one; a candidate is kept only if
//! the failing oracle still fails on it.

use copack_geom::{NetId, Quadrant};

/// The quadrant with `net` removed, or `None` if the removal would leave
/// no nets or is otherwise unbuildable.
///
/// Remaining nets keep their kind and tier; empty rows are dropped; the
/// finger count collapses to the net count (dense), which is the smallest
/// instance still containing the surviving pads.
#[must_use]
pub fn without_net(quadrant: &Quadrant, net: NetId) -> Option<Quadrant> {
    quadrant.net(net)?;
    rebuild(quadrant, |row| {
        row.iter().copied().filter(|&id| id != net).collect()
    })
}

/// The quadrant truncated to its bottom `keep` rows, or `None` if that is
/// not a strict reduction or is unbuildable.
#[must_use]
pub fn keep_bottom_rows(quadrant: &Quadrant, keep: usize) -> Option<Quadrant> {
    if keep == 0 || keep >= quadrant.row_count() {
        return None;
    }
    let mut taken = 0usize;
    rebuild(quadrant, move |row| {
        taken += 1;
        if taken <= keep {
            row.to_vec()
        } else {
            Vec::new()
        }
    })
}

/// Rebuilds the quadrant bottom-up, mapping each row through `f` (an
/// empty result drops the row) and carrying over each surviving net's
/// kind, tier, and the original geometry.
fn rebuild(quadrant: &Quadrant, mut f: impl FnMut(&[NetId]) -> Vec<NetId>) -> Option<Quadrant> {
    let mut builder = Quadrant::builder().geometry(*quadrant.geometry());
    let mut kept = 0usize;
    for (_, row) in quadrant.rows_bottom_up() {
        let nets = f(row);
        if nets.is_empty() {
            continue;
        }
        kept += nets.len();
        for &id in &nets {
            if let Some(net) = quadrant.net(id) {
                builder = builder.net_kind(id, net.kind).net_tier(id, net.tier);
            }
        }
        builder = builder.row(nets);
    }
    if kept == 0 {
        return None;
    }
    builder.fingers(kept).build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::NetKind;

    fn toy() -> Quadrant {
        Quadrant::builder()
            .row([1u32, 2, 3, 4])
            .row([5u32, 6])
            .row([7u32])
            .net_kind(2u32, NetKind::Power)
            .net_kind(6u32, NetKind::Ground)
            .fingers(9)
            .build()
            .unwrap()
    }

    #[test]
    fn drops_one_net_and_keeps_attributes() {
        let q = toy();
        let shrunk = without_net(&q, NetId::new(3)).unwrap();
        assert_eq!(shrunk.net_count(), 6);
        assert!(shrunk.net(NetId::new(3)).is_none());
        assert_eq!(shrunk.net(NetId::new(2)).unwrap().kind, NetKind::Power);
        assert_eq!(shrunk.net(NetId::new(6)).unwrap().kind, NetKind::Ground);
        assert_eq!(shrunk.finger_count(), 6, "fingers collapse to dense");
    }

    #[test]
    fn dropping_a_whole_row_removes_it() {
        let q = toy();
        let shrunk = without_net(&q, NetId::new(7)).unwrap();
        assert_eq!(shrunk.row_count(), 2);
        assert_eq!(shrunk.net_count(), 6);
    }

    #[test]
    fn dropping_the_last_net_fails() {
        let q = Quadrant::builder().row([1u32]).build().unwrap();
        assert!(without_net(&q, NetId::new(1)).is_none());
    }

    #[test]
    fn keeps_bottom_rows_only() {
        let q = toy();
        let shrunk = keep_bottom_rows(&q, 1).unwrap();
        assert_eq!(shrunk.row_count(), 1);
        assert_eq!(shrunk.net_count(), 4);
        assert_eq!(shrunk.net(NetId::new(2)).unwrap().kind, NetKind::Power);
    }

    #[test]
    fn keep_all_rows_is_not_a_reduction() {
        let q = toy();
        assert!(keep_bottom_rows(&q, 3).is_none());
        assert!(keep_bottom_rows(&q, 9).is_none());
        assert!(keep_bottom_rows(&q, 0).is_none());
    }
}
