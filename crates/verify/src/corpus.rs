//! Reproducer corpus I/O.
//!
//! A reproducer is a pair of files named after the failure:
//! `<name>.copack` (the shrunk quadrant, in the standard circuit format)
//! and `<name>.seed` (a text sidecar recording how the failure was found
//! and how to re-check it). `tests/corpus_regression.rs` replays every
//! pair under plain `cargo test`, so a committed reproducer is a
//! permanent regression guard.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use copack_geom::Quadrant;
use copack_io::write_quadrant;

/// The metadata sidecar of one committed reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sidecar {
    /// Fuzz-driver seed of the run that found the failure.
    pub seed: u64,
    /// Index of the failing case within that run.
    pub case: u64,
    /// Stacking tiers ψ to verify the instance with.
    pub tiers: u8,
    /// Exchange seed to verify the instance with (canonicalised by the
    /// shrinker).
    pub exchange_seed: u64,
    /// Name of the oracle that failed.
    pub oracle: String,
    /// The failing oracle's detail line at discovery time.
    pub detail: String,
}

/// Writes `<stem>.copack` + `<stem>.seed` under `dir`, returning the
/// `.copack` path.
///
/// # Errors
///
/// Propagates filesystem errors; the directory is created if missing.
pub fn write_reproducer(
    dir: &Path,
    stem: &str,
    quadrant: &Quadrant,
    sidecar: &Sidecar,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let circuit = dir.join(format!("{stem}.copack"));
    fs::write(&circuit, write_quadrant(stem, quadrant))?;
    let text = format!(
        "# copack fuzz reproducer: re-found with `copack fuzz --seed {} --cases {}`\n\
         seed {}\ncase {}\ntiers {}\nexchange-seed {}\noracle {}\ndetail {}\n",
        sidecar.seed,
        sidecar.case + 1,
        sidecar.seed,
        sidecar.case,
        sidecar.tiers,
        sidecar.exchange_seed,
        sidecar.oracle,
        sidecar.detail
    );
    fs::write(dir.join(format!("{stem}.seed")), text)?;
    Ok(circuit)
}

/// Parses a `.seed` sidecar written by [`write_reproducer`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on unknown directives or bad
/// numbers; missing directives default (`tiers` to 1, the rest to 0 or
/// empty) so hand-trimmed sidecars still load.
pub fn read_sidecar(path: &Path) -> io::Result<Sidecar> {
    let text = fs::read_to_string(path)?;
    let mut sidecar = Sidecar {
        seed: 0,
        case: 0,
        tiers: 1,
        exchange_seed: 0,
        oracle: String::new(),
        detail: String::new(),
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {what}", path.display(), lineno + 1),
            )
        };
        match key {
            "seed" => sidecar.seed = rest.parse().map_err(|_| bad("bad seed"))?,
            "case" => sidecar.case = rest.parse().map_err(|_| bad("bad case"))?,
            "tiers" => sidecar.tiers = rest.parse().map_err(|_| bad("bad tiers"))?,
            "exchange-seed" => {
                sidecar.exchange_seed = rest.parse().map_err(|_| bad("bad exchange-seed"))?;
            }
            "oracle" => sidecar.oracle = rest.to_owned(),
            "detail" => sidecar.detail = rest.to_owned(),
            _ => return Err(bad("unknown directive")),
        }
    }
    Ok(sidecar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_io::parse_quadrant;

    fn toy() -> Quadrant {
        Quadrant::builder()
            .row([1u32, 2, 3])
            .net_kind(2u32, copack_geom::NetKind::Power)
            .build()
            .unwrap()
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copack_verify_corpus_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn reproducer_round_trips() {
        let dir = scratch_dir("roundtrip");
        let sidecar = Sidecar {
            seed: 42,
            case: 7,
            tiers: 2,
            exchange_seed: 1,
            oracle: "density".to_owned(),
            detail: "incremental ID 3 != from-scratch ID 4".to_owned(),
        };
        let q = toy();
        let circuit = write_reproducer(&dir, "fuzz-42-7", &q, &sidecar).unwrap();
        let text = fs::read_to_string(&circuit).unwrap();
        let reread = parse_quadrant(&text).unwrap();
        assert_eq!(reread.1.net_count(), q.net_count());
        let back = read_sidecar(&dir.join("fuzz-42-7.seed")).unwrap();
        assert_eq!(back, sidecar);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sidecar_defaults_and_rejects_unknowns() {
        let dir = scratch_dir("defaults");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("minimal.seed");
        fs::write(&path, "# trimmed by hand\noracle cost-ledger\n").unwrap();
        let s = read_sidecar(&path).unwrap();
        assert_eq!(s.tiers, 1);
        assert_eq!(s.oracle, "cost-ledger");
        fs::write(&path, "wobble 3\n").unwrap();
        let err = read_sidecar(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
