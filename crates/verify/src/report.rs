//! Oracle verdicts and the human-readable verdict table.

use std::fmt::Write as _;

/// One oracle's verdict over one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Stable oracle name (one of [`crate::ORACLE_NAMES`]).
    pub oracle: &'static str,
    /// Whether the invariant held.
    pub passed: bool,
    /// Deterministic one-line detail: witness counts on a pass, the
    /// violated comparison on a failure. Never contains timings or paths,
    /// so verdict tables can be golden-pinned.
    pub detail: String,
}

impl OracleReport {
    /// A passing verdict.
    #[must_use]
    pub fn pass(oracle: &'static str, detail: impl Into<String>) -> Self {
        Self {
            oracle,
            passed: true,
            detail: detail.into(),
        }
    }

    /// A failing verdict.
    #[must_use]
    pub fn fail(oracle: &'static str, detail: impl Into<String>) -> Self {
        Self {
            oracle,
            passed: false,
            detail: detail.into(),
        }
    }
}

/// Renders the verdict table `copack check` prints.
///
/// Deterministic for a given instance and [`crate::VerifyConfig`]: the
/// details carry only counts and values derived from seeded runs.
#[must_use]
pub fn verdict_table(name: &str, reports: &[OracleReport]) -> String {
    let passed = reports.iter().filter(|r| r.passed).count();
    let mut out = String::new();
    let _ = writeln!(out, "{name}: {passed}/{} oracles passed", reports.len());
    let width = reports
        .iter()
        .map(|r| r.oracle.len())
        .max()
        .unwrap_or(0)
        .max("oracle".len());
    let _ = writeln!(out, "  {:width$}  verdict  detail", "oracle");
    for r in reports {
        let verdict = if r.passed { "PASS" } else { "FAIL" };
        let _ = writeln!(out, "  {:width$}  {verdict:7}  {}", r.oracle, r.detail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_counts_and_aligns() {
        let reports = [
            OracleReport::pass("monotonicity", "12 moves replayed"),
            OracleReport::fail("density", "kernel 3 != reference 4"),
        ];
        let table = verdict_table("toy", &reports);
        assert!(table.starts_with("toy: 1/2 oracles passed\n"), "{table}");
        assert!(table.contains("PASS"), "{table}");
        assert!(table.contains("FAIL"), "{table}");
        assert!(table.contains("kernel 3 != reference 4"), "{table}");
    }

    #[test]
    fn empty_reports_render() {
        assert!(verdict_table("x", &[]).contains("0/0"));
    }
}
