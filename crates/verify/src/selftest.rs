//! Self-tests of the verification machinery itself.
//!
//! A fuzzer that never fires is indistinguishable from a fuzzer that
//! cannot see. This module injects a *known* bug — a density-oracle
//! variant whose incremental replay skips the first accepted move, the
//! classic missed-delta mistake — and the test suite asserts the driver
//! catches it and shrinks the witness to a handful of nets.

use copack_core::{
    assign, exchange_traced, increased_density, AssignMethod, CoreError, SectionTracker,
};
use copack_geom::{FingerIdx, Quadrant};
use copack_obs::{Event, TraceBuffer};

use crate::{check_quadrant, OracleReport, VerifyConfig};

/// A deliberately broken density oracle: like the real one it replays the
/// accepted-move journal through a fresh [`SectionTracker`], but it
/// *drops the first accepted move* from the incremental side — so any
/// instance where that move matters to the final Eq. 2 `ID` convicts it.
///
/// The incremental tracker stays internally coherent (it follows its own
/// shadow assignment, which also misses the move), exactly how a real
/// missed-delta bug behaves: locally consistent, globally wrong.
#[must_use]
pub fn buggy_density_suite(quadrant: &Quadrant, config: &VerifyConfig) -> Vec<OracleReport> {
    const NAME: &str = "density";
    let fail = |detail: String| vec![OracleReport::fail(NAME, detail)];
    let stack = match config.stack() {
        Ok(s) => s,
        Err(e) => return fail(format!("bad stack: {e}")),
    };
    let initial = match assign(quadrant, AssignMethod::dfa_default()) {
        Ok(a) => a,
        Err(e) => return fail(format!("assignment failed: {e}")),
    };
    let mut buf = TraceBuffer::new();
    if let Err(e) = exchange_traced(
        quadrant,
        &initial,
        &stack,
        &config.exchange_config(),
        &mut buf,
    ) {
        return if matches!(e, CoreError::NoMovablePads) {
            vec![OracleReport::pass(NAME, "vacuous: no movable pads")]
        } else {
            fail(format!("exchange failed: {e}"))
        };
    }
    let mut sections = match SectionTracker::new(quadrant, &initial) {
        Ok(t) => t,
        Err(e) => return fail(format!("section tracker: {e}")),
    };
    // `truth` follows the kernel exactly; `shadow` is the buggy
    // incremental replay that never saw the first move.
    let mut truth = initial.clone();
    let mut shadow = initial.clone();
    for (k, event) in buf
        .events()
        .iter()
        .filter(|e| matches!(e, Event::MoveAccepted { .. }))
        .enumerate()
    {
        let Event::MoveAccepted { left_slot, .. } = event else {
            unreachable!()
        };
        let left = FingerIdx::new(*left_slot);
        let right = FingerIdx::new(*left_slot + 1);
        if truth.swap(left, right).is_err() {
            return fail(format!("journal slot {left_slot} out of range"));
        }
        if k == 0 {
            continue; // THE BUG: the first accepted move's delta is dropped.
        }
        if let (Some(a), Some(b)) = (shadow.net_at(left), shadow.net_at(right)) {
            if !(sections.is_delimiter(a) && sections.is_delimiter(b)) {
                sections.apply_adjacent_swap(a, b);
            }
        }
        let _ = shadow.swap(left, right);
    }
    let scratch = match increased_density(quadrant, &initial, &truth) {
        Ok(v) => v,
        Err(e) => return fail(format!("scratch ID failed: {e}")),
    };
    if sections.increased_density() != scratch {
        return fail(format!(
            "incremental ID {} != from-scratch ID {scratch}",
            sections.increased_density()
        ));
    }
    vec![OracleReport::pass(
        NAME,
        "replay matched (bug not triggered)",
    )]
}

/// The real suite, for symmetric use in driver self-tests.
#[must_use]
pub fn real_suite(quadrant: &Quadrant, config: &VerifyConfig) -> Vec<OracleReport> {
    check_quadrant(quadrant, config, &mut copack_obs::NoopRecorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_fuzz_with, FuzzConfig};
    use copack_obs::NoopRecorder;

    /// Acceptance criterion: the injected missed-delta bug is caught and
    /// the witness shrinks to at most 8 nets.
    #[test]
    fn injected_density_bug_is_caught_and_shrunk() {
        let cfg = FuzzConfig {
            seed: 1,
            max_cases: Some(64),
            ..FuzzConfig::default()
        };
        let outcome = run_fuzz_with(&cfg, buggy_density_suite, &mut NoopRecorder);
        let failure = outcome
            .failure
            .expect("the buggy suite must fail within 64 cases");
        assert_eq!(failure.oracle, "density");
        assert!(
            failure.quadrant.net_count() <= 8,
            "shrunk witness still has {} nets",
            failure.quadrant.net_count()
        );
        // The shrunk witness must still convict the buggy suite...
        assert!(buggy_density_suite(&failure.quadrant, &failure.config)
            .iter()
            .any(|r| !r.passed));
        // ...while the real oracles exonerate it.
        for r in real_suite(&failure.quadrant, &failure.config) {
            assert!(r.passed, "{}: {}", r.oracle, r.detail);
        }
    }

    #[test]
    fn shrinking_is_deterministic() {
        let cfg = FuzzConfig {
            seed: 1,
            max_cases: Some(64),
            ..FuzzConfig::default()
        };
        let a = run_fuzz_with(&cfg, buggy_density_suite, &mut NoopRecorder);
        let b = run_fuzz_with(&cfg, buggy_density_suite, &mut NoopRecorder);
        let (fa, fb) = (a.failure.unwrap(), b.failure.unwrap());
        assert_eq!(fa.case_index, fb.case_index);
        assert_eq!(fa.detail, fb.detail);
        assert_eq!(fa.quadrant.net_count(), fb.quadrant.net_count());
        assert_eq!(fa.config, fb.config);
    }
}
