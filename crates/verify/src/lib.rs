//! Invariant oracles and a deterministic differential fuzz driver.
//!
//! Every guarantee the paper states is an *invariant*: monotonic routes
//! stay monotonic under the exchange-range constraint, the incremental
//! Eq. 2/Eq. 3 bookkeeping must agree with the from-scratch definitions,
//! the IR proxy must track the real solvers, and the whole pipeline must
//! be deterministic. This crate makes those invariants first-class:
//!
//! * [`check_quadrant`] runs the seven oracles on one problem instance and
//!   returns a verdict per oracle (`copack check` renders the table);
//! * [`run_fuzz`] drives the oracles over an endless seeded stream of
//!   generated instances ([`copack_gen::fuzz_case`]) and, on a failure,
//!   **shrinks** the instance (drop nets, halve rows, re-seed) to a
//!   minimal reproducer it can write to a corpus directory.
//!
//! The oracles, in the order they run:
//!
//! | oracle | invariant |
//! |---|---|
//! | `monotonicity`  | every accepted exchange move preserves the monotonic via rule, and replaying the best prefix of the move journal reproduces the returned order bit for bit |
//! | `density`       | the O(1) kernel equals `exchange_reference`, and the incremental `SectionTracker`/`DeltaIrTracker`/`RangeCache` state replayed over the journal equals the from-scratch definitions on the final order |
//! | `ir-cross-check`| SOR, CG, and a small dense direct solve agree on the same pad assignment |
//! | `determinism`   | same seed ⇒ byte-identical reports for every thread count, and re-running the pipeline reproduces itself |
//! | `cost-ledger`   | each journal Δcost equals the cost difference bit-exactly, and the final cost is the running minimum bit-exactly |
//! | `replan_vs_scratch` | the warm-started replan of a churned instance validates clean and lands within [`REPLAN_TOLERANCE`] of the from-scratch cost |
//! | `tune-determinism` | the auto-tuner emits a byte-identical `.tune` profile for every worker-thread count and reproduces itself on a rerun |
//!
//! Everything here is deterministic: a failing case is fully described by
//! the driver seed and case index, which the shrunk reproducer's sidecar
//! file records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod corpus;
mod fuzz;
mod oracles;
mod replan;
mod report;
pub mod selftest;
mod shrink;

pub use config::VerifyConfig;
pub use corpus::{read_sidecar, write_reproducer, Sidecar};
pub use fuzz::{run_fuzz, run_fuzz_with, FuzzConfig, FuzzFailure, FuzzOutcome};
pub use oracles::{
    check_cost_ledger, check_density_conservation, check_determinism, check_ir_cross,
    check_monotonicity_preserved, check_quadrant, check_tune_determinism, ORACLE_NAMES,
};
pub use replan::{
    check_replan_vs_scratch, check_replan_with_delta, shrink_replan_delta, REPLAN_TOLERANCE,
};
pub use report::{verdict_table, OracleReport};
pub use shrink::{keep_bottom_rows, without_net};
