//! Oracle 6 — `replan_vs_scratch`: the incremental replan path is
//! equivalent to planning from scratch.
//!
//! For an `(instance, delta)` pair the warm-started exchange
//! ([`copack_core::exchange_warm`] seeded by the base instance's plan)
//! must produce a plan that validates clean on the edited instance
//! (complete, monotonic) **and** lands within a pinned cost band of the
//! from-scratch plan of the same edited instance. The band
//! ([`REPLAN_TOLERANCE`]) is the production contract `copack replan`
//! ships under; the quality-regression suite pins per-circuit bands on
//! top of it.
//!
//! The fuzz driver shrinks a failing pair along **both** axes: the
//! instance through the usual net/row reducers, and the delta through
//! the drop-edit / merge-edit reducers in [`shrink_replan_delta`] — the
//! minimal reproducer is a `.copack` file plus an `.edits` file.

use copack_core::{
    apply_delta, assign, diff_quadrant, exchange, exchange_warm, AssignMethod, CancelToken,
    CoreError, Edit, QuadrantDelta,
};
use copack_gen::{churn, STANDARD_CHURN};
use copack_geom::{Assignment, Quadrant};
use copack_obs::NoopRecorder;
use copack_route::is_monotonic;

use crate::{OracleReport, VerifyConfig};

/// The pinned replan cost band: the warm plan's Eq. 3 cost must not
/// exceed the from-scratch cost by more than this factor. Tuned over
/// the fuzz corpus. Below the core's scratch cutoff the replan path is
/// bit-identical to from-scratch, so small instances sit at ratio 1 by
/// construction; at scale the warm start usually *beats* scratch (it
/// inherits a converged plan), but simulated annealing is a stochastic
/// search and on heavily edited instances the shortened schedule can
/// trail the from-scratch walk by a bounded factor — the corpus-wide
/// worst observed is ~1.45, and the band pins 2.0 with headroom. The
/// band's teeth are structural: it catches infeasible or non-monotonic
/// warm plans and unbounded cost blowups (broken repair or reheat
/// showed up as 4–8× before being fixed).
pub const REPLAN_TOLERANCE: f64 = 2.0;

/// Absolute slack of the band: one discrete cost quantum — a single
/// Eq. 2 density unit (ρ) plus a single ω unit (φ). Tiny instances have
/// near-zero costs where a one-unit integer difference between two
/// legal optima dwarfs any multiplicative band; at production scale the
/// quantum is noise against the multiplicative term.
fn abs_slack(weights: &copack_core::CostWeights) -> f64 {
    weights.rho + weights.phi
}

/// Oracle 6 — derives the standard churn delta for the instance from
/// the profile's exchange seed and checks replan-vs-scratch equivalence
/// on the resulting `(instance, delta)` pair.
#[must_use]
pub fn check_replan_vs_scratch(quadrant: &Quadrant, config: &VerifyConfig) -> OracleReport {
    const NAME: &str = "replan_vs_scratch";
    let edited = match churn(quadrant, config.exchange_seed, STANDARD_CHURN) {
        Ok(q) => q,
        Err(e) => return OracleReport::fail(NAME, format!("churn failed to rebuild: {e}")),
    };
    check_replan_with_delta(quadrant, &diff_quadrant(quadrant, &edited), config)
}

/// The differential check proper, for an explicit delta: applies
/// `delta` to `base`, plans the edited instance from scratch, replans
/// it warm from `base`'s plan, and compares.
#[must_use]
pub fn check_replan_with_delta(
    base: &Quadrant,
    delta: &QuadrantDelta,
    config: &VerifyConfig,
) -> OracleReport {
    const NAME: &str = "replan_vs_scratch";
    let stack = match config.stack() {
        Ok(s) => s,
        Err(e) => return OracleReport::fail(NAME, format!("bad stack: {e}")),
    };
    let edited = match apply_delta(base, delta) {
        Ok(q) => q,
        // A shrink candidate may render the delta inapplicable; that is
        // not a replan bug, so the invariant is not exercisable.
        Err(e) => return OracleReport::pass(NAME, format!("vacuous: delta inapplicable: {e}")),
    };
    let xcfg = config.exchange_config();

    // The "previous plan" the replan warm-starts from: the base
    // instance's annealed plan, or its cold initial order when the base
    // has nothing to anneal.
    let previous: Assignment = match assign(base, AssignMethod::dfa_default()) {
        Ok(initial) => match exchange(base, &initial, &stack, &xcfg) {
            Ok(r) => r.assignment,
            Err(CoreError::NoMovablePads) => initial,
            Err(e) => return OracleReport::fail(NAME, format!("base plan failed: {e}")),
        },
        Err(e) => return OracleReport::fail(NAME, format!("base assignment failed: {e}")),
    };

    let scratch_initial = match assign(&edited, AssignMethod::dfa_default()) {
        Ok(a) => a,
        Err(e) => return OracleReport::fail(NAME, format!("edited assignment failed: {e}")),
    };
    let scratch = match exchange(&edited, &scratch_initial, &stack, &xcfg) {
        Ok(r) => r,
        Err(CoreError::NoMovablePads) => {
            return OracleReport::pass(NAME, "vacuous: no movable pads after the edit")
        }
        Err(e) => return OracleReport::fail(NAME, format!("scratch exchange failed: {e}")),
    };
    let warm = match exchange_warm(
        &edited,
        &previous,
        &stack,
        &xcfg,
        &mut NoopRecorder,
        &CancelToken::new(),
    ) {
        Ok(r) => r,
        Err(CoreError::NoMovablePads) => {
            return OracleReport::pass(NAME, "vacuous: no movable pads after the edit")
        }
        Err(e) => return OracleReport::fail(NAME, format!("warm exchange failed: {e}")),
    };

    if let Err(e) = warm.assignment.validate_complete(&edited) {
        return OracleReport::fail(NAME, format!("warm plan incomplete: {e}"));
    }
    if !is_monotonic(&edited, &warm.assignment) {
        return OracleReport::fail(NAME, "warm plan violates the via rule");
    }
    let (w, s) = (warm.stats.final_cost, scratch.stats.final_cost);
    if w > s * REPLAN_TOLERANCE + abs_slack(&xcfg.weights) {
        return OracleReport::fail(
            NAME,
            format!("warm cost {w:.6} exceeds scratch {s:.6} x {REPLAN_TOLERANCE}"),
        );
    }
    OracleReport::pass(
        NAME,
        format!(
            "{} edits: warm {w:.6} within scratch {s:.6} x {REPLAN_TOLERANCE}",
            delta.edits.len()
        ),
    )
}

/// Whether two edits address the same target, making the later one
/// subsume or cancel the earlier (the merge-edit reduction).
fn same_target(a: &Edit, b: &Edit) -> bool {
    match (a, b) {
        (Edit::Geometry(_), Edit::Geometry(_))
        | (Edit::Fingers(_), Edit::Fingers(_))
        | (Edit::Truncate(_), Edit::Truncate(_)) => true,
        (Edit::Row { y: ya, .. }, Edit::Row { y: yb, .. }) => ya == yb,
        (Edit::Retype { net: na, .. }, Edit::Retype { net: nb, .. })
        | (Edit::Tier { net: na, .. }, Edit::Tier { net: nb, .. })
        | (Edit::Add { net: na, .. }, Edit::Remove(nb)) => na == nb,
        _ => false,
    }
}

/// Greedily minimises a failing delta while `still_fails` keeps
/// reporting the violation:
///
/// 1. **drop-edit** — remove one edit at a time, first to last;
/// 2. **merge-edit** — collapse an adjacent same-target pair into the
///    later edit (an add cancelled by its own remove collapses to
///    nothing).
///
/// Both passes repeat to a fixpoint. Returns the reduced delta and the
/// oracle detail observed on it.
pub fn shrink_replan_delta<F>(
    mut delta: QuadrantDelta,
    mut detail: String,
    mut still_fails: F,
) -> (QuadrantDelta, String)
where
    F: FnMut(&QuadrantDelta) -> Option<String>,
{
    loop {
        let mut reduced = false;
        // Drop-edit.
        let mut i = 0;
        while i < delta.edits.len() {
            let mut candidate = delta.clone();
            candidate.edits.remove(i);
            if let Some(d) = still_fails(&candidate) {
                delta = candidate;
                detail = d;
                reduced = true;
            } else {
                i += 1;
            }
        }
        // Merge-edit.
        let mut j = 0;
        while j + 1 < delta.edits.len() {
            if same_target(&delta.edits[j], &delta.edits[j + 1]) {
                let mut candidate = delta.clone();
                let cancelling = matches!(
                    (&candidate.edits[j], &candidate.edits[j + 1]),
                    (Edit::Add { .. }, Edit::Remove(_))
                );
                candidate.edits.remove(j);
                if cancelling {
                    candidate.edits.remove(j);
                }
                if let Some(d) = still_fails(&candidate) {
                    delta = candidate;
                    detail = d;
                    reduced = true;
                    continue;
                }
            }
            j += 1;
        }
        if !reduced {
            return (delta, detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{NetId, NetKind};

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(2u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(9u32, NetKind::Power)
            .build()
            .unwrap()
    }

    #[test]
    fn replan_oracle_passes_on_fig5() {
        let r = check_replan_vs_scratch(&fig5(), &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
        assert_eq!(r.oracle, "replan_vs_scratch");
    }

    #[test]
    fn replan_oracle_passes_on_the_table1_circuits() {
        for (i, c) in copack_gen::circuits().iter().enumerate() {
            let q = c.build_quadrant().unwrap();
            let r = check_replan_vs_scratch(&q, &VerifyConfig::default());
            assert!(r.passed, "circuit {i}: {}", r.detail);
        }
    }

    #[test]
    fn empty_delta_is_equivalent_by_construction() {
        let r =
            check_replan_with_delta(&fig5(), &QuadrantDelta::default(), &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn inapplicable_deltas_pass_vacuously() {
        let d = QuadrantDelta {
            edits: vec![Edit::Remove(NetId::new(999))],
        };
        let r = check_replan_with_delta(&fig5(), &d, &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
        assert!(r.detail.contains("vacuous"), "{}", r.detail);
    }

    #[test]
    fn powerless_instances_pass_vacuously_or_trivially() {
        let q = Quadrant::builder().row([1u32, 2, 3]).build().unwrap();
        let r = check_replan_vs_scratch(&q, &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn drop_edit_reducer_minimises_to_the_culprit() {
        // Synthetic failure predicate: "fails" while edit Remove(7) is
        // still in the delta.
        let delta = QuadrantDelta {
            edits: vec![
                Edit::Retype {
                    net: NetId::new(2),
                    kind: NetKind::Ground,
                },
                Edit::Remove(NetId::new(7)),
                Edit::Add {
                    net: NetId::new(42),
                    row: 1,
                    at: 0,
                },
            ],
        };
        let (shrunk, detail) = shrink_replan_delta(delta, "start".to_owned(), |d| {
            d.edits
                .iter()
                .any(|e| matches!(e, Edit::Remove(n) if *n == NetId::new(7)))
                .then(|| "still failing".to_owned())
        });
        assert_eq!(shrunk.edits, vec![Edit::Remove(NetId::new(7))]);
        assert_eq!(detail, "still failing");
    }

    #[test]
    fn merge_edit_reducer_collapses_same_target_pairs() {
        // Failure depends only on the *final* kind of net 2, so the
        // retype chain must collapse to its last element.
        let delta = QuadrantDelta {
            edits: vec![
                Edit::Retype {
                    net: NetId::new(2),
                    kind: NetKind::Ground,
                },
                Edit::Retype {
                    net: NetId::new(2),
                    kind: NetKind::Power,
                },
            ],
        };
        let (shrunk, _) = shrink_replan_delta(delta, String::new(), |d| {
            matches!(
                d.edits.last(),
                Some(Edit::Retype {
                    kind: NetKind::Power,
                    ..
                })
            )
            .then(String::new)
        });
        assert_eq!(shrunk.edits.len(), 1);
    }

    #[test]
    fn cancelling_add_remove_pairs_vanish() {
        let delta = QuadrantDelta {
            edits: vec![
                Edit::Remove(NetId::new(7)),
                Edit::Add {
                    net: NetId::new(42),
                    row: 1,
                    at: 0,
                },
                Edit::Remove(NetId::new(42)),
            ],
        };
        // Failure only requires Remove(7); the add/remove pair is noise
        // that the merge pass may eliminate in one step.
        let (shrunk, _) = shrink_replan_delta(delta, String::new(), |d| {
            d.edits
                .iter()
                .any(|e| matches!(e, Edit::Remove(n) if *n == NetId::new(7)))
                .then(String::new)
        });
        assert_eq!(shrunk.edits, vec![Edit::Remove(NetId::new(7))]);
    }
}
