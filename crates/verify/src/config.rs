//! The verification profile: how hard the oracles drive each instance.

use copack_core::{ExchangeConfig, Schedule};
use copack_geom::{GeomError, StackConfig};

/// Parameters of one oracle run over one instance.
///
/// The defaults are a deliberately *short* profile — a truncated annealing
/// schedule and a small IR grid — so a full five-oracle pass stays cheap
/// enough to run on every fuzz case and in the debug-tier test suite. The
/// invariants checked are schedule-independent: if the bookkeeping is
/// wrong, a short walk exposes it just as well as a long one.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyConfig {
    /// Stacking tiers ψ of the instance (1 = planar).
    pub tiers: u8,
    /// Seed of the exchange runs the oracles perform.
    pub exchange_seed: u64,
    /// Side length of the IR cross-check grid (kept small: the dense
    /// ground-truth solver is O(n⁶) in this number).
    pub grid_n: usize,
    /// Annealing schedule of the oracle exchange runs.
    pub schedule: Schedule,
}

impl VerifyConfig {
    /// The short verification profile for an instance with `tiers` tiers.
    #[must_use]
    pub fn quick(tiers: u8) -> Self {
        Self {
            tiers,
            exchange_seed: 0xC0DE,
            grid_n: 10,
            schedule: Schedule {
                cooling: 0.7,
                moves_per_temp_per_finger: 1,
                ..Schedule::default()
            },
        }
    }

    /// The exchange configuration the oracles run under (always the
    /// `Proxy` IR objective — the only mode with a bit-identical
    /// reference implementation).
    #[must_use]
    pub fn exchange_config(&self) -> ExchangeConfig {
        ExchangeConfig {
            seed: self.exchange_seed,
            schedule: self.schedule,
            ..ExchangeConfig::default()
        }
    }

    /// The stack configuration for the instance's ψ.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError::InvalidStack`] for ψ = 0 or ψ > 64.
    pub fn stack(&self) -> Result<StackConfig, GeomError> {
        if self.tiers <= 1 {
            Ok(StackConfig::planar())
        } else {
            StackConfig::stacked(self.tiers)
        }
    }
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self::quick(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_is_valid_and_short() {
        let cfg = VerifyConfig::quick(1);
        assert!(cfg.schedule.is_valid());
        assert!(cfg.schedule.temperature_steps() <= 20);
        assert!(cfg.exchange_config().weights.is_valid());
        assert_eq!(cfg.stack().unwrap().tiers, 1);
        assert_eq!(VerifyConfig::quick(3).stack().unwrap().tiers, 3);
    }
}
