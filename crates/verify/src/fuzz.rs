//! The deterministic differential fuzz driver.
//!
//! The driver walks the seeded case stream of [`copack_gen::fuzz_case`],
//! runs the full oracle suite on each instance, and stops at the first
//! violation. The failing instance is then **shrunk** — greedily dropping
//! nets, halving rows, and canonicalising the exchange seed, keeping each
//! reduction only while the *same* oracle still fails — and the minimal
//! reproducer is optionally written to a corpus directory.
//!
//! Determinism contract: a failure is fully described by `(seed, case
//! index)`. Re-running the driver with the same seed re-finds it; the
//! wall-clock budget only decides how far the stream is walked.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use copack_core::{diff_quadrant, InstanceDelta, QuadrantDelta};
use copack_gen::{churn, fuzz_case, large_fuzz_case, STANDARD_CHURN};
use copack_geom::Quadrant;
use copack_io::write_delta;
use copack_obs::{Event, NoopRecorder, Recorder};

use crate::{
    check_quadrant, check_replan_with_delta, keep_bottom_rows, shrink_replan_delta, without_net,
    write_reproducer, OracleReport, Sidecar, VerifyConfig,
};

/// Upper bound on greedy shrink passes; each pass removes at least one
/// net or row, so this is never reached by realistic instances (≤ 32
/// nets) and only guards against a pathological oscillation.
const MAX_SHRINK_PASSES: usize = 64;

/// Driver parameters.
#[derive(Debug, Clone, Default)]
pub struct FuzzConfig {
    /// Seed of the case stream.
    pub seed: u64,
    /// Wall-clock budget; `None` means no time limit.
    pub budget: Option<Duration>,
    /// Maximum number of cases; `None` means no count limit. At least
    /// one of `budget`/`max_cases` should be set or the driver runs
    /// until a failure.
    pub max_cases: Option<u64>,
    /// Where to write the shrunk reproducer of a failure; `None` keeps
    /// it in memory only.
    pub corpus_dir: Option<PathBuf>,
}

/// A fuzz run's verdict.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Number of cases executed (including the failing one, if any).
    pub cases: u64,
    /// The first violation found, already shrunk; `None` on a clean run.
    pub failure: Option<FuzzFailure>,
}

/// One shrunk violation.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Index of the original failing case in the stream.
    pub case_index: u64,
    /// Generator variant of the original case.
    pub variant: &'static str,
    /// Name of the violated oracle.
    pub oracle: String,
    /// The oracle's detail line on the *shrunk* instance.
    pub detail: String,
    /// The shrunk instance.
    pub quadrant: Quadrant,
    /// The (possibly seed-canonicalised) profile that still exhibits the
    /// violation.
    pub config: VerifyConfig,
    /// Path of the written `.copack` reproducer, if a corpus directory
    /// was configured and the write succeeded.
    pub reproducer: Option<PathBuf>,
    /// For `replan_vs_scratch` failures: the shrunk delta (drop-edit /
    /// merge-edit reduced) that still exhibits the violation against
    /// the shrunk instance.
    pub delta: Option<QuadrantDelta>,
    /// Path of the written `.edits` delta reproducer, if any.
    pub edits_file: Option<PathBuf>,
}

/// Runs the real oracle suite over the stream ([`check_quadrant`] with a
/// quiet per-case recorder; `recorder` receives the driver's own events).
pub fn run_fuzz(config: &FuzzConfig, recorder: &mut dyn Recorder) -> FuzzOutcome {
    run_fuzz_with(
        config,
        |q, c| check_quadrant(q, c, &mut NoopRecorder),
        recorder,
    )
}

/// Runs an arbitrary oracle suite over the stream.
///
/// `suite` maps an instance and profile to verdicts; the driver stops at
/// the first verdict with `passed == false` and shrinks against the same
/// suite. Injecting a deliberately buggy suite (see [`crate::selftest`])
/// exercises the driver end to end.
pub fn run_fuzz_with<F>(
    config: &FuzzConfig,
    mut suite: F,
    recorder: &mut dyn Recorder,
) -> FuzzOutcome
where
    F: FnMut(&Quadrant, &VerifyConfig) -> Vec<OracleReport>,
{
    let started = Instant::now();
    let mut cases = 0u64;
    for index in 0u64.. {
        if let Some(budget) = config.budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        if let Some(max) = config.max_cases {
            if index >= max {
                break;
            }
        }
        // Every 16th case comes from the (reduced-size) large family, so
        // the oracles also cover the equal-row, deep-stack construction
        // the industrial-scale benches run on.
        let case = match if index % 16 == 15 {
            large_fuzz_case(config.seed, index)
        } else {
            fuzz_case(config.seed, index)
        } {
            Ok(c) => c,
            Err(e) => {
                // A generator that cannot build its own case is itself a
                // bug; surface it as a driver note and keep walking.
                if recorder.enabled() {
                    recorder.record(&Event::Note {
                        text: format!("fuzz case {index} unbuildable: {e}"),
                    });
                }
                cases += 1;
                continue;
            }
        };
        cases += 1;
        let verify = VerifyConfig::quick(case.tiers);
        let first_fail = suite(&case.quadrant, &verify)
            .into_iter()
            .find(|r| !r.passed);
        let Some(found) = first_fail else {
            continue;
        };
        if recorder.enabled() {
            recorder.record(&Event::OracleChecked {
                oracle: found.oracle.to_owned(),
                passed: false,
                detail: format!("case {index} ({}): {}", case.variant, found.detail),
            });
        }
        let (quadrant, verify, detail) = shrink_failure(
            &mut suite,
            case.quadrant,
            verify,
            found.oracle,
            found.detail,
        );
        // For replan failures, additionally shrink along the delta axis:
        // re-derive the standard churn delta of the shrunk instance and
        // reduce it edit by edit while the oracle keeps failing.
        let (delta, detail) = if found.oracle == "replan_vs_scratch" {
            let full = churn(&quadrant, verify.exchange_seed, STANDARD_CHURN)
                .map(|edited| diff_quadrant(&quadrant, &edited))
                .unwrap_or_default();
            let (shrunk, detail) = shrink_replan_delta(full, detail, |candidate| {
                let r = check_replan_with_delta(&quadrant, candidate, &verify);
                (!r.passed).then_some(r.detail)
            });
            (Some(shrunk), detail)
        } else {
            (None, detail)
        };
        let stem = format!("fuzz-{}-{index}", config.seed);
        let reproducer = config.corpus_dir.as_deref().and_then(|dir| {
            let sidecar = Sidecar {
                seed: config.seed,
                case: index,
                tiers: verify.tiers,
                exchange_seed: verify.exchange_seed,
                oracle: found.oracle.to_owned(),
                detail: detail.clone(),
            };
            write_reproducer(dir, &stem, &quadrant, &sidecar).ok()
        });
        let edits_file = match (config.corpus_dir.as_deref(), &delta) {
            (Some(dir), Some(d)) => {
                let instance = InstanceDelta {
                    quadrants: vec![(stem.clone(), d.clone())],
                };
                let path = dir.join(format!("{stem}.edits"));
                std::fs::write(&path, write_delta(&stem, &instance))
                    .ok()
                    .map(|()| path)
            }
            _ => None,
        };
        return FuzzOutcome {
            cases,
            failure: Some(FuzzFailure {
                case_index: index,
                variant: case.variant,
                oracle: found.oracle.to_owned(),
                detail,
                quadrant,
                config: verify,
                reproducer,
                delta,
                edits_file,
            }),
        };
    }
    if recorder.enabled() {
        recorder.record(&Event::Note {
            text: format!("fuzz clean: {cases} cases, seed {}", config.seed),
        });
    }
    FuzzOutcome {
        cases,
        failure: None,
    }
}

/// Greedily minimises a failing instance: single-net drops to a fixpoint,
/// row halving, then exchange-seed canonicalisation — accepting a
/// reduction only while the same oracle still fails.
fn shrink_failure<F>(
    suite: &mut F,
    mut quadrant: Quadrant,
    mut verify: VerifyConfig,
    oracle: &'static str,
    mut detail: String,
) -> (Quadrant, VerifyConfig, String)
where
    F: FnMut(&Quadrant, &VerifyConfig) -> Vec<OracleReport>,
{
    let mut still_fails = |q: &Quadrant, cfg: &VerifyConfig| {
        suite(q, cfg)
            .into_iter()
            .find(|r| r.oracle == oracle && !r.passed)
            .map(|r| r.detail)
    };
    for _ in 0..MAX_SHRINK_PASSES {
        let mut reduced = false;
        let ids: Vec<_> = quadrant.nets().map(|n| n.id).collect();
        for id in ids {
            let Some(candidate) = without_net(&quadrant, id) else {
                continue;
            };
            if let Some(d) = still_fails(&candidate, &verify) {
                quadrant = candidate;
                detail = d;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        let keep = quadrant.row_count().div_ceil(2);
        if let Some(candidate) = keep_bottom_rows(&quadrant, keep) {
            if let Some(d) = still_fails(&candidate, &verify) {
                quadrant = candidate;
                detail = d;
                continue;
            }
        }
        break;
    }
    for seed in [0u64, 1, 2] {
        if seed == verify.exchange_seed {
            break;
        }
        let mut canonical = verify.clone();
        canonical.exchange_seed = seed;
        if let Some(d) = still_fails(&quadrant, &canonical) {
            verify = canonical;
            detail = d;
            break;
        }
    }
    (quadrant, verify, detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_obs::TraceBuffer;

    #[test]
    fn clean_stream_reports_zero_failures() {
        let cfg = FuzzConfig {
            seed: 1,
            max_cases: Some(6),
            ..FuzzConfig::default()
        };
        let mut buf = TraceBuffer::new();
        let outcome = run_fuzz(&cfg, &mut buf);
        assert_eq!(outcome.cases, 6);
        assert!(outcome.failure.is_none());
        assert!(buf
            .events()
            .iter()
            .any(|e| matches!(e, Event::Note { text } if text.starts_with("fuzz clean"))));
    }

    #[test]
    fn budget_zero_runs_no_cases() {
        let cfg = FuzzConfig {
            seed: 1,
            budget: Some(Duration::ZERO),
            ..FuzzConfig::default()
        };
        let outcome = run_fuzz(&cfg, &mut NoopRecorder);
        assert_eq!(outcome.cases, 0);
        assert!(outcome.failure.is_none());
    }

    #[test]
    fn the_stream_includes_large_family_cases() {
        let cfg = FuzzConfig {
            seed: 1,
            max_cases: Some(16),
            ..FuzzConfig::default()
        };
        let outcome = run_fuzz(&cfg, &mut NoopRecorder);
        assert_eq!(outcome.cases, 16);
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
    }

    #[test]
    fn same_seed_walks_the_same_stream() {
        let cfg = FuzzConfig {
            seed: 9,
            max_cases: Some(4),
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg, &mut NoopRecorder);
        let b = run_fuzz(&cfg, &mut NoopRecorder);
        assert_eq!(a.cases, b.cases);
        assert!(a.failure.is_none() && b.failure.is_none());
    }
}
