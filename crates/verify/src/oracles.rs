//! The seven invariant oracles.
//!
//! Each oracle is a pure function `(Quadrant, VerifyConfig) →`
//! [`OracleReport`]: it builds its own initial assignment (always
//! [`AssignMethod::dfa_default`], the paper's recommended flow), performs
//! the seeded exchange/solve work it needs, and states a verdict. An
//! instance without power pads (or otherwise without movable nets) is a
//! *vacuous pass* — the invariant is not exercisable, which the detail
//! line says explicitly so verdict tables stay honest.

use copack_core::{
    assign, exchange, exchange_reference, exchange_traced, increased_density, plan_package,
    AssignMethod, Codesign, CoreError, DeltaIrTracker, PortfolioConfig, SectionTracker,
};
use copack_geom::{Assignment, FingerIdx, NetKind, Package, Quadrant, StackConfig};
use copack_io::{write_tune, ClassConfig};
use copack_obs::{Event, Recorder, TraceBuffer};
use copack_power::{solve_cg, solve_dense, solve_sor, GridSpec, PadRing};
use copack_route::{exchange_range, is_monotonic, RangeCache};
use copack_tune::{tune, TrialSpace, TuneError, TuneOptions};

use crate::{OracleReport, VerifyConfig};

/// The stable oracle names, in execution order.
pub const ORACLE_NAMES: [&str; 7] = [
    "monotonicity",
    "density",
    "ir-cross-check",
    "determinism",
    "cost-ledger",
    "replan_vs_scratch",
    "tune-determinism",
];

/// Agreement tolerance of the IR cross-check: both iterative solvers run
/// to a 1e-12 tolerance, so 1e-6 V leaves three orders of magnitude of
/// slack while still catching any modelling mismatch.
const IR_TOL: f64 = 1e-6;

/// Runs all seven oracles on one instance, emitting one
/// [`Event::OracleChecked`] per verdict into `recorder`.
pub fn check_quadrant(
    quadrant: &Quadrant,
    config: &VerifyConfig,
    recorder: &mut dyn Recorder,
) -> Vec<OracleReport> {
    let reports = vec![
        check_monotonicity_preserved(quadrant, config),
        check_density_conservation(quadrant, config),
        check_ir_cross(quadrant, config),
        check_determinism(quadrant, config),
        check_cost_ledger(quadrant, config),
        crate::check_replan_vs_scratch(quadrant, config),
        check_tune_determinism(quadrant, config),
    ];
    if recorder.enabled() {
        for r in &reports {
            recorder.record(&Event::OracleChecked {
                oracle: r.oracle.to_owned(),
                passed: r.passed,
                detail: r.detail.clone(),
            });
        }
    }
    reports
}

/// Shared preamble: the DFA initial order plus the instance's stack, or a
/// ready-made verdict when the instance cannot be exercised.
fn setup(
    oracle: &'static str,
    quadrant: &Quadrant,
    config: &VerifyConfig,
) -> Result<(Assignment, StackConfig), OracleReport> {
    let stack = match config.stack() {
        Ok(s) => s,
        Err(e) => return Err(OracleReport::fail(oracle, format!("bad stack: {e}"))),
    };
    match assign(quadrant, AssignMethod::dfa_default()) {
        Ok(a) => Ok((a, stack)),
        Err(e) => Err(OracleReport::fail(
            oracle,
            format!("assignment failed: {e}"),
        )),
    }
}

/// Maps an exchange error to a verdict: `NoMovablePads` is a vacuous
/// pass, anything else a failure.
fn exchange_err(oracle: &'static str, e: &CoreError) -> OracleReport {
    if matches!(e, CoreError::NoMovablePads) {
        OracleReport::pass(oracle, "vacuous: no movable pads")
    } else {
        OracleReport::fail(oracle, format!("exchange failed: {e}"))
    }
}

/// The accepted-move slots and per-move costs of a captured run.
fn accepted_moves(events: &[Event]) -> Vec<(u32, f64)> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::MoveAccepted {
                left_slot, cost, ..
            } => Some((*left_slot, *cost)),
            _ => None,
        })
        .collect()
}

/// Oracle 1 — monotonicity: the initial order is monotonic, every accepted
/// move's intermediate order is monotonic, and replaying the best prefix
/// of the move journal reproduces the returned order slot for slot.
#[must_use]
pub fn check_monotonicity_preserved(quadrant: &Quadrant, config: &VerifyConfig) -> OracleReport {
    const NAME: &str = "monotonicity";
    let (initial, stack) = match setup(NAME, quadrant, config) {
        Ok(v) => v,
        Err(r) => return r,
    };
    if !is_monotonic(quadrant, &initial) {
        return OracleReport::fail(NAME, "initial DFA order violates the via rule");
    }
    let mut buf = TraceBuffer::new();
    let result = match exchange_traced(
        quadrant,
        &initial,
        &stack,
        &config.exchange_config(),
        &mut buf,
    ) {
        Ok(r) => r,
        Err(e) => return exchange_err(NAME, &e),
    };
    let events = buf.into_events();
    let moves = accepted_moves(&events);

    let mut replay = initial.clone();
    let mut best_cost = result.stats.initial_cost;
    let mut best = replay.clone();
    for (k, &(left_slot, cost)) in moves.iter().enumerate() {
        if let Err(e) = replay.swap(FingerIdx::new(left_slot), FingerIdx::new(left_slot + 1)) {
            return OracleReport::fail(NAME, format!("move {k} swaps slot {left_slot}: {e}"));
        }
        if !is_monotonic(quadrant, &replay) {
            return OracleReport::fail(
                NAME,
                format!("move {k} (slot {left_slot}) breaks the via rule"),
            );
        }
        if cost < best_cost {
            best_cost = cost;
            best = replay.clone();
        }
    }
    if best != result.assignment {
        return OracleReport::fail(NAME, "best-prefix replay differs from the returned order");
    }
    if !is_monotonic(quadrant, &result.assignment) {
        return OracleReport::fail(NAME, "returned order violates the via rule");
    }
    if let Err(e) = result.assignment.validate_complete(quadrant) {
        return OracleReport::fail(NAME, format!("returned order incomplete: {e}"));
    }
    OracleReport::pass(
        NAME,
        format!(
            "{} accepted moves replayed, best prefix matches",
            moves.len()
        ),
    )
}

/// Oracle 2 — density conservation: the O(1) kernel equals the
/// from-scratch reference bit for bit, and the incremental
/// `SectionTracker`/`DeltaIrTracker` state replayed over the accepted
/// journal equals the from-scratch Eq. 2 / Δ_IR definitions on the final
/// order; `RangeCache` on the final order equals `exchange_range` per net.
#[must_use]
pub fn check_density_conservation(quadrant: &Quadrant, config: &VerifyConfig) -> OracleReport {
    const NAME: &str = "density";
    let (initial, stack) = match setup(NAME, quadrant, config) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let xcfg = config.exchange_config();

    let kernel = match exchange(quadrant, &initial, &stack, &xcfg) {
        Ok(r) => r,
        Err(e) => return exchange_err(NAME, &e),
    };
    let reference = match exchange_reference(quadrant, &initial, &stack, &xcfg) {
        Ok(r) => r,
        Err(e) => return OracleReport::fail(NAME, format!("reference failed: {e}")),
    };
    if kernel.assignment != reference.assignment {
        return OracleReport::fail(NAME, "kernel and reference orders differ");
    }
    if kernel.stats != reference.stats {
        return OracleReport::fail(NAME, "kernel and reference statistics differ");
    }

    let mut buf = TraceBuffer::new();
    if let Err(e) = exchange_traced(quadrant, &initial, &stack, &xcfg, &mut buf) {
        return exchange_err(NAME, &e);
    }
    let events = buf.into_events();
    let moves = accepted_moves(&events);

    let mut sections = match SectionTracker::new(quadrant, &initial) {
        Ok(t) => t,
        Err(e) => return OracleReport::fail(NAME, format!("section tracker: {e}")),
    };
    let mut ir = match DeltaIrTracker::new(quadrant, &initial) {
        Ok(t) => t,
        Err(e) => return OracleReport::fail(NAME, format!("ir tracker: {e}")),
    };
    let mut replay = initial.clone();
    for &(left_slot, _) in &moves {
        let left = FingerIdx::new(left_slot);
        let right = FingerIdx::new(left_slot + 1);
        match (replay.net_at(left), replay.net_at(right)) {
            (Some(a), Some(b)) => {
                sections.apply_adjacent_swap(a, b);
            }
            _ => return OracleReport::fail(NAME, format!("journal swaps empty slot {left_slot}")),
        }
        ir.apply_adjacent_swap(left);
        if replay.swap(left, right).is_err() {
            return OracleReport::fail(NAME, format!("journal slot {left_slot} out of range"));
        }
    }

    let scratch_id = match increased_density(quadrant, &initial, &replay) {
        Ok(v) => v,
        Err(e) => return OracleReport::fail(NAME, format!("scratch ID failed: {e}")),
    };
    if sections.increased_density() != scratch_id {
        return OracleReport::fail(
            NAME,
            format!(
                "incremental ID {} != from-scratch ID {scratch_id}",
                sections.increased_density()
            ),
        );
    }
    let scratch_ir = match DeltaIrTracker::new(quadrant, &replay) {
        Ok(t) => t.delta_ir(),
        Err(e) => return OracleReport::fail(NAME, format!("scratch Δ_IR failed: {e}")),
    };
    if ir.delta_ir().to_bits() != scratch_ir.to_bits() {
        return OracleReport::fail(
            NAME,
            format!(
                "incremental Δ_IR {:e} != from-scratch Δ_IR {scratch_ir:e}",
                ir.delta_ir()
            ),
        );
    }

    let cache = match RangeCache::new(quadrant, &kernel.assignment) {
        Ok(c) => c,
        Err(e) => return OracleReport::fail(NAME, format!("range cache: {e}")),
    };
    for net in quadrant.nets().map(|n| n.id) {
        let idx = match cache.index_of(net) {
            Some(i) => i,
            None => return OracleReport::fail(NAME, format!("net {net:?} missing from cache")),
        };
        let cached = cache.range(idx);
        let scratch = match exchange_range(quadrant, &kernel.assignment, net) {
            Ok(r) => r,
            Err(e) => return OracleReport::fail(NAME, format!("exchange_range: {e}")),
        };
        if cached != scratch {
            return OracleReport::fail(
                NAME,
                format!("range of {net:?}: cache {cached:?} != scratch {scratch:?}"),
            );
        }
    }

    OracleReport::pass(
        NAME,
        format!(
            "kernel == reference over {} accepted moves, ID {scratch_id}, {} ranges",
            moves.len(),
            quadrant.net_count()
        ),
    )
}

/// The full-package perimeter coordinates of the power pads of one
/// quadrant's assignment — the same four-side replication
/// `copack_core::evaluate_ir_map` uses.
fn power_pad_ts(quadrant: &Quadrant, assignment: &Assignment) -> Vec<f64> {
    let alpha = assignment.finger_count() as f64;
    let mut ts = Vec::new();
    for net in quadrant.nets_of_kind(NetKind::Power) {
        if let Some(pos) = assignment.position_of(net) {
            let frac = (f64::from(pos.get()) - 0.5) / alpha;
            for side in 0..4u8 {
                ts.push((f64::from(side) + frac) / 4.0);
            }
        }
    }
    ts
}

/// Oracle 3 — IR cross-check: SOR, CG, and the dense direct solve agree
/// node for node (within [`IR_TOL`]) on the pad ring implied by the DFA
/// order's power pads.
#[must_use]
pub fn check_ir_cross(quadrant: &Quadrant, config: &VerifyConfig) -> OracleReport {
    const NAME: &str = "ir-cross-check";
    let (initial, _) = match setup(NAME, quadrant, config) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let ts = power_pad_ts(quadrant, &initial);
    if ts.is_empty() {
        return OracleReport::pass(NAME, "vacuous: no power pads");
    }
    let ring = match PadRing::from_ts(ts) {
        Ok(r) => r,
        Err(e) => return OracleReport::fail(NAME, format!("pad ring: {e}")),
    };
    let spec = GridSpec::default_chip(config.grid_n);
    let sor = match solve_sor(&spec, &ring) {
        Ok(m) => m,
        Err(e) => return OracleReport::fail(NAME, format!("sor: {e}")),
    };
    let cg = match solve_cg(&spec, &ring) {
        Ok(m) => m,
        Err(e) => return OracleReport::fail(NAME, format!("cg: {e}")),
    };
    let dense = match solve_dense(&spec, &ring) {
        Ok(m) => m,
        Err(e) => return OracleReport::fail(NAME, format!("dense: {e}")),
    };
    let mut worst: f64 = 0.0;
    for ((s, c), d) in sor
        .voltages()
        .iter()
        .zip(cg.voltages())
        .zip(dense.voltages())
    {
        worst = worst.max((s - d).abs()).max((c - d).abs());
    }
    if worst > IR_TOL {
        return OracleReport::fail(
            NAME,
            format!("solvers disagree by {worst:.3e} V (tolerance {IR_TOL:.0e})"),
        );
    }
    let drop_spread = (sor.max_drop() - dense.max_drop())
        .abs()
        .max((cg.max_drop() - dense.max_drop()).abs());
    if drop_spread > IR_TOL {
        return OracleReport::fail(NAME, format!("max-drop disagreement {drop_spread:.3e} V"));
    }
    OracleReport::pass(
        NAME,
        format!(
            "sor/cg/dense agree on {} pads ({}x{} grid)",
            ring.len(),
            config.grid_n,
            config.grid_n
        ),
    )
}

/// Oracle 4 — pipeline determinism: `plan_package` yields byte-identical
/// reports for thread counts 1, 2 and 4, and `Codesign::run` reproduces
/// itself for the same seed.
#[must_use]
pub fn check_determinism(quadrant: &Quadrant, config: &VerifyConfig) -> OracleReport {
    const NAME: &str = "determinism";
    let stack = match config.stack() {
        Ok(s) => s,
        Err(e) => return OracleReport::fail(NAME, format!("bad stack: {e}")),
    };
    let codesign = |threads: usize| Codesign {
        method: AssignMethod::dfa_default(),
        exchange: config.exchange_config(),
        stack,
        grid: GridSpec::default_chip(config.grid_n),
        threads,
        ..Codesign::default()
    };
    let package = Package::uniform(quadrant.clone());
    let mut baseline: Option<String> = None;
    for threads in [1usize, 2, 4] {
        let report = match plan_package(&package, &codesign(threads)) {
            Ok(r) => r,
            Err(e) => return exchange_err(NAME, &e),
        };
        let bytes = format!("{report:?}");
        match &baseline {
            None => baseline = Some(bytes),
            Some(b) if *b != bytes => {
                return OracleReport::fail(
                    NAME,
                    format!("package plan differs between --threads 1 and {threads}"),
                );
            }
            Some(_) => {}
        }
    }
    let flow = codesign(1);
    let a = match flow.run(quadrant) {
        Ok(r) => format!("{r:?}"),
        Err(e) => return exchange_err(NAME, &e),
    };
    let b = match flow.run(quadrant) {
        Ok(r) => format!("{r:?}"),
        Err(e) => return exchange_err(NAME, &e),
    };
    if a != b {
        return OracleReport::fail(NAME, "same-seed pipeline runs differ");
    }
    OracleReport::pass(NAME, "threads 1/2/4 and repeated runs byte-identical")
}

/// Oracle 5 — cost ledger: in the captured journal each Δcost equals the
/// cost difference bit-exactly, the uphill flag matches the delta's sign,
/// the run's final cost is the running minimum bit-exactly, and the event
/// counters agree with the returned statistics.
#[must_use]
pub fn check_cost_ledger(quadrant: &Quadrant, config: &VerifyConfig) -> OracleReport {
    const NAME: &str = "cost-ledger";
    let (initial, stack) = match setup(NAME, quadrant, config) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let mut buf = TraceBuffer::new();
    let result = match exchange_traced(
        quadrant,
        &initial,
        &stack,
        &config.exchange_config(),
        &mut buf,
    ) {
        Ok(r) => r,
        Err(e) => return exchange_err(NAME, &e),
    };
    let events = buf.into_events();

    let mut current: Option<f64> = None;
    let mut best: Option<f64> = None;
    let mut run_end: Option<f64> = None;
    let mut accepted: u64 = 0;
    let mut uphill: u64 = 0;
    for e in &events {
        match e {
            Event::RunStart { initial_cost, .. } => {
                current = Some(*initial_cost);
                best = Some(*initial_cost);
                if initial_cost.to_bits() != result.stats.initial_cost.to_bits() {
                    return OracleReport::fail(NAME, "RunStart cost != stats.initial_cost");
                }
            }
            Event::MoveAccepted {
                delta,
                cost,
                uphill: up,
                ..
            } => {
                let Some(prev) = current else {
                    return OracleReport::fail(NAME, "move before RunStart");
                };
                let recomputed = cost - prev;
                if recomputed.to_bits() != delta.to_bits() {
                    return OracleReport::fail(
                        NAME,
                        format!(
                            "move {accepted}: Δ {delta:e} != cost step {recomputed:e} (bit-exact)"
                        ),
                    );
                }
                if *up != (*delta > 0.0) {
                    return OracleReport::fail(
                        NAME,
                        format!("move {accepted}: uphill flag {up} vs Δ {delta:e}"),
                    );
                }
                current = Some(*cost);
                if let Some(b) = best {
                    if *cost < b {
                        best = Some(*cost);
                    }
                }
                accepted += 1;
                if *up {
                    uphill += 1;
                }
            }
            Event::RunEnd {
                final_cost,
                accepted: acc,
                uphill_accepted,
                ..
            } => {
                run_end = Some(*final_cost);
                if *acc != accepted || *uphill_accepted != uphill {
                    return OracleReport::fail(
                        NAME,
                        format!("RunEnd counters ({acc}, {uphill_accepted}) != journal ({accepted}, {uphill})"),
                    );
                }
            }
            _ => {}
        }
    }
    let (Some(best), Some(final_cost)) = (best, run_end) else {
        return OracleReport::fail(NAME, "journal lacks RunStart/RunEnd");
    };
    if final_cost.to_bits() != best.to_bits() {
        return OracleReport::fail(
            NAME,
            format!("final cost {final_cost:e} != running minimum {best:e} (bit-exact)"),
        );
    }
    if result.stats.final_cost.to_bits() != final_cost.to_bits() {
        return OracleReport::fail(NAME, "stats.final_cost != RunEnd final cost");
    }
    if result.stats.accepted > result.stats.proposed
        || result.stats.uphill_accepted > result.stats.accepted
    {
        return OracleReport::fail(NAME, "inconsistent exchange statistics");
    }
    OracleReport::pass(
        NAME,
        format!("{accepted} deltas audited bit-exactly, {uphill} uphill"),
    )
}

/// Oracle 7 — tune determinism: the auto-tuner emits a byte-identical
/// `.tune` profile for worker-thread counts 1 and 2 and reproduces itself
/// on a rerun, over a small trial space built around this instance's own
/// verification schedule.
#[must_use]
pub fn check_tune_determinism(quadrant: &Quadrant, config: &VerifyConfig) -> OracleReport {
    const NAME: &str = "tune-determinism";
    let stack = match config.stack() {
        Ok(s) => s,
        Err(e) => return OracleReport::fail(NAME, format!("bad stack: {e}")),
    };
    // A tiny space anchored at the oracle's own short schedule: single
    // starts keep the walk cheap, and one two-start point exercises the
    // portfolio path inside a trial.
    let base = ClassConfig::from_configs(
        &config.exchange_config(),
        &PortfolioConfig {
            starts: 1,
            ..PortfolioConfig::default()
        },
    );
    let space = TrialSpace {
        points: vec![
            base,
            ClassConfig {
                cooling: 0.8,
                ..base
            },
            ClassConfig {
                moves_per_temp: base.moves_per_temp + 1,
                ..base
            },
            ClassConfig {
                starts: 2,
                prune_margin: 0.25,
                ..base
            },
        ],
    };
    let options = |threads: usize| TuneOptions {
        seed: config.exchange_seed,
        threads,
        rounds: 1,
    };
    let family = [("instance".to_owned(), quadrant.clone(), stack)];
    let mut baseline: Option<(String, usize)> = None;
    for (threads, label) in [(1usize, "threads 1"), (2, "threads 2"), (1, "rerun")] {
        let report = match tune(&family, &space, &options(threads)) {
            Ok(r) => r,
            Err(TuneError::Core(e)) => return exchange_err(NAME, &e),
            Err(e) => return OracleReport::fail(NAME, format!("tune failed: {e}")),
        };
        let bytes = write_tune(&report.profile);
        match &baseline {
            None => baseline = Some((bytes, report.trials)),
            Some((b, _)) if *b != bytes => {
                return OracleReport::fail(NAME, format!("profile differs under {label}"));
            }
            Some(_) => {}
        }
    }
    let (_, trials) = baseline.expect("three tune runs recorded a baseline");
    OracleReport::pass(
        NAME,
        format!(
            "profile byte-identical across threads 1/2 and a rerun ({} points, {trials} trials)",
            space.len()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_obs::NoopRecorder;

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(2u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(9u32, NetKind::Power)
            .build()
            .unwrap()
    }

    fn no_power() -> Quadrant {
        Quadrant::builder().row([1u32, 2, 3]).build().unwrap()
    }

    #[test]
    fn monotonicity_oracle_passes_on_fig5() {
        let r = check_monotonicity_preserved(&fig5(), &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
        assert_eq!(r.oracle, "monotonicity");
    }

    #[test]
    fn density_oracle_passes_on_fig5() {
        let r = check_density_conservation(&fig5(), &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn ir_cross_oracle_passes_on_fig5() {
        let r = check_ir_cross(&fig5(), &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
        assert!(r.detail.contains("sor/cg/dense"), "{}", r.detail);
    }

    #[test]
    fn determinism_oracle_passes_on_fig5() {
        let r = check_determinism(&fig5(), &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn cost_ledger_oracle_passes_on_fig5() {
        let r = check_cost_ledger(&fig5(), &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
        assert!(r.detail.contains("bit-exactly"), "{}", r.detail);
    }

    #[test]
    fn tune_determinism_oracle_passes_on_fig5() {
        let r = check_tune_determinism(&fig5(), &VerifyConfig::default());
        assert!(r.passed, "{}", r.detail);
        assert!(r.detail.contains("byte-identical"), "{}", r.detail);
    }

    #[test]
    fn powerless_instances_pass_vacuously() {
        let q = no_power();
        let cfg = VerifyConfig::default();
        for r in check_quadrant(&q, &cfg, &mut NoopRecorder) {
            assert!(r.passed, "{}: {}", r.oracle, r.detail);
        }
    }

    #[test]
    fn suite_emits_one_event_per_oracle() {
        let mut buf = TraceBuffer::new();
        let reports = check_quadrant(&fig5(), &VerifyConfig::default(), &mut buf);
        assert_eq!(reports.len(), ORACLE_NAMES.len());
        let oracle_events = buf
            .events()
            .iter()
            .filter(|e| matches!(e, Event::OracleChecked { .. }))
            .count();
        assert_eq!(oracle_events, ORACLE_NAMES.len());
        for (r, name) in reports.iter().zip(ORACLE_NAMES) {
            assert_eq!(r.oracle, name);
            assert!(r.passed, "{name}: {}", r.detail);
        }
    }

    #[test]
    fn stacked_instances_exercise_all_oracles() {
        let q = Quadrant::builder()
            .row([1u32, 2, 3, 4, 5])
            .row([6u32, 7, 8])
            .net_kind(2u32, NetKind::Power)
            .net_kind(7u32, NetKind::Power)
            .net_tier(3u32, copack_geom::TierId::new(2))
            .net_tier(8u32, copack_geom::TierId::new(2))
            .build()
            .unwrap();
        for r in check_quadrant(&q, &VerifyConfig::quick(2), &mut NoopRecorder) {
            assert!(r.passed, "{}: {}", r.oracle, r.detail);
        }
    }
}
