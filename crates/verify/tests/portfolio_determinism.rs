//! Property-based determinism oracles for the multi-start exchange
//! portfolio.
//!
//! The portfolio's contract is stronger than "same seed, same answer":
//! the winning plan, its replay journal, and the per-start report must
//! be **bit-identical for every thread count**, and pruned starts must
//! never displace the winner the reduction would have picked without
//! them. These properties are exercised here over randomly generated
//! quadrants (not just the Table 1 circuits), at several portfolio
//! widths and prune margins.

use copack_core::{
    dfa, exchange_portfolio, replay_journal, ExchangeConfig, PortfolioConfig, PortfolioMode,
    PortfolioResult, Schedule,
};
use copack_geom::{NetKind, Quadrant, StackConfig, TierId};
use proptest::prelude::*;

/// Strategy: a quadrant with 1..=4 rows of 2..=7 balls, net ids shuffled
/// deterministically from the seed. Net 1 and every third net are power
/// pads (the exchange needs at least one); with `tiers > 1` nets stripe
/// across tiers.
fn quadrant_strategy(tiers: u8) -> impl Strategy<Value = Quadrant> {
    (prop::collection::vec(2usize..=7, 1..=4), any::<u64>()).prop_map(move |(sizes, seed)| {
        let total: usize = sizes.iter().sum();
        let mut ids: Vec<u32> = (1..=total as u32).collect();
        let mut state = seed | 1;
        for i in (1..ids.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        let mut builder = Quadrant::builder();
        let mut cursor = 0;
        for &s in &sizes {
            builder = builder.row(ids[cursor..cursor + s].iter().copied());
            cursor += s;
        }
        for id in 1..=total as u32 {
            if id == 1 || id % 3 == 0 {
                builder = builder.net_kind(id, NetKind::Power);
            }
            if tiers > 1 {
                builder =
                    builder.net_tier(id, TierId::new(((id - 1) % u32::from(tiers) + 1) as u8));
            }
        }
        builder.build().expect("generated quadrants are valid")
    })
}

/// A schedule short enough for many proptest cases, long enough for
/// starts to diverge and prunes to fire.
fn fast_config(seed: u64) -> ExchangeConfig {
    ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            ..Schedule::default()
        },
        seed,
        ..ExchangeConfig::default()
    }
}

fn run_mode(
    q: &Quadrant,
    seed: u64,
    starts: u32,
    prune_margin: f64,
    threads: usize,
    mode: PortfolioMode,
) -> PortfolioResult {
    let initial = dfa(q, 1).expect("dfa");
    exchange_portfolio(
        q,
        &initial,
        &StackConfig::planar(),
        &fast_config(seed),
        &PortfolioConfig {
            starts,
            prune_margin,
            threads,
            mode,
            ..PortfolioConfig::default()
        },
    )
    .expect("portfolio runs")
}

fn run(q: &Quadrant, seed: u64, starts: u32, prune_margin: f64, threads: usize) -> PortfolioResult {
    run_mode(q, seed, starts, prune_margin, threads, PortfolioMode::Race)
}

/// Strategy for the prune margin: pruning off, aggressive, and the
/// default — the determinism contract must hold under all of them.
fn margin_strategy() -> impl Strategy<Value = f64> {
    (0usize..3).prop_map(|i| [f64::INFINITY, 0.0, 0.25][i])
}

/// Strategy over the cooperation modes: every contract in this file must
/// hold for `race`, `coop`, and `temper` alike.
fn mode_strategy() -> impl Strategy<Value = PortfolioMode> {
    (0usize..3).prop_map(|i| {
        [
            PortfolioMode::Race,
            PortfolioMode::Coop,
            PortfolioMode::Temper,
        ][i]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The winning plan, journal, winner identity, and the full per-start
    /// report are bit-identical across thread counts 1, 2, and 8 — and
    /// across a rerun — in every cooperation mode.
    #[test]
    fn the_portfolio_is_thread_count_invariant(
        q in quadrant_strategy(1),
        seed in any::<u64>(),
        starts in 1u32..=6,
        margin in margin_strategy(),
        mode in mode_strategy(),
    ) {
        let serial = run_mode(&q, seed, starts, margin, 1, mode);
        let rerun = run_mode(&q, seed, starts, margin, 1, mode);
        prop_assert_eq!(&serial.result.assignment, &rerun.result.assignment);
        prop_assert_eq!(&serial.journal, &rerun.journal);
        for threads in [2usize, 8] {
            let parallel = run_mode(&q, seed, starts, margin, threads, mode);
            prop_assert_eq!(&serial.result.assignment, &parallel.result.assignment);
            prop_assert_eq!(&serial.journal, &parallel.journal);
            prop_assert_eq!(serial.winner_start, parallel.winner_start);
            prop_assert_eq!(serial.winner_seed, parallel.winner_seed);
            prop_assert_eq!(
                serial.result.stats.final_cost.to_bits(),
                parallel.result.stats.final_cost.to_bits()
            );
            prop_assert_eq!(serial.starts.len(), parallel.starts.len());
            for (a, b) in serial.starts.iter().zip(&parallel.starts) {
                prop_assert_eq!(a.start, b.start);
                prop_assert_eq!(a.seed, b.seed);
                prop_assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
                prop_assert_eq!(a.pruned_at, b.pruned_at);
            }
        }
    }

    /// Pruned starts never affect the reduction: the winner is always a
    /// start that survived to the end, every pruned start's frozen best
    /// is strictly worse than the winning cost, and turning pruning off
    /// entirely never yields a better winner than the pruned portfolio
    /// found (pruning only discards provably-trailing trajectories).
    #[test]
    fn pruned_starts_never_affect_the_reduction(
        q in quadrant_strategy(1),
        seed in any::<u64>(),
        starts in 2u32..=6,
    ) {
        let pruned = run(&q, seed, starts, 0.0, 1);
        let winner = pruned
            .starts
            .iter()
            .find(|s| s.start == pruned.winner_start)
            .expect("winner is reported");
        prop_assert!(winner.pruned_at.is_none(), "the winner was pruned");
        for s in pruned.starts.iter().filter(|s| s.pruned_at.is_some()) {
            prop_assert!(
                s.best_cost > pruned.result.stats.final_cost,
                "pruned start {} (best {}) beats the winner ({})",
                s.start,
                s.best_cost,
                pruned.result.stats.final_cost
            );
        }
    }

    /// The winner's journal replays onto the initial assignment to the
    /// exact winning plan — the property `copack-verify`'s replay oracle
    /// relies on (also under stacking, where ω joins the cost) — in every
    /// cooperation mode. For `coop` this covers crossed-over slots: a
    /// crossover winner's journal is its parent's prefix plus the kick
    /// plus its own accepted moves, and the composition must still land
    /// on the winning plan. For `temper` it covers swapped rungs, whose
    /// journals never leave their slot by construction.
    #[test]
    fn the_winning_journal_replays_to_the_winning_plan(
        q in quadrant_strategy(2),
        seed in any::<u64>(),
        starts in 1u32..=4,
        margin in margin_strategy(),
        mode in mode_strategy(),
    ) {
        let initial = dfa(&q, 1).expect("dfa");
        let stack = StackConfig::stacked(2).expect("valid stack");
        let won = exchange_portfolio(
            &q,
            &initial,
            &stack,
            &fast_config(seed),
            &PortfolioConfig {
                starts,
                prune_margin: margin,
                threads: 1,
                mode,
                ..PortfolioConfig::default()
            },
        )
        .expect("portfolio runs");
        let replayed = replay_journal(&initial, &won.journal, won.best_len).expect("replays");
        prop_assert_eq!(&replayed, &won.result.assignment);
    }

    /// A zero-margin `coop` portfolio prunes aggressively and respawns
    /// slots from the leader's plan; every one of those crossed-over
    /// slots must still satisfy the replay and determinism contracts,
    /// and the `coop` winner can never lose to the same-budget `race`
    /// portfolio's start 0 (the shared, structurally-exempt baseline).
    #[test]
    fn crossed_over_slots_uphold_the_contracts(
        q in quadrant_strategy(1),
        seed in any::<u64>(),
        starts in 2u32..=6,
    ) {
        let coop = run_mode(&q, seed, starts, 0.0, 1, PortfolioMode::Coop);
        let initial = dfa(&q, 1).expect("dfa");
        let replayed =
            replay_journal(&initial, &coop.journal, coop.best_len).expect("replays");
        prop_assert_eq!(&replayed, &coop.result.assignment);
        // Start 0 runs the caller's seed in both modes and is never
        // pruned, so its trajectory is mode-invariant: coop's winner is
        // at worst that shared baseline.
        let race = run_mode(&q, seed, 1, 0.0, 1, PortfolioMode::Race);
        prop_assert!(
            coop.result.stats.final_cost <= race.result.stats.final_cost,
            "coop winner {} lost to its own start 0 at {}",
            coop.result.stats.final_cost,
            race.result.stats.final_cost
        );
    }

    /// Tempering never prunes: every rung survives to the reduction,
    /// whatever the margin knob says, and the winner replays.
    #[test]
    fn tempering_rungs_all_survive(
        q in quadrant_strategy(1),
        seed in any::<u64>(),
        starts in 2u32..=5,
        margin in margin_strategy(),
    ) {
        let won = run_mode(&q, seed, starts, margin, 1, PortfolioMode::Temper);
        prop_assert_eq!(won.pruned(), 0);
        prop_assert_eq!(won.starts.len(), starts as usize);
        let initial = dfa(&q, 1).expect("dfa");
        let replayed = replay_journal(&initial, &won.journal, won.best_len).expect("replays");
        prop_assert_eq!(&replayed, &won.result.assignment);
    }
}
