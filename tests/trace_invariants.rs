//! Trace-based invariants of the annealer and the telemetry layer.
//!
//! These tests drive [`exchange_traced`] with an in-memory
//! [`TraceBuffer`] and check properties that end-state equality cannot:
//! the Metropolis rule's acceptance statistics, exact replay of the final
//! cost from the accepted-move events, the Δ_IR no-op cache contract, and
//! deterministic merging of per-quadrant traces across thread counts.

use copack::core::{
    dfa, exchange, exchange_traced, plan_package_traced, Acceptance, Codesign, DeltaIrTracker,
    ExchangeConfig, Schedule,
};
use copack::gen::circuits;
use copack::geom::{FingerIdx, NetKind, Package, Quadrant, StackConfig};
use copack::obs::{replay_final_cost, split_runs, Event, TraceBuffer, TraceSummary};

/// The Fig. 5 instance with power pads, as in `kernel_equivalence.rs`.
fn fig5_with_power() -> Quadrant {
    Quadrant::builder()
        .row([10u32, 2, 4, 7, 0])
        .row([1u32, 3, 5, 8])
        .row([11u32, 6, 9])
        .net_kind(3u32, NetKind::Power)
        .net_kind(6u32, NetKind::Power)
        .net_kind(9u32, NetKind::Power)
        .build()
        .expect("the Fig. 5 instance builds")
}

fn config(seed: u64) -> ExchangeConfig {
    ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        seed,
        ..ExchangeConfig::default()
    }
}

/// Recording must not perturb the annealer: the traced run returns the
/// same (bit-identical) result as the untraced one.
#[test]
fn recording_does_not_perturb_the_result() {
    for circuit in circuits() {
        let q = circuit.build_quadrant().expect("circuit builds");
        let initial = dfa(&q, 1).expect("dfa");
        let stack = StackConfig::planar();
        let cfg = config(7);
        let plain = exchange(&q, &initial, &stack, &cfg).expect("runs");
        let mut buffer = TraceBuffer::with_rejected();
        let traced = exchange_traced(&q, &initial, &stack, &cfg, &mut buffer).expect("runs");
        assert_eq!(plain, traced, "{}", circuit.name);
        assert_eq!(
            plain.stats.final_cost.to_bits(),
            traced.stats.final_cost.to_bits(),
            "{}: final cost bits",
            circuit.name
        );
        assert!(!buffer.is_empty());
    }
}

/// Empirical uphill acceptance matches the Metropolis closed form.
///
/// The kernel records every accepted move and (with `with_rejected`)
/// every Metropolis-rejected one — constraint rejections never reach the
/// acceptance rule and produce no event. Each uphill proposal at step `s`
/// is an independent Bernoulli(p) trial with
/// `p = Acceptance::probability(delta, T_s)`, so the observed uphill
/// acceptances must land within a few standard deviations of the
/// expected sum.
#[test]
fn uphill_acceptance_matches_metropolis_statistics() {
    let mut observed = 0.0f64;
    let mut expected = 0.0f64;
    let mut variance = 0.0f64;
    for (circuit, seed) in circuits().iter().zip([3u64, 5, 11, 17, 29]) {
        let q = circuit.build_quadrant().expect("circuit builds");
        let initial = dfa(&q, 1).expect("dfa");
        let mut buffer = TraceBuffer::with_rejected();
        exchange_traced(
            &q,
            &initial,
            &StackConfig::planar(),
            &config(seed),
            &mut buffer,
        )
        .expect("runs");
        let events = buffer.into_events();

        // Temperature of each step, from the TempStep markers.
        let temp_of: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                Event::TempStep { temperature, .. } => Some(*temperature),
                _ => None,
            })
            .collect();
        for e in &events {
            let (step, delta) = match e {
                Event::MoveAccepted {
                    step,
                    delta,
                    uphill: true,
                    ..
                } => {
                    observed += 1.0;
                    (*step, *delta)
                }
                // Every recorded rejection is an uphill proposal that
                // lost the Metropolis draw.
                Event::MoveRejected { step, delta, .. } => (*step, *delta),
                _ => continue,
            };
            let p = Acceptance::Metropolis.probability(delta, temp_of[step as usize]);
            expected += p;
            variance += p * (1.0 - p);
        }
    }
    assert!(
        expected > 50.0,
        "too few uphill proposals ({expected:.1} expected, {observed} observed)"
    );
    let tolerance = 5.0 * variance.sqrt().max(1.0);
    assert!(
        (observed - expected).abs() <= tolerance,
        "uphill acceptances {observed} vs Metropolis expectation {expected:.1} (tolerance {tolerance:.1})"
    );
}

/// The accepted-move costs in the trace replay to the run's final cost
/// bit for bit — no re-accumulation drift.
#[test]
fn accepted_moves_replay_to_the_exact_final_cost() {
    for circuit in circuits() {
        for seed in [0u64, 42, 2009] {
            let q = circuit.build_quadrant().expect("circuit builds");
            let initial = dfa(&q, 1).expect("dfa");
            let mut buffer = TraceBuffer::new();
            let result = exchange_traced(
                &q,
                &initial,
                &StackConfig::planar(),
                &config(seed),
                &mut buffer,
            )
            .expect("runs");
            let events = buffer.into_events();
            let runs = split_runs(&events);
            assert_eq!(runs.len(), 1, "{} seed {seed}", circuit.name);
            let replayed = replay_final_cost(runs[0]).expect("run has a start");
            assert_eq!(
                replayed.to_bits(),
                result.stats.final_cost.to_bits(),
                "{} seed {seed}: replayed {replayed} vs {}",
                circuit.name,
                result.stats.final_cost
            );
        }
    }
}

/// [`DeltaIrTracker`] contract behind the kernel's ΔIR caching: a swap
/// reported as a no-op (`apply_adjacent_swap` returns `false`) leaves
/// `delta_ir()` bit-identical, so the kernel may reuse the cached term.
#[test]
fn ir_noop_swaps_never_change_the_cached_delta_ir() {
    let q = fig5_with_power();
    let initial = dfa(&q, 1).expect("dfa");
    let mut tracker = DeltaIrTracker::new(&q, &initial).expect("tracker builds");
    let alpha = initial.finger_count();
    let mut score = tracker.delta_ir();
    let mut noops = 0;
    let mut changes = 0;
    // Deterministic LCG walk over adjacent swaps.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..10_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pos = 1 + (state >> 33) as u32 % (alpha as u32 - 1);
        let changed = tracker.apply_adjacent_swap(FingerIdx::new(pos));
        let after = tracker.delta_ir();
        if changed {
            changes += 1;
        } else {
            noops += 1;
            assert_eq!(
                score.to_bits(),
                after.to_bits(),
                "no-op swap at {pos} changed the cached ΔIR"
            );
        }
        score = after;
    }
    assert!(
        noops > 0 && changes > 0,
        "walk exercised both branches ({noops} noops, {changes} changes)"
    );
}

/// Per-quadrant traces merge deterministically: every thread count
/// produces the same event stream (wall-clock `seconds` aside) and the
/// identical [`TraceSummary`].
#[test]
fn package_traces_merge_identically_across_thread_counts() {
    let q = circuits()[0].build_quadrant().expect("circuit builds");
    let capture = |threads: usize| {
        let config = Codesign {
            threads,
            ..Codesign::default()
        };
        let package = Package::uniform(q.clone());
        let mut buffer = TraceBuffer::new();
        let report = plan_package_traced(&package, &config, &mut buffer).expect("plans");
        (report, buffer.into_events())
    };
    let (report1, events1) = capture(1);
    for threads in [0usize, 4] {
        let (report_n, events_n) = capture(threads);
        assert_eq!(report1, report_n, "threads {threads}: report");
        assert_eq!(
            events1.len(),
            events_n.len(),
            "threads {threads}: event count"
        );
        for (a, b) in events1.iter().zip(&events_n) {
            match (a, b) {
                // The side wall time is the one legitimately
                // thread-count-dependent field.
                (Event::SideEnd { side: sa, .. }, Event::SideEnd { side: sb, .. }) => {
                    assert_eq!(sa, sb, "threads {threads}");
                }
                _ => assert_eq!(a.to_json(), b.to_json(), "threads {threads}"),
            }
        }
        assert_eq!(
            TraceSummary::from_events(&events1),
            TraceSummary::from_events(&events_n),
            "threads {threads}: summary"
        );
    }
}
