//! Statistical quality-regression suite over the paper's Table 1
//! circuits.
//!
//! Every algorithm the paper measures — the Random / IFA / DFA
//! assignments (Table 2) and the IR-drop-aware exchange in its 2-D and
//! 4-tier-stacking forms (Table 3) — runs at fixed seeds, and the
//! resulting quality metrics must stay inside tolerance bands pinned in
//! [`REFERENCES`]. The bands were recorded from the current
//! implementation at these exact seeds and sized generously (several
//! percent, wider for the stochastic exchange averages) so harmless
//! refactors pass while a quality regression — a worse assignment, a
//! broken cost term, a mis-seeded annealer — fails loudly. On failure
//! the assert prints a check-style per-circuit verdict table with every
//! metric, its band, and its verdict.
//!
//! A second test pins the portfolio acceptance criterion: on every
//! circuit an eight-start portfolio is never worse than the single
//! start it contains.

use std::fmt::Write as _;

use copack::core::{
    assign, exchange, exchange_portfolio, exchange_warm, AssignMethod, CancelToken, Codesign,
    ExchangeConfig, PortfolioConfig, PortfolioMode, Schedule,
};
use copack::gen::{churn, circuits, STANDARD_CHURN};
use copack::geom::StackConfig;
use copack::obs::NoopRecorder;
use copack::power::GridSpec;
use copack::route::{analyze, DensityModel};
use copack::verify::REPLAN_TOLERANCE;

/// Seeds for the random-assignment baseline (same set Table 2's harness
/// averages over).
const RANDOM_SEEDS: [u64; 5] = [11, 23, 37, 51, 73];

/// Seeds for the stochastic exchange averages (same set Table 3's
/// harness averages over).
const EXCHANGE_SEEDS: [u64; 3] = [0xC0DE, 0xBEEF, 0xF00D];

/// An inclusive tolerance band for one quality metric.
#[derive(Clone, Copy)]
struct Band {
    lo: f64,
    hi: f64,
}

const fn band(lo: f64, hi: f64) -> Band {
    Band { lo, hi }
}

impl Band {
    fn holds(self, v: f64) -> bool {
        v.is_finite() && v >= self.lo && v <= self.hi
    }
}

/// Pinned reference bands for one Table 1 circuit.
struct Reference {
    name: &'static str,
    /// Flyline max density of the random baseline, averaged over
    /// [`RANDOM_SEEDS`].
    random_density: Band,
    /// Flyline max density of the IFA order (deterministic).
    ifa_density: Band,
    /// Flyline max density of the DFA order (deterministic).
    dfa_density: Band,
    /// Total wirelength of the DFA order, one quadrant (deterministic).
    dfa_wirelength: Band,
    /// 2-D IR-drop improvement %, averaged over [`EXCHANGE_SEEDS`].
    ir_improvement: Band,
    /// 4-tier bonding-wire (omega) improvement %, averaged over
    /// [`EXCHANGE_SEEDS`].
    omega_improvement: Band,
    /// Max density after the 2-D exchange, averaged over
    /// [`EXCHANGE_SEEDS`] (the paper allows a couple of units of growth,
    /// not a collapse back to random quality).
    density_after_exchange: Band,
}

/// The pinned bands. Deterministic metrics get ±1 density unit or ±2%
/// wirelength; seed-averaged exchange metrics get wider statistical
/// bands.
const REFERENCES: [Reference; 5] = [
    Reference {
        // Recorded: 12.60 / 7 / 6 / 177.22 / 31.35% / 24.07% / 7.00
        name: "circuit 1",
        random_density: band(11.0, 14.2),
        ifa_density: band(6.0, 8.0),
        dfa_density: band(5.0, 7.0),
        dfa_wirelength: band(173.0, 181.0),
        ir_improvement: band(20.0, 45.0),
        omega_improvement: band(12.0, 40.0),
        density_after_exchange: band(5.0, 8.5),
    },
    Reference {
        // Recorded: 12.40 / 8 / 7 / 199.71 / 14.68% / 6.67% / 7.00
        name: "circuit 2",
        random_density: band(10.9, 13.9),
        ifa_density: band(7.0, 9.0),
        dfa_density: band(6.0, 8.0),
        dfa_wirelength: band(195.0, 204.0),
        ir_improvement: band(8.0, 25.0),
        omega_improvement: band(2.0, 15.0),
        density_after_exchange: band(5.0, 9.0),
    },
    Reference {
        // Recorded: 12.60 / 8 / 7 / 219.29 / 2.74% / 7.69% / 7.00
        name: "circuit 3",
        random_density: band(11.1, 14.1),
        ifa_density: band(7.0, 9.0),
        dfa_density: band(6.0, 8.0),
        dfa_wirelength: band(214.0, 224.0),
        ir_improvement: band(0.5, 8.0),
        omega_improvement: band(2.0, 16.0),
        density_after_exchange: band(5.0, 9.0),
    },
    Reference {
        // Recorded: 14.00 / 8 / 7 / 363.47 / 2.45% / 13.64% / 7.00
        name: "circuit 4",
        random_density: band(12.5, 15.5),
        ifa_density: band(7.0, 9.0),
        dfa_density: band(6.0, 8.0),
        dfa_wirelength: band(356.0, 371.0),
        ir_improvement: band(0.5, 8.0),
        omega_improvement: band(6.0, 25.0),
        density_after_exchange: band(5.0, 9.0),
    },
    Reference {
        // Recorded: 15.60 / 8 / 7 / 459.44 / 1.74% / 11.11% / 6.00
        name: "circuit 5",
        random_density: band(14.1, 17.1),
        ifa_density: band(7.0, 9.0),
        dfa_density: band(6.0, 8.0),
        dfa_wirelength: band(450.0, 469.0),
        ir_improvement: band(0.2, 6.0),
        omega_improvement: band(5.0, 20.0),
        density_after_exchange: band(4.5, 8.5),
    },
];

/// The Table 3 flow at test speed: a coarse IR grid and a short
/// schedule, still long enough for the exchange to improve the IR drop.
fn fast_flow() -> Codesign {
    Codesign {
        grid: GridSpec::default_chip(16),
        exchange: ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 1,
                final_temp_ratio: 1e-2,
                cooling: 0.85,
                ..Schedule::default()
            },
            ..ExchangeConfig::default()
        },
        ..Codesign::default()
    }
}

/// One measured metric with its band and verdict.
struct Check {
    circuit: &'static str,
    metric: &'static str,
    actual: f64,
    band: Band,
}

impl Check {
    fn passes(&self) -> bool {
        self.band.holds(self.actual)
    }
}

/// Renders the check-style verdict table (every metric of every circuit,
/// failures marked), mirroring `copack check`'s output shape.
fn verdict_table(checks: &[Check]) -> String {
    let mut out =
        String::from("circuit   metric               actual      band                  verdict\n");
    for c in checks {
        let _ = writeln!(
            out,
            "{:<9} {:<20} {:<11.4} [{:.4}, {:.4}]{:>3} {}",
            c.circuit,
            c.metric,
            c.actual,
            c.band.lo,
            c.band.hi,
            "",
            if c.passes() { "ok" } else { "FAIL" }
        );
    }
    out
}

#[test]
fn table1_quality_stays_inside_the_pinned_bands() {
    let mut checks: Vec<Check> = Vec::new();
    let base = fast_flow();

    for (c, reference) in circuits().iter().zip(&REFERENCES) {
        assert_eq!(c.name, reference.name, "reference table out of sync");
        let q = c.build_quadrant().expect("circuit builds");

        // Table 2 shape: assignment quality at fixed seeds.
        let mut random_density = 0.0;
        for &seed in &RANDOM_SEEDS {
            let a = assign(&q, AssignMethod::Random { seed }).expect("random");
            random_density += f64::from(
                analyze(&q, &a, DensityModel::Geometric)
                    .expect("legal")
                    .max_density,
            );
        }
        random_density /= RANDOM_SEEDS.len() as f64;

        let ifa = assign(&q, AssignMethod::Ifa).expect("ifa");
        let ifa_density = analyze(&q, &ifa, DensityModel::Geometric)
            .expect("legal")
            .max_density;
        let dfa = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let dfa_report = analyze(&q, &dfa, DensityModel::Geometric).expect("legal");

        // Table 3 shape: the exchange at fixed seeds, 2-D and 4-tier.
        let mut ir_improvement = 0.0;
        let mut density_after = 0.0;
        for &seed in &EXCHANGE_SEEDS {
            let mut flow = base.clone();
            flow.exchange.seed = seed;
            let report = flow.run(&q).expect("2-D flow runs");
            ir_improvement += report.ir_improvement_percent.unwrap_or(0.0);
            density_after += f64::from(report.routing_after.max_density);
        }
        ir_improvement /= EXCHANGE_SEEDS.len() as f64;
        density_after /= EXCHANGE_SEEDS.len() as f64;

        let stacked = c.stacked(4);
        let q4 = stacked.build_quadrant().expect("stacked circuit builds");
        let flow4 = Codesign {
            stack: stacked.stack().expect("valid stack"),
            ..base.clone()
        };
        let mut omega_improvement = 0.0;
        for &seed in &EXCHANGE_SEEDS {
            let mut flow = flow4.clone();
            flow.exchange.seed = seed;
            let report = flow.run(&q4).expect("stacked flow runs");
            omega_improvement += report.omega_improvement_percent.unwrap_or(0.0);
        }
        omega_improvement /= EXCHANGE_SEEDS.len() as f64;

        for (metric, actual, b) in [
            ("random density", random_density, reference.random_density),
            ("ifa density", f64::from(ifa_density), reference.ifa_density),
            (
                "dfa density",
                f64::from(dfa_report.max_density),
                reference.dfa_density,
            ),
            (
                "dfa wirelength",
                dfa_report.total_wirelength,
                reference.dfa_wirelength,
            ),
            ("ir improvement %", ir_improvement, reference.ir_improvement),
            (
                "omega improvement %",
                omega_improvement,
                reference.omega_improvement,
            ),
            (
                "density after exch",
                density_after,
                reference.density_after_exchange,
            ),
        ] {
            checks.push(Check {
                circuit: reference.name,
                metric,
                actual,
                band: b,
            });
        }
    }

    let failed = checks.iter().filter(|c| !c.passes()).count();
    assert!(
        failed == 0,
        "{failed} quality metric(s) left their pinned band:\n{}",
        verdict_table(&checks)
    );
}

/// Replan quality bands under the standard 10%-net-churn ECO: on every
/// Table 1 circuit the warm replan must land in the same feasibility
/// class as a from-scratch plan of the edited instance (both legal,
/// both analysed), with its final cost inside the `replan_vs_scratch`
/// oracle's band and its routing density inside a pinned range. The
/// ratio metric is `warm / (scratch + slack)` where slack is one
/// discrete cost quantum (ρ + φ) — the same absolute allowance the
/// oracle grants tiny near-zero-cost instances.
#[test]
fn replan_quality_stays_inside_the_pinned_bands_on_every_circuit() {
    // Recorded worst-case ratios at these seeds sit well under 1.0 on
    // every circuit (the warm start usually *wins*); the band tops out
    // at the oracle's multiplicative tolerance.
    let ratio_band = band(0.0, REPLAN_TOLERANCE);
    // Post-replan density: same range the post-exchange bands allow,
    // with one extra unit for the churned (slightly different) netlist.
    let density_band = band(4.0, 10.0);

    let base_config = fast_flow().exchange;
    let slack = base_config.weights.rho + base_config.weights.phi;
    let mut checks: Vec<Check> = Vec::new();

    for (c, reference) in circuits().iter().zip(&REFERENCES) {
        let q = c.build_quadrant().expect("circuit builds");
        let mut worst_ratio: f64 = 0.0;
        let mut density_after = 0.0;

        for &seed in &EXCHANGE_SEEDS {
            let mut config = base_config.clone();
            config.seed = seed;

            // The previous plan of the pre-edit instance.
            let initial = assign(&q, AssignMethod::dfa_default()).expect("dfa");
            let previous = exchange(&q, &initial, &StackConfig::planar(), &config)
                .expect("baseline exchange runs")
                .assignment;

            // The ECO: standard churn, keyed off the exchange seed.
            let edited = churn(&q, seed, STANDARD_CHURN).expect("churn applies");

            // Warm replan vs from-scratch plan of the edited instance.
            let warm = exchange_warm(
                &edited,
                &previous,
                &StackConfig::planar(),
                &config,
                &mut NoopRecorder,
                &CancelToken::new(),
            )
            .expect("warm replan runs");
            let scratch_initial = assign(&edited, AssignMethod::dfa_default()).expect("dfa");
            let scratch = exchange(&edited, &scratch_initial, &StackConfig::planar(), &config)
                .expect("scratch exchange runs");

            // Same feasibility class: both plans are complete and legal
            // (analyze rejects anything else).
            let warm_report =
                analyze(&edited, &warm.assignment, DensityModel::Geometric).expect("warm is legal");
            analyze(&edited, &scratch.assignment, DensityModel::Geometric)
                .expect("scratch is legal");

            let ratio = warm.stats.final_cost / (scratch.stats.final_cost + slack);
            worst_ratio = worst_ratio.max(ratio);
            density_after += f64::from(warm_report.max_density);
        }
        density_after /= EXCHANGE_SEEDS.len() as f64;

        checks.push(Check {
            circuit: reference.name,
            metric: "replan cost ratio",
            actual: worst_ratio,
            band: ratio_band,
        });
        checks.push(Check {
            circuit: reference.name,
            metric: "replan density",
            actual: density_after,
            band: density_band,
        });
    }

    let failed = checks.iter().filter(|c| !c.passes()).count();
    assert!(
        failed == 0,
        "{failed} replan metric(s) left their pinned band:\n{}",
        verdict_table(&checks)
    );
}

#[test]
fn portfolio_of_eight_never_loses_to_a_single_start_on_any_circuit() {
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    for c in circuits() {
        let q = c.build_quadrant().expect("circuit builds");
        let initial = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let run = |starts: u32| {
            exchange_portfolio(
                &q,
                &initial,
                &StackConfig::planar(),
                &config,
                &PortfolioConfig {
                    starts,
                    threads: 1,
                    ..PortfolioConfig::default()
                },
            )
            .expect("portfolio runs")
        };
        let single = run(1);
        let wide = run(8);
        assert!(
            wide.result.stats.final_cost <= single.result.stats.final_cost,
            "{}: K=8 winner {:.6} worse than K=1 {:.6}",
            c.name,
            wide.result.stats.final_cost,
            single.result.stats.final_cost
        );
    }
}

/// The cooperative-mode quality chain, per Table 1 circuit × three
/// seeds: at equal total move budget (every mode runs the same K-start
/// schedule — tempering only re-scales rung temperatures, which leaves
/// the step count unchanged, and coop replaces race's fresh respawns
/// with crossover respawns of the same remaining length), the `coop`
/// winner must not lose to `race` and the `temper` winner must not lose
/// to `coop` beyond a small tolerance band. The band exists because the
/// chain is a statistical dominance claim, not an invariant: a fresh
/// race respawn can get lucky where a crossover respawn inherits a
/// local basin. Recorded worst ratios at these seeds are ≤ 1.0 for
/// every link (cooperation usually *wins*); the band tops out a few
/// percent above parity so a real regression — a broken kick, a ladder
/// that stops mixing — fails loudly with the verdict table.
#[test]
fn cooperative_modes_form_a_quality_chain_on_every_circuit() {
    // One discrete cost quantum of additive slack (as the replan bands
    // use), so near-parity links on cheap circuits don't flap. The
    // schedule is the Table 3 test flow's — deep enough for every mode
    // to converge; at these seeds all three find the same winner on
    // every circuit, so the recorded ratios are exactly 1.0.
    let base_config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    let slack = base_config.weights.rho + base_config.weights.phi;
    let ratio_band = band(0.0, 1.05);
    let mut checks: Vec<Check> = Vec::new();

    for (c, reference) in circuits().iter().zip(&REFERENCES) {
        let q = c.build_quadrant().expect("circuit builds");
        let initial = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let mut worst_coop: f64 = 0.0;
        let mut worst_temper: f64 = 0.0;
        for &seed in &EXCHANGE_SEEDS {
            let mut config = base_config.clone();
            config.seed = seed;
            let run = |mode: PortfolioMode| {
                exchange_portfolio(
                    &q,
                    &initial,
                    &StackConfig::planar(),
                    &config,
                    &PortfolioConfig {
                        starts: 8,
                        threads: 1,
                        mode,
                        ..PortfolioConfig::default()
                    },
                )
                .expect("portfolio runs")
                .result
                .stats
                .final_cost
            };
            let race = run(PortfolioMode::Race);
            let coop = run(PortfolioMode::Coop);
            let temper = run(PortfolioMode::Temper);
            worst_coop = worst_coop.max(coop / (race + slack));
            worst_temper = worst_temper.max(temper / (coop + slack));
        }
        checks.push(Check {
            circuit: reference.name,
            metric: "coop/race ratio",
            actual: worst_coop,
            band: ratio_band,
        });
        checks.push(Check {
            circuit: reference.name,
            metric: "temper/coop ratio",
            actual: worst_temper,
            band: ratio_band,
        });
    }

    let failed = checks.iter().filter(|c| !c.passes()).count();
    assert!(
        failed == 0,
        "{failed} mode-chain metric(s) left their pinned band:\n{}",
        verdict_table(&checks)
    );
}

/// The crossover payoff, pinned: on circuit 1 under the starved
/// schedule all eight of race's independent starts converge to the same
/// local minimum (cost 10.33 at these seeds) — the plateau ROADMAP item
/// 2 names. Coop's leader-seeded kick respawns escape it (recorded:
/// 2.78 at 0xC0DE, 0.0 at 0xBEEF). The test asserts the aggregate form:
/// coop's best-of-seeds strictly beats race's best-of-seeds, so a
/// regression that turns the kick into a no-op fails loudly.
#[test]
fn coop_crossover_escapes_the_shared_local_minimum_on_circuit_1() {
    let schedule = Schedule {
        moves_per_temp_per_finger: 1,
        final_temp_ratio: 5e-2,
        cooling: 0.7,
        ..Schedule::default()
    };
    let c = &circuits()[0];
    let q = c.build_quadrant().expect("circuit builds");
    let initial = assign(&q, AssignMethod::dfa_default()).expect("dfa");
    let mut best_race = f64::INFINITY;
    let mut best_coop = f64::INFINITY;
    for &seed in &EXCHANGE_SEEDS {
        let config = ExchangeConfig {
            schedule,
            seed,
            ..ExchangeConfig::default()
        };
        let run = |mode: PortfolioMode| {
            exchange_portfolio(
                &q,
                &initial,
                &StackConfig::planar(),
                &config,
                &PortfolioConfig {
                    starts: 8,
                    threads: 1,
                    mode,
                    ..PortfolioConfig::default()
                },
            )
            .expect("portfolio runs")
            .result
            .stats
            .final_cost
        };
        best_race = best_race.min(run(PortfolioMode::Race));
        best_coop = best_coop.min(run(PortfolioMode::Coop));
    }
    assert!(
        best_coop < best_race,
        "coop best-of-seeds {best_coop:.4} no longer beats race's {best_race:.4} — \
         the crossover kick stopped escaping the shared local minimum"
    );
}

/// `--portfolio-mode race` is the pre-cooperative portfolio, bit for
/// bit: an explicit `Race` with arbitrary (inert) kick/ladder knobs
/// must reproduce the default-config result exactly on every circuit —
/// the regression pin that keeps every pre-PR golden, cache key, and
/// oracle honest now that the mode enum exists.
#[test]
fn race_mode_is_bit_identical_to_the_pre_mode_portfolio() {
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 1e-2,
            cooling: 0.85,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    for c in circuits() {
        let q = c.build_quadrant().expect("circuit builds");
        let initial = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let run = |portfolio: PortfolioConfig| {
            exchange_portfolio(&q, &initial, &StackConfig::planar(), &config, &portfolio)
                .expect("portfolio runs")
        };
        let default_cfg = run(PortfolioConfig {
            starts: 8,
            threads: 1,
            ..PortfolioConfig::default()
        });
        let explicit_race = run(PortfolioConfig {
            starts: 8,
            threads: 1,
            mode: PortfolioMode::Race,
            kick_size: 17,     // inert outside coop
            ladder_ratio: 3.5, // inert outside temper
            ..PortfolioConfig::default()
        });
        assert_eq!(
            default_cfg, explicit_race,
            "{}: explicit race with exotic inert knobs diverged from the default portfolio",
            c.name
        );
        assert_eq!(default_cfg.journal, explicit_race.journal, "{}", c.name);
    }
}

/// The K=8 regression the baseline-relative prune rule fixed: under
/// leader-relative pruning, widening the portfolio tightened the early
/// thresholds and could abandon (mid-descent) the very start a narrower
/// portfolio carried to the win — on circuit 5, K=2/4 found 8.64 while
/// K=8 returned 9.53. With prune verdicts made against start 0's
/// K-invariant trajectory, widening only adds candidates, so the
/// winner's cost must be monotone in K on every circuit. This uses the
/// starved bench schedule, the regime where the regression showed.
#[test]
fn portfolio_quality_is_monotone_in_k_on_every_circuit() {
    let config = ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 1,
            final_temp_ratio: 5e-2,
            cooling: 0.7,
            ..Schedule::default()
        },
        ..ExchangeConfig::default()
    };
    for c in circuits() {
        let q = c.build_quadrant().expect("circuit builds");
        let initial = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let mut previous = f64::INFINITY;
        for starts in [1u32, 2, 4, 8] {
            let won = exchange_portfolio(
                &q,
                &initial,
                &StackConfig::planar(),
                &config,
                &PortfolioConfig {
                    starts,
                    threads: 1,
                    ..PortfolioConfig::default()
                },
            )
            .expect("portfolio runs");
            let cost = won.result.stats.final_cost;
            assert!(
                cost <= previous,
                "{}: K={starts} winner {:.6} worse than K={} at {:.6}",
                c.name,
                cost,
                starts / 2,
                previous
            );
            previous = cost;
        }
    }
}
