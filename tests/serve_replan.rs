//! The daemon's incremental-replan path, end to end against the real
//! `copack serve` binary: a replan request answers untouched quadrants
//! from the tiered cache (memory or disk), runs workers only on the
//! dirty set, folds the reuse rate into `--metrics`, and survives a
//! `SIGKILL` between the original submission and the replan — the
//! successor daemon reproduces the replan byte-identically from the
//! warm disk store.

mod serve_harness;

use copack_core::diff_quadrant;
use copack_gen::{churn, STANDARD_CHURN};
use copack_io::parse_quadrant;
use copack_serve::{JobClass, JobSpec};
use serve_harness::{circuit_text, Daemon, Scratch};

/// A planning spec with the exchange on (the only mode where `prev`
/// can matter).
fn exchange_spec(circuit: String) -> JobSpec {
    let mut spec = JobSpec::new(circuit);
    spec.exchange = true;
    spec
}

/// An ECO'd copy of circuit `index` under the standard churn, as
/// circuit-file text. The delta is guaranteed non-empty.
fn churned_circuit_text(index: usize, seed: u64) -> String {
    let (name, base) = parse_quadrant(&circuit_text(index)).expect("circuit parses");
    let edited = churn(&base, seed, STANDARD_CHURN).expect("churn applies");
    assert!(
        !diff_quadrant(&base, &edited).is_empty(),
        "the churn must actually edit the instance"
    );
    copack_io::write_quadrant(&name, &edited)
}

#[test]
fn a_replan_reuses_untouched_quadrants_and_recomputes_the_dirty_one() {
    let scratch = Scratch::new("replan_reuse");
    let daemon = Daemon::spawn(&scratch, "a", &["--workers", "2", "--metrics"]);
    let mut client = daemon.client();

    // The original submission: three quadrants planned as a batch.
    let specs: Vec<JobSpec> = (1..=3).map(|i| exchange_spec(circuit_text(i))).collect();
    let first = client
        .batch(&specs, JobClass::Interactive, |_, _| {})
        .expect("original batch plans");
    assert_eq!(first.summary.failed, 0);
    let prev_of_2 = first
        .items
        .iter()
        .find(|(seq, _)| *seq == 1)
        .and_then(|(_, r)| r.as_ref().ok())
        .expect("circuit 2 planned")
        .assignment
        .clone();

    // The ECO touches only circuit 2: its replan spec carries the
    // edited circuit and the previous plan; circuits 1 and 3 resubmit
    // unchanged specs.
    let mut dirty = exchange_spec(churned_circuit_text(2, 7));
    dirty.prev = Some(prev_of_2);
    let replan_specs = vec![specs[0].clone(), dirty, specs[2].clone()];
    let outcome = client
        .replan(&replan_specs, JobClass::Interactive, |_, _| {})
        .expect("replan streams");
    assert_eq!(outcome.summary.failed, 0);

    for (seq, result) in &outcome.items {
        let plan = result.as_ref().expect("replan item succeeds");
        match seq {
            // Untouched quadrants answer from the in-memory tier —
            // no worker ran for them.
            0 | 2 => assert_eq!(plan.cache, "hit", "seq {seq} should be reused"),
            1 => {
                assert_eq!(plan.cache, "miss", "the dirty quadrant recomputes");
                assert!(
                    plan.report.contains("after replan"),
                    "the dirty quadrant warm-starts from prev: {}",
                    plan.report
                );
            }
            other => panic!("unexpected seq {other}"),
        }
    }

    // The daemon's closing --metrics block reports the reuse rate.
    let summary = daemon.shutdown();
    assert!(
        summary.contains("replan requests 1  quadrants 3  reused 2 (reuse-rate 66.7%)"),
        "metrics report the reuse rate: {summary}"
    );
}

#[test]
fn a_replan_against_a_portfolio_winner_warm_starts_from_its_frozen_journal() {
    let scratch = Scratch::new("replan_journal");
    let trace_a = scratch.path("a.jsonl");
    let trace_b = scratch.path("b.jsonl");

    // Daemon A plans circuit 2 as a K=4 portfolio, which freezes the
    // winner's move journal in the daemon's registry.
    let mut portfolio = exchange_spec(circuit_text(2));
    portfolio.starts = 4;
    let daemon_a = Daemon::spawn(
        &scratch,
        "a",
        &["--workers", "1", "--trace", trace_a.to_str().unwrap()],
    );
    let mut client = daemon_a.client();
    let won = client.plan(&portfolio).expect("portfolio plans");
    assert!(won.report.contains("portfolio K=4"), "{}", won.report);

    // A warm refinement of the same quadrant against that winner: the
    // prev hash changes the cache key, so the worker runs — and finds
    // the frozen journal instead of re-parsing the plan text.
    let mut refine = portfolio.clone();
    refine.prev = Some(won.assignment.clone());
    let from_journal = client.plan(&refine).expect("journal replan");
    assert_eq!(from_journal.cache, "miss");
    drop(client);
    let stdout_a = daemon_a.shutdown();
    assert!(stdout_a.contains("wrote "), "{stdout_a}");
    let text_a = std::fs::read_to_string(&trace_a).expect("trace a");
    assert!(
        text_a.contains(r#""ev":"quadrant_warmed","name":"circuit2","source":"journal""#),
        "daemon A warms from the journal: {text_a}"
    );

    // A fresh daemon has no journal registry: the identical request
    // falls back to parsing the previous plan — and must land on the
    // same bytes, the equivalence the journal-replay contract promises.
    let daemon_b = Daemon::spawn(
        &scratch,
        "b",
        &["--workers", "1", "--trace", trace_b.to_str().unwrap()],
    );
    let mut client = daemon_b.client();
    let from_plan = client.plan(&refine).expect("parse replan");
    assert_eq!(from_plan.cache, "miss");
    assert_eq!(from_plan.assignment, from_journal.assignment);
    assert_eq!(from_plan.report, from_journal.report);
    drop(client);
    daemon_b.shutdown();
    let text_b = std::fs::read_to_string(&trace_b).expect("trace b");
    assert!(
        text_b.contains(r#""ev":"quadrant_warmed","name":"circuit2","source":"plan""#),
        "daemon B re-parses the plan: {text_b}"
    );
}

#[test]
fn a_sigkill_between_submit_and_replan_replays_byte_identically_from_disk() {
    let scratch = Scratch::new("replan_recovery");
    let cache_dir = scratch.path("cache");
    let cache_flag = cache_dir.to_string_lossy().into_owned();

    let specs: Vec<JobSpec> = (1..=3).map(|i| exchange_spec(circuit_text(i))).collect();
    let mut dirty = exchange_spec(churned_circuit_text(2, 11));

    // Daemon A plans the original batch and the reference replan, then
    // dies by SIGKILL — nothing survives except the disk store.
    let first = Daemon::spawn(
        &scratch,
        "a",
        &["--workers", "1", "--cache-dir", &cache_flag],
    );
    let mut client = first.client();
    let original = client
        .batch(&specs, JobClass::Interactive, |_, _| {})
        .expect("original batch plans");
    assert_eq!(original.summary.failed, 0);
    dirty.prev = Some(
        original
            .items
            .iter()
            .find(|(seq, _)| *seq == 1)
            .and_then(|(_, r)| r.as_ref().ok())
            .expect("circuit 2 planned")
            .assignment
            .clone(),
    );
    let replan_specs = vec![specs[0].clone(), dirty, specs[2].clone()];
    let reference = client
        .replan(&replan_specs, JobClass::Interactive, |_, _| {})
        .expect("reference replan streams");
    assert_eq!(reference.summary.failed, 0);
    drop(client);
    first.kill9();

    // Daemon B on the same store: the identical replan request is
    // answered entirely from disk, byte-for-byte the same.
    let second = Daemon::spawn(
        &scratch,
        "b",
        &["--workers", "1", "--cache-dir", &cache_flag],
    );
    let mut client = second.client();
    let replayed = client
        .replan(&replan_specs, JobClass::Interactive, |_, _| {})
        .expect("replayed replan streams");
    assert_eq!(replayed.summary.failed, 0);
    assert_eq!(replayed.items.len(), reference.items.len());
    for (seq, result) in &replayed.items {
        let plan = result.as_ref().expect("replayed item succeeds");
        assert_eq!(plan.cache, "disk", "seq {seq} answers from the warm store");
        let before = reference
            .items
            .iter()
            .find(|(s, _)| s == seq)
            .and_then(|(_, r)| r.as_ref().ok())
            .expect("reference item succeeded");
        assert_eq!(plan.assignment, before.assignment, "seq {seq} bytes");
        assert_eq!(plan.report, before.report, "seq {seq} report");
    }

    let status = client.status().expect("status");
    assert_eq!(status.disk_hits, 3, "every replan item was a disk hit");
}
