//! Integration check of the acceptance criterion for the incremental
//! exchange kernel: on the Fig. 5 instance and all five Table 1 circuits,
//! for ψ = 1 and ψ = 4 under the default `Proxy` objective, [`exchange`]
//! and [`exchange_reference`] must return **bit-identical**
//! [`copack::core::ExchangeResult`]s from identical seeds — and, with the
//! telemetry layer, identical **trajectories**: the recorded event
//! streams match move for move, not just at the end state.

use copack::core::{
    dfa, exchange, exchange_reference, exchange_reference_traced, exchange_traced, ExchangeConfig,
    Schedule,
};
use copack::gen::circuits;
use copack::geom::{NetKind, Quadrant, StackConfig, TierId};
use copack::obs::{accepted_signature, TraceBuffer};
use proptest::prelude::*;

/// The Fig. 5 instance, with a few nets marked as power pads so the
/// Δ_IR term is live at ψ = 1.
fn fig5_with_power() -> Quadrant {
    Quadrant::builder()
        .row([10u32, 2, 4, 7, 0])
        .row([1u32, 3, 5, 8])
        .row([11u32, 6, 9])
        .net_kind(3u32, NetKind::Power)
        .net_kind(6u32, NetKind::Power)
        .net_kind(9u32, NetKind::Power)
        .build()
        .expect("the Fig. 5 instance builds")
}

fn config(seed: u64) -> ExchangeConfig {
    ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            cooling: 0.7,
            ..Schedule::default()
        },
        seed,
        ..ExchangeConfig::default()
    }
}

fn assert_bit_identical(quadrant: &Quadrant, stack: &StackConfig, label: &str) {
    let initial = dfa(quadrant, 1).expect("dfa");
    for seed in [0u64, 7, 2009] {
        let cfg = config(seed);
        let fast = exchange(quadrant, &initial, stack, &cfg).expect("kernel runs");
        let slow = exchange_reference(quadrant, &initial, stack, &cfg).expect("reference runs");
        assert_eq!(fast, slow, "{label}, seed {seed}");
        // "Bit-identical" includes the float-valued costs; `PartialEq` on
        // f64 compares values, so pin the exact representations too.
        assert_eq!(
            fast.stats.final_cost.to_bits(),
            slow.stats.final_cost.to_bits(),
            "{label}, seed {seed}: final cost bits"
        );
        assert_eq!(
            fast.stats.initial_cost.to_bits(),
            slow.stats.initial_cost.to_bits(),
            "{label}, seed {seed}: initial cost bits"
        );
    }
}

#[test]
fn fig5_kernel_matches_reference() {
    let q = fig5_with_power();
    assert_bit_identical(&q, &StackConfig::planar(), "fig5 psi=1");
}

#[test]
fn table1_circuits_kernel_matches_reference_planar() {
    for circuit in circuits() {
        let q = circuit.build_quadrant().expect("circuit builds");
        assert_bit_identical(
            &q,
            &StackConfig::planar(),
            &format!("{} psi=1", circuit.name),
        );
    }
}

#[test]
fn table1_circuits_kernel_matches_reference_stacked4() {
    for circuit in circuits() {
        let stacked = circuit.stacked(4);
        let q = stacked.build_quadrant().expect("circuit builds");
        let stack = stacked.stack().expect("valid stack");
        assert_bit_identical(&q, &stack, &format!("{} psi=4", circuit.name));
    }
}

/// Runs both implementations with rejected-move recording on and asserts
/// the full event streams — and in particular the accepted-move
/// signatures `(step, slot, delta bits, cost bits)` — are identical.
fn assert_same_trajectory(quadrant: &Quadrant, stack: &StackConfig, seed: u64, label: &str) {
    let initial = dfa(quadrant, 1).expect("dfa");
    let cfg = config(seed);
    let mut fast_buf = TraceBuffer::with_rejected();
    let mut slow_buf = TraceBuffer::with_rejected();
    let fast = exchange_traced(quadrant, &initial, stack, &cfg, &mut fast_buf);
    let slow = exchange_reference_traced(quadrant, &initial, stack, &cfg, &mut slow_buf);
    // Degenerate instances (e.g. a single net — nothing to swap) must
    // fail identically on both sides; there is no trajectory to compare.
    let (fast, slow) = match (fast, slow) {
        (Ok(f), Ok(s)) => (f, s),
        (f, s) => {
            assert_eq!(
                f.as_ref().err().map(ToString::to_string),
                s.as_ref().err().map(ToString::to_string),
                "{label}: errors diverge ({f:?} vs {s:?})"
            );
            return;
        }
    };
    assert_eq!(fast, slow, "{label}: result");
    let fast_events = fast_buf.into_events();
    let slow_events = slow_buf.into_events();
    assert_eq!(
        accepted_signature(&fast_events),
        accepted_signature(&slow_events),
        "{label}: accepted-move sequence"
    );
    assert_eq!(fast_events.len(), slow_events.len(), "{label}: event count");
    for (i, (f, s)) in fast_events.iter().zip(&slow_events).enumerate() {
        assert_eq!(f.to_json(), s.to_json(), "{label}: event {i}");
    }
}

#[test]
fn trajectories_match_on_the_paper_circuits() {
    let q = fig5_with_power();
    assert_same_trajectory(&q, &StackConfig::planar(), 2009, "fig5 psi=1");
    for circuit in circuits() {
        let q = circuit.build_quadrant().expect("circuit builds");
        assert_same_trajectory(
            &q,
            &StackConfig::planar(),
            7,
            &format!("{} psi=1", circuit.name),
        );
        let stacked = circuit.stacked(4);
        let q4 = stacked.build_quadrant().expect("circuit builds");
        let stack = stacked.stack().expect("valid stack");
        assert_same_trajectory(&q4, &stack, 7, &format!("{} psi=4", circuit.name));
    }
}

/// Strategy mirroring `tests/properties.rs`: a quadrant with shuffled net
/// ids, every third net a power pad, striped across `tiers` tiers.
fn quadrant_strategy_tiered(tiers: u8) -> impl Strategy<Value = Quadrant> {
    (prop::collection::vec(1usize..=8, 1..=5), any::<u64>()).prop_map(move |(sizes, seed)| {
        let total: usize = sizes.iter().sum();
        // Deterministic Fisher–Yates from the seed, no external RNG needed.
        let mut ids: Vec<u32> = (1..=total as u32).collect();
        let mut state = seed | 1;
        for i in (1..ids.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        let mut builder = Quadrant::builder();
        let mut cursor = 0;
        for &s in &sizes {
            builder = builder.row(ids[cursor..cursor + s].iter().copied());
            cursor += s;
        }
        for id in 1..=total as u32 {
            if id % 3 == 0 {
                builder = builder.net_kind(id, NetKind::Power);
            }
            if tiers > 1 {
                builder =
                    builder.net_tier(id, TierId::new(((id - 1) % u32::from(tiers) + 1) as u8));
            }
        }
        builder.build().expect("generated quadrants are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-trajectory equivalence on arbitrary quadrants and seeds:
    /// the O(1) kernel and the from-scratch reference record the same
    /// accepted-move sequence (and the same complete event stream) at
    /// ψ = 1.
    #[test]
    fn trajectories_match_for_any_seed_planar(
        q in quadrant_strategy_tiered(1),
        seed in any::<u64>(),
    ) {
        assert_same_trajectory(&q, &StackConfig::planar(), seed, "proptest psi=1");
    }

    /// Same, with 3-tier stacking (live ω term).
    #[test]
    fn trajectories_match_for_any_seed_stacked3(
        q in quadrant_strategy_tiered(3),
        seed in any::<u64>(),
    ) {
        let stack = StackConfig::stacked(3).expect("valid stack");
        assert_same_trajectory(&q, &stack, seed, "proptest psi=3");
    }
}
