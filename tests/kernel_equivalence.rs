//! Integration check of the acceptance criterion for the incremental
//! exchange kernel: on the Fig. 5 instance and all five Table 1 circuits,
//! for ψ = 1 and ψ = 4 under the default `Proxy` objective, [`exchange`]
//! and [`exchange_reference`] must return **bit-identical**
//! [`copack::core::ExchangeResult`]s from identical seeds.

use copack::core::{dfa, exchange, exchange_reference, ExchangeConfig, Schedule};
use copack::gen::circuits;
use copack::geom::{NetKind, Quadrant, StackConfig};

/// The Fig. 5 instance, with a few nets marked as power pads so the
/// Δ_IR term is live at ψ = 1.
fn fig5_with_power() -> Quadrant {
    Quadrant::builder()
        .row([10u32, 2, 4, 7, 0])
        .row([1u32, 3, 5, 8])
        .row([11u32, 6, 9])
        .net_kind(3u32, NetKind::Power)
        .net_kind(6u32, NetKind::Power)
        .net_kind(9u32, NetKind::Power)
        .build()
        .expect("the Fig. 5 instance builds")
}

fn config(seed: u64) -> ExchangeConfig {
    ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            cooling: 0.7,
            ..Schedule::default()
        },
        seed,
        ..ExchangeConfig::default()
    }
}

fn assert_bit_identical(quadrant: &Quadrant, stack: &StackConfig, label: &str) {
    let initial = dfa(quadrant, 1).expect("dfa");
    for seed in [0u64, 7, 2009] {
        let cfg = config(seed);
        let fast = exchange(quadrant, &initial, stack, &cfg).expect("kernel runs");
        let slow = exchange_reference(quadrant, &initial, stack, &cfg).expect("reference runs");
        assert_eq!(fast, slow, "{label}, seed {seed}");
        // "Bit-identical" includes the float-valued costs; `PartialEq` on
        // f64 compares values, so pin the exact representations too.
        assert_eq!(
            fast.stats.final_cost.to_bits(),
            slow.stats.final_cost.to_bits(),
            "{label}, seed {seed}: final cost bits"
        );
        assert_eq!(
            fast.stats.initial_cost.to_bits(),
            slow.stats.initial_cost.to_bits(),
            "{label}, seed {seed}: initial cost bits"
        );
    }
}

#[test]
fn fig5_kernel_matches_reference() {
    let q = fig5_with_power();
    assert_bit_identical(&q, &StackConfig::planar(), "fig5 psi=1");
}

#[test]
fn table1_circuits_kernel_matches_reference_planar() {
    for circuit in circuits() {
        let q = circuit.build_quadrant().expect("circuit builds");
        assert_bit_identical(
            &q,
            &StackConfig::planar(),
            &format!("{} psi=1", circuit.name),
        );
    }
}

#[test]
fn table1_circuits_kernel_matches_reference_stacked4() {
    for circuit in circuits() {
        let stacked = circuit.stacked(4);
        let q = stacked.build_quadrant().expect("circuit builds");
        let stack = stacked.stack().expect("valid stack");
        assert_bit_identical(&q, &stack, &format!("{} psi=4", circuit.name));
    }
}
