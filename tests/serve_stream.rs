//! Streaming-batch behaviour end to end: item frames arrive as jobs
//! finish (tagged with submission order), the summary frame closes the
//! batch, results agree job-for-job with single submissions, admission
//! classes keep interactive traffic ahead of bulk sweeps, and a
//! connection that dies mid-batch (via the harness fault proxy) never
//! takes the daemon with it.

mod serve_harness;

use std::time::{Duration, Instant};

use copack_core::AssignMethod;
use copack_obs::Event;
use copack_serve::{Client, ErrorKind, JobClass, JobSpec, ServeConfig, Server};
use serve_harness::{circuit_text, Daemon, FaultProxy, Scratch};

fn bad_spec() -> JobSpec {
    JobSpec::new("quadrant broken\nrow x y\n")
}

#[test]
fn a_streamed_batch_delivers_every_seq_once_and_agrees_with_single_submissions() {
    let scratch = Scratch::new("stream");
    let daemon = Daemon::spawn(
        &scratch,
        "stream",
        &["--workers", "2", "--worker-stall-ms", "20"],
    );

    // Duplicates coalesce, one job is malformed, the rest are distinct.
    let specs = vec![
        JobSpec::new(circuit_text(1)),
        JobSpec::new(circuit_text(1)),
        JobSpec::new(circuit_text(2)),
        bad_spec(),
        JobSpec::new(circuit_text(3)),
        JobSpec::new(circuit_text(1)),
    ];

    let mut client = daemon.client();
    let mut streamed: Vec<u32> = Vec::new();
    let outcome = client
        .batch(&specs, JobClass::Bulk, |seq, _| streamed.push(seq))
        .expect("batch streams to completion");

    // Every seq exactly once, streamed order == returned order.
    let mut seqs: Vec<u32> = outcome.items.iter().map(|(seq, _)| *seq).collect();
    assert_eq!(seqs, streamed, "callback order matches the item order");
    seqs.sort_unstable();
    assert_eq!(seqs, (0..6).collect::<Vec<u32>>());
    assert_eq!(outcome.summary.jobs, 6);
    assert_eq!(outcome.summary.ok, 5);
    assert_eq!(outcome.summary.failed, 1);

    // The malformed job fails typed; everything else succeeds.
    for (seq, result) in &outcome.items {
        match result {
            Ok(plan) => assert!(*seq != 3, "seq 3 is the malformed job: {plan:?}"),
            Err(error) => {
                assert_eq!(*seq, 3, "only the malformed job may fail");
                assert_eq!(error.kind, ErrorKind::BadRequest);
            }
        }
    }

    // Job-for-job agreement with single submissions: resubmitting each
    // spec individually returns byte-identical results (from cache,
    // which the integration suite already proves equals a fresh run).
    for (seq, result) in &outcome.items {
        let Ok(from_batch) = result else { continue };
        let single = client
            .plan(&specs[*seq as usize])
            .expect("single resubmission");
        assert_eq!(single.assignment, from_batch.assignment, "seq {seq}");
        assert_eq!(single.report, from_batch.report, "seq {seq}");
    }

    // A fully-cached batch exercises the all-immediate path: every item
    // is answered inline and the summary still closes the stream.
    let replay = client
        .batch(&specs, JobClass::Bulk, |_, _| {})
        .expect("cached batch streams");
    assert_eq!(replay.summary.ok, 5);
    assert_eq!(replay.summary.failed, 1);
    assert!(
        replay
            .items
            .iter()
            .all(|(seq, r)| r.is_err() || matches!(&r, Ok(p) if p.cache == "hit" || *seq == 3)),
        "replayed items answer from cache: {:?}",
        replay.items
    );

    daemon.shutdown();
}

#[test]
fn interactive_jobs_overtake_a_running_bulk_batch() {
    // One worker and a deliberate stall make completion order fully
    // observable: a bulk sweep of 8 jobs is in flight when a single
    // interactive job arrives — the weighted dequeue must run it ahead
    // of the remaining bulk backlog.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            worker_stall: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run());

    let sweep: Vec<JobSpec> = (1..=8)
        .map(|slack| JobSpec {
            method: AssignMethod::Dfa { slack },
            ..JobSpec::new(circuit_text(1))
        })
        .collect();
    let bulk = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.batch(&sweep, JobClass::Bulk, |_, _| {})
    });

    // Give the sweep a head start, then submit the interactive job.
    std::thread::sleep(Duration::from_millis(120));
    let mut client = Client::connect(addr).expect("connect");
    let urgent = JobSpec::new(circuit_text(2));
    let t = Instant::now();
    let plan = client.plan(&urgent).expect("interactive job plans");
    let urgent_latency = t.elapsed();
    assert_eq!(plan.cache, "miss");

    let outcome = bulk.join().expect("bulk thread").expect("bulk batch");
    assert_eq!(outcome.summary.ok, 8);
    client.shutdown().expect("shutdown");
    let summary = daemon.join().expect("daemon thread").expect("clean exit");

    // The recorded completion order proves the overtake: the
    // interactive job finished before the bulk sweep's last job.
    let classes: Vec<&str> = summary
        .events
        .iter()
        .filter_map(|event| match event {
            Event::ServeJob { class, cache, .. } if cache == "miss" => Some(class.as_str()),
            _ => None,
        })
        .collect();
    let first_interactive = classes
        .iter()
        .position(|&c| c == "interactive")
        .expect("interactive job recorded");
    let last_bulk = classes
        .iter()
        .rposition(|&c| c == "bulk")
        .expect("bulk jobs recorded");
    assert!(
        first_interactive < last_bulk,
        "interactive completed at {first_interactive}, after the whole sweep \
         (last bulk at {last_bulk}): classes {classes:?}, latency {urgent_latency:?}"
    );
    assert_eq!(summary.status.completed, 9);
}

#[test]
fn a_connection_severed_mid_batch_leaves_the_daemon_serving() {
    let scratch = Scratch::new("faults");
    let daemon = Daemon::spawn(
        &scratch,
        "faults",
        &["--workers", "1", "--worker-stall-ms", "50"],
    );
    let proxy = FaultProxy::start(&daemon.addr);

    // Latency injection first: a laggy network slows requests but
    // changes nothing semantically.
    proxy.set_latency_ms(30);
    let mut slow = Client::connect(&proxy.addr).expect("connect via proxy");
    let t = Instant::now();
    let plan = slow
        .plan(&JobSpec::new(circuit_text(1)))
        .expect("slow plan");
    assert_eq!(plan.cache, "miss");
    assert!(
        t.elapsed() >= Duration::from_millis(50),
        "both directions pay the injected latency"
    );
    proxy.set_latency_ms(0);

    // Now sever the proxied link while a batch is mid-flight.
    let sweep: Vec<JobSpec> = (1..=6)
        .map(|seed| JobSpec {
            method: AssignMethod::Random { seed },
            ..JobSpec::new(circuit_text(2))
        })
        .collect();
    let proxy_addr = proxy.addr.clone();
    let doomed = std::thread::spawn(move || {
        let mut client = Client::connect(&proxy_addr).expect("connect via proxy");
        client.batch(&sweep, JobClass::Interactive, |_, _| {})
    });
    std::thread::sleep(Duration::from_millis(110));
    proxy.sever();
    let err = doomed
        .join()
        .expect("client thread")
        .expect_err("the severed batch fails client-side");
    assert_eq!(err.kind, ErrorKind::Io);

    // The daemon shrugs: direct traffic still works, and the abandoned
    // batch's jobs drain without wedging shutdown.
    let mut direct = daemon.client();
    let status = direct.status().expect("status after sever");
    assert!(!status.shutting_down);
    let plan = direct
        .plan(&JobSpec::new(circuit_text(3)))
        .expect("direct plan after sever");
    assert_eq!(plan.cache, "miss");
    drop(direct);
    let summary = daemon.shutdown();
    assert!(summary.contains("served "), "summary: {summary}");
}
