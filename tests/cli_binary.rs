//! End-to-end tests of the compiled `copack` binary (not just the library
//! entry point): real process, real files, real exit codes.

use std::path::PathBuf;
use std::process::Command;

fn copack(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_copack"))
        .args(args)
        .output()
        .expect("binary spawns")
}

/// A per-test scratch directory, unique across concurrently running test
/// binaries (pid) and across tests within this binary (tag), removed when
/// the test ends.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("copack_bin_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn help_exits_zero() {
    let out = copack(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_stderr() {
    let out = copack(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    assert!(out.stdout.is_empty());
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = TestDir::new("e2e");
    let circuit = dir.path("c1.copack");
    let order = dir.path("c1.order");

    let out = copack(&["gen", "1", "--out", circuit.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");

    let out = copack(&[
        "plan",
        circuit.to_str().unwrap(),
        "--out",
        order.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("max density"));

    let out = copack(&["route", circuit.to_str().unwrap(), order.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("balanced"));

    let out = copack(&[
        "ir",
        circuit.to_str().unwrap(),
        order.to_str().unwrap(),
        "--grid",
        "12",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("mV"));

    let out = copack(&["check", circuit.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("7/7 oracles passed"));
}

#[test]
fn fuzz_through_the_binary_is_clean() {
    let out = copack(&["fuzz", "--seed", "1", "--cases", "2"]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 violations"));
}

#[test]
fn missing_file_exits_nonzero() {
    let out = copack(&["plan", "/definitely/not/a/file.copack"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("file.copack"));
}
