//! End-to-end integration tests: the paper's experimental shape on the
//! Table 1 circuits, across all crates.

use copack::core::{assign, AssignMethod, Codesign, ExchangeConfig, Schedule};
use copack::gen::{circuit, circuits};
use copack::power::GridSpec;
use copack::route::{analyze, is_monotonic, DensityModel};

fn fast_flow() -> Codesign {
    Codesign {
        grid: GridSpec::default_chip(16),
        exchange: ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 1,
                final_temp_ratio: 1e-2,
                cooling: 0.85,
                ..Schedule::default()
            },
            ..ExchangeConfig::default()
        },
        ..Codesign::default()
    }
}

#[test]
fn table2_shape_dfa_beats_ifa_beats_random() {
    // The core claim of Table 2, on every circuit.
    for c in circuits() {
        let q = c.build_quadrant().expect("builds");
        let density = |method| {
            let a = assign(&q, method).expect("assigns");
            analyze(&q, &a, DensityModel::Geometric)
                .expect("legal")
                .max_density
        };
        let random = density(AssignMethod::Random { seed: 11 });
        let ifa = density(AssignMethod::Ifa);
        let dfa = density(AssignMethod::dfa_default());
        assert!(
            dfa <= ifa && ifa <= random,
            "{}: dfa {dfa}, ifa {ifa}, random {random}",
            c.name
        );
    }
}

#[test]
fn every_method_yields_routable_orders_on_every_circuit() {
    for c in circuits() {
        let q = c.build_quadrant().expect("builds");
        for method in [
            AssignMethod::Random { seed: 3 },
            AssignMethod::Ifa,
            AssignMethod::Dfa { slack: 1 },
            AssignMethod::Dfa { slack: 3 },
        ] {
            let a = assign(&q, method).expect("assigns");
            assert!(is_monotonic(&q, &a), "{} under {method}", c.name);
            assert_eq!(a.net_count(), q.net_count());
        }
    }
}

#[test]
fn exchange_reduces_the_cost_and_stays_legal_2d() {
    let q = circuit(2).build_quadrant().expect("builds");
    let report = fast_flow().run(&q).expect("pipeline");
    assert!(report.exchange.final_cost <= report.exchange.initial_cost + 1e-9);
    assert!(is_monotonic(&q, &report.final_assignment));
    // The exchange step may trade some density (the paper's Table 3 shows
    // +2..3); it must not explode.
    assert!(
        report.routing_after.max_density <= report.routing_before.max_density + 4,
        "{} -> {}",
        report.routing_before.max_density,
        report.routing_after.max_density
    );
}

#[test]
fn exchange_improves_ir_on_every_circuit() {
    for c in circuits() {
        let q = c.build_quadrant().expect("builds");
        let report = fast_flow().run(&q).expect("pipeline");
        let improvement = report.ir_improvement_percent.expect("power nets exist");
        assert!(
            improvement > -2.0,
            "{}: IR-drop regressed by {improvement:.2}%",
            c.name
        );
    }
}

#[test]
fn stacking_pipeline_improves_bonding_wires() {
    let stacked = circuit(1).stacked(4);
    let q = stacked.build_quadrant().expect("builds");
    let mut flow = Codesign {
        stack: stacked.stack().expect("stack"),
        ..fast_flow()
    };
    // Weight the bonding-wire term up: with the short test schedule the
    // default IR-heavy weights may trade a unit of omega away.
    flow.exchange.weights = copack::core::CostWeights {
        lambda: 100.0,
        rho: 1.0,
        phi: 2.0,
        margin: 0.0,
    };
    let report = flow.run(&q).expect("pipeline");
    assert!(
        report.omega_after <= report.omega_before,
        "omega {} -> {}",
        report.omega_before,
        report.omega_after
    );
    assert!(is_monotonic(&q, &report.final_assignment));
    assert!(report.omega_improvement_percent.is_some());
}

#[test]
fn packages_expose_power_pads_for_all_four_sides() {
    use copack::geom::NetKind;
    let c = circuit(1);
    let q = c.build_quadrant().expect("builds");
    let package = c.build_package().expect("package");
    let a = assign(&q, AssignMethod::dfa_default()).expect("dfa");
    let assignments = [a.clone(), a.clone(), a.clone(), a];
    let pads = package
        .pads_of_kind(&assignments, NetKind::Power)
        .expect("pads");
    let per_side = q.nets_of_kind(NetKind::Power).count();
    assert_eq!(pads.len(), per_side * 4);
    for (_, slot) in &pads {
        assert!((0.0..1.0).contains(&slot.t));
    }
}

#[test]
fn deterministic_end_to_end() {
    let q = circuit(1).build_quadrant().expect("builds");
    let a = fast_flow().run(&q).expect("pipeline");
    let b = fast_flow().run(&q).expect("pipeline");
    assert_eq!(a.final_assignment, b.final_assignment);
    assert_eq!(a.ir_after, b.ir_after);
}
