//! Replays every committed fuzz reproducer under plain `cargo test`.
//!
//! Each `tests/corpus/*.copack` file is a shrunk instance that once
//! exposed a bug (in an oracle, a tracker, or — for the seeded entries —
//! the deliberately broken suite in `copack_verify::selftest`), paired
//! with a `.seed` sidecar recording how it was found and how to re-check
//! it. Running the full real-oracle suite over all of them on every test
//! run makes each reproducer a permanent regression guard: the bug class
//! it witnessed can never silently return.

use std::fs;
use std::path::PathBuf;

use copack::obs::NoopRecorder;
use copack::verify::{check_quadrant, read_sidecar, VerifyConfig, ORACLE_NAMES};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_entries() -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "copack"))
        .collect();
    entries.sort();
    entries
}

#[test]
fn corpus_is_not_empty_and_fully_paired() {
    let entries = corpus_entries();
    assert!(!entries.is_empty(), "the seeded corpus must not vanish");
    for circuit in &entries {
        let sidecar = circuit.with_extension("seed");
        assert!(
            sidecar.exists(),
            "{} lacks its .seed sidecar",
            circuit.display()
        );
    }
}

#[test]
fn every_reproducer_passes_all_real_oracles() {
    for circuit in corpus_entries() {
        let text = fs::read_to_string(&circuit).unwrap();
        let (name, quadrant) = copack::io::parse_quadrant(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", circuit.display()));
        let sidecar =
            read_sidecar(&circuit.with_extension("seed")).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            ORACLE_NAMES.contains(&sidecar.oracle.as_str()),
            "{name}: unknown oracle `{}` in sidecar",
            sidecar.oracle
        );
        let mut config = VerifyConfig::quick(sidecar.tiers);
        config.exchange_seed = sidecar.exchange_seed;
        for report in check_quadrant(&quadrant, &config, &mut NoopRecorder) {
            assert!(
                report.passed,
                "{name}: oracle {} regressed: {}",
                report.oracle, report.detail
            );
        }
    }
}
