//! Property tests of the parallel-tempering portfolio mode.
//!
//! Three contracts pin the ladder:
//!
//! 1. **Swaps exchange complete thermal states.** A rung's plan,
//!    journal, and RNG stream never leave their slot — only the
//!    `(temperature, final_temp)` pair moves — so every rung's cost
//!    ledger must re-audit bit-exactly across every swap barrier: each
//!    accepted move's Δ equals the cost step, and the run's final cost
//!    is the running minimum. A swap that corrupted a driver's state
//!    would break the chain at the barrier.
//! 2. **Swap verdicts are pure.** Each `PortfolioSwap` event carries
//!    everything that decided it: re-deriving the Metropolis verdict
//!    from `(seed, epoch, rung, costs, temps)` must reproduce the
//!    recorded `accepted` flag, the proposal schedule must pair only
//!    adjacent rungs with the epoch's parity, and a rerun must produce
//!    the identical swap sequence.
//! 3. **A 1-rung ladder degenerates to `race`** byte-for-byte: result,
//!    journal, and trace.

use copack::core::{
    dfa, exchange_portfolio, exchange_portfolio_traced, tempering_swap_accepts,
    tempering_swap_draw, tempering_swap_probability, ExchangeConfig, PortfolioConfig,
    PortfolioMode, Schedule,
};
use copack::geom::{NetKind, Quadrant, StackConfig};
use copack::obs::{Event, TraceBuffer};
use proptest::prelude::*;

/// Strategy: a quadrant with 2..=4 rows of 2..=7 balls, net ids shuffled
/// deterministically, every third net (and net 1) a power pad.
fn quadrant_strategy() -> impl Strategy<Value = Quadrant> {
    (prop::collection::vec(2usize..=7, 2..=4), any::<u64>()).prop_map(|(sizes, seed)| {
        let total: usize = sizes.iter().sum();
        let mut ids: Vec<u32> = (1..=total as u32).collect();
        let mut state = seed | 1;
        for i in (1..ids.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        let mut builder = Quadrant::builder();
        let mut cursor = 0;
        for &s in &sizes {
            builder = builder.row(ids[cursor..cursor + s].iter().copied());
            cursor += s;
        }
        for id in 1..=total as u32 {
            if id == 1 || id % 3 == 0 {
                builder = builder.net_kind(id, NetKind::Power);
            }
        }
        builder.build().expect("generated quadrants are valid")
    })
}

/// A schedule with enough temperature steps for several sync barriers,
/// short enough for many proptest cases.
fn fast_config(seed: u64) -> ExchangeConfig {
    ExchangeConfig {
        schedule: Schedule {
            moves_per_temp_per_finger: 2,
            final_temp_ratio: 1e-2,
            ..Schedule::default()
        },
        seed,
        ..ExchangeConfig::default()
    }
}

/// One recorded `PortfolioSwap`, bit-exact: `(epoch, start_a, start_b,
/// cost_a, cost_b, temp_a, temp_b, accepted)` with the floats as bits.
type SwapRecord = (u32, u32, u32, u64, u64, u64, u64, bool);

fn temper_config(starts: u32, ladder_ratio: f64) -> PortfolioConfig {
    PortfolioConfig {
        starts,
        threads: 1,
        mode: PortfolioMode::Temper,
        ladder_ratio,
        ..PortfolioConfig::default()
    }
}

/// Splits a merged portfolio trace into per-start segments (each starts
/// at its `PortfolioStart` marker; the preamble before the first marker
/// belongs to no start).
fn per_start_segments(events: &[Event]) -> Vec<&[Event]> {
    let mut boundaries: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, Event::PortfolioStart { .. }).then_some(i))
        .collect();
    boundaries.push(events.len());
    boundaries.windows(2).map(|w| &events[w[0]..w[1]]).collect()
}

/// Audits one start's cost ledger bit-exactly: every accepted move's Δ
/// equals the cost step, and the final cost is the running minimum.
/// Returns the number of moves audited.
fn audit_ledger(segment: &[Event]) -> Result<usize, String> {
    let mut current: Option<f64> = None;
    let mut best: Option<f64> = None;
    let mut audited = 0usize;
    for e in segment {
        match e {
            Event::RunStart { initial_cost, .. } => {
                current = Some(*initial_cost);
                best = Some(*initial_cost);
            }
            Event::MoveAccepted { delta, cost, .. } => {
                let prev = current.ok_or("move before RunStart")?;
                let step = cost - prev;
                if step.to_bits() != delta.to_bits() {
                    return Err(format!(
                        "move {audited}: Δ {delta:e} != cost step {step:e} (bit-exact)"
                    ));
                }
                current = Some(*cost);
                if cost < best.as_ref().unwrap() {
                    best = Some(*cost);
                }
                audited += 1;
            }
            Event::RunEnd { final_cost, .. } => {
                let b = best.ok_or("RunEnd before RunStart")?;
                if final_cost.to_bits() != b.to_bits() {
                    return Err(format!(
                        "final cost {final_cost:e} != running minimum {b:e} (bit-exact)"
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(audited)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: every rung's ledger re-audits exactly across every
    /// swap barrier — thermal swaps exchange complete states and leave
    /// every driver's plan/cost bookkeeping untouched.
    #[test]
    fn every_rung_ledger_re_audits_exactly_across_swaps(
        q in quadrant_strategy(),
        seed in any::<u64>(),
        starts in 2u32..=5,
    ) {
        let initial = dfa(&q, 1).expect("dfa");
        let mut buf = TraceBuffer::new();
        let won = exchange_portfolio_traced(
            &q,
            &initial,
            &StackConfig::planar(),
            &fast_config(seed),
            &temper_config(starts, 1.5),
            &mut buf,
        )
        .expect("temper portfolio runs");
        prop_assert_eq!(won.pruned(), 0, "tempering never prunes");
        let events = buf.into_events();
        let segments = per_start_segments(&events);
        prop_assert_eq!(segments.len(), starts as usize);
        for (rung, segment) in segments.iter().enumerate() {
            if let Err(e) = audit_ledger(segment) {
                prop_assert!(false, "rung {}: {}", rung, e);
            }
        }
    }

    /// Contract 2: swap verdicts re-derive from the event fields alone,
    /// proposals pair only adjacent rungs on the epoch's parity, and a
    /// rerun reproduces the identical swap sequence.
    #[test]
    fn swap_verdicts_are_pure_functions_of_the_barrier(
        q in quadrant_strategy(),
        seed in any::<u64>(),
        starts in 2u32..=5,
    ) {
        let initial = dfa(&q, 1).expect("dfa");
        let config = fast_config(seed);
        let portfolio = temper_config(starts, 1.5);
        let mut buf = TraceBuffer::new();
        exchange_portfolio_traced(
            &q,
            &initial,
            &StackConfig::planar(),
            &config,
            &portfolio,
            &mut buf,
        )
        .expect("temper portfolio runs");
        let swap_fields = |events: &[Event]| -> Vec<SwapRecord> {
            events
                .iter()
                .filter_map(|e| match e {
                    Event::PortfolioSwap {
                        epoch,
                        start_a,
                        start_b,
                        cost_a,
                        cost_b,
                        temp_a,
                        temp_b,
                        accepted,
                    } => Some((
                        *epoch,
                        *start_a,
                        *start_b,
                        cost_a.to_bits(),
                        cost_b.to_bits(),
                        temp_a.to_bits(),
                        temp_b.to_bits(),
                        *accepted,
                    )),
                    _ => None,
                })
                .collect()
        };
        let events = buf.into_events();
        let swaps = swap_fields(&events);
        for &(epoch, start_a, start_b, cost_a, cost_b, temp_a, temp_b, accepted) in &swaps {
            prop_assert_eq!(start_b, start_a + 1, "swaps pair adjacent rungs only");
            prop_assert_eq!(
                start_a % 2,
                epoch % 2,
                "pair parity must follow the barrier's parity"
            );
            let rederived = tempering_swap_accepts(
                config.seed,
                epoch,
                start_a,
                f64::from_bits(cost_a),
                f64::from_bits(cost_b),
                f64::from_bits(temp_a),
                f64::from_bits(temp_b),
            );
            prop_assert_eq!(rederived, accepted, "verdict must re-derive from the event");
            // The draw and probability the verdict is built from are
            // themselves pure: recomputing them is stable, the draw is a
            // unit uniform, and the probability a valid Metropolis one.
            let draw = tempering_swap_draw(config.seed, epoch, start_a);
            prop_assert_eq!(
                draw.to_bits(),
                tempering_swap_draw(config.seed, epoch, start_a).to_bits()
            );
            prop_assert!((0.0..1.0).contains(&draw));
            let p = tempering_swap_probability(
                f64::from_bits(cost_a),
                f64::from_bits(cost_b),
                f64::from_bits(temp_a),
                f64::from_bits(temp_b),
            );
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(accepted, draw < p);
        }
        // Rerun: the identical swap sequence, bit for bit.
        let mut rerun_buf = TraceBuffer::new();
        exchange_portfolio_traced(
            &q,
            &initial,
            &StackConfig::planar(),
            &config,
            &portfolio,
            &mut rerun_buf,
        )
        .expect("rerun runs");
        let rerun_events = rerun_buf.into_events();
        prop_assert_eq!(swaps, swap_fields(&rerun_events));
    }

    /// Contract 3: a 1-rung ladder is `race`, byte for byte — result,
    /// journal, winner identity, and the full trace.
    #[test]
    fn a_one_rung_ladder_degenerates_to_race(
        q in quadrant_strategy(),
        seed in any::<u64>(),
        ladder_ratio in 1.0f64..4.0,
    ) {
        let initial = dfa(&q, 1).expect("dfa");
        let config = fast_config(seed);
        let run = |mode: PortfolioMode, buf: &mut TraceBuffer| {
            exchange_portfolio_traced(
                &q,
                &initial,
                &StackConfig::planar(),
                &config,
                &PortfolioConfig {
                    mode,
                    ladder_ratio,
                    ..temper_config(1, ladder_ratio)
                },
                buf,
            )
            .expect("single-start portfolio runs")
        };
        let mut race_buf = TraceBuffer::new();
        let race = run(PortfolioMode::Race, &mut race_buf);
        let mut temper_buf = TraceBuffer::new();
        let temper = run(PortfolioMode::Temper, &mut temper_buf);
        prop_assert_eq!(race, temper);
        prop_assert_eq!(race_buf.events(), temper_buf.events());
    }

    /// A flat ladder (`ladder_ratio == 1.0`) holds every rung at the
    /// same temperature: every Metropolis proposal is then a certain
    /// accept (`exp(0) = 1` beats any unit draw), and swapping equal
    /// thermal states is a no-op — so the winner must equal the same
    /// seed's multi-rung result at ratio 1.0 run twice (determinism
    /// through degenerate swaps).
    #[test]
    fn a_flat_ladder_accepts_every_swap_and_stays_deterministic(
        q in quadrant_strategy(),
        seed in any::<u64>(),
        starts in 2u32..=4,
    ) {
        let initial = dfa(&q, 1).expect("dfa");
        let config = fast_config(seed);
        let mut buf = TraceBuffer::new();
        let first = exchange_portfolio_traced(
            &q,
            &initial,
            &StackConfig::planar(),
            &config,
            &temper_config(starts, 1.0),
            &mut buf,
        )
        .expect("flat ladder runs");
        let events = buf.into_events();
        for e in &events {
            if let Event::PortfolioSwap { accepted, temp_a, temp_b, .. } = e {
                prop_assert_eq!(temp_a.to_bits(), temp_b.to_bits());
                prop_assert!(*accepted, "equal-temperature proposals are certain accepts");
            }
        }
        let second = exchange_portfolio(
            &q,
            &initial,
            &StackConfig::planar(),
            &config,
            &temper_config(starts, 1.0),
        )
        .expect("flat ladder reruns");
        prop_assert_eq!(first, second);
    }
}
