//! Observational equivalence of the dense interned hot-path structures
//! against from-scratch keyed models.
//!
//! The PR-6 interning layer replaced the `BTreeMap`-keyed lookups on the
//! annealer's inner loop ([`copack::geom::NetIndex`] inside the
//! assignment, the section tracker, and the route range cache) with dense
//! arrays indexed by the quadrant's net interning. These tests pin the
//! refactor's contract: every dense structure answers exactly what the
//! keyed model it replaced would have answered, on fuzzed instances from
//! both generator families — including the reduced industrial-scale
//! (`large`) cases whose equal-row, deep-stack shape the Table 1 circuits
//! never produce.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

use copack::core::{dfa, SectionBaseline, SectionTracker};
use copack::gen::{fuzz_case, large_fuzz_case, SplitMix64};
use copack::geom::{NetId, Quadrant};
use copack::route::{exchange_range, RangeCache};

/// A deterministic mixed bag of fuzzed quadrants: the classic generator
/// and the reduced large family, several seeds each.
fn fuzzed_quadrants() -> Vec<Quadrant> {
    let mut out = Vec::new();
    for seed in [3u64, 17, 2009] {
        for index in 0..4u64 {
            out.push(fuzz_case(seed, index).expect("case builds").quadrant);
            out.push(large_fuzz_case(seed, index).expect("case builds").quadrant);
        }
    }
    out
}

#[test]
fn net_index_answers_exactly_like_a_btreemap() {
    for quadrant in fuzzed_quadrants() {
        let model: BTreeMap<NetId, usize> = quadrant
            .nets()
            .map(|n| n.id)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .enumerate()
            .map(|(i, id)| (id, i))
            .collect();
        let index = quadrant.net_index();
        assert_eq!(index.len(), model.len());
        assert_eq!(
            index.ids(),
            model.keys().copied().collect::<Vec<_>>(),
            "interned order is the BTreeMap iteration order"
        );
        for (&net, &i) in &model {
            assert_eq!(index.get(net), Some(i));
            assert_eq!(index.id(i), net);
        }
        // Misses answer like the map too: probe a band around every hit.
        for probe in 0..=(index.ids()[index.len() - 1].raw() + 2) {
            let probe = NetId::from(probe);
            assert_eq!(
                index.get(probe),
                model.get(&probe).copied(),
                "probe {probe:?}"
            );
        }
    }
}

#[test]
fn section_tracker_matches_the_from_scratch_recompute_under_swap_walks() {
    for (case, quadrant) in fuzzed_quadrants().into_iter().enumerate() {
        let initial = dfa(&quadrant, 1).expect("dfa");
        let baseline = SectionBaseline::record(&quadrant, &initial).expect("baseline");
        let mut tracker = SectionTracker::new(&quadrant, &initial).expect("tracker");
        let mut assignment = initial.clone();
        let mut rng = SplitMix64::new(case as u64);
        for step in 0..200u32 {
            let p = rng.below(assignment.finger_count() as u64 - 1) as usize;
            let (a, b) = (
                copack::geom::FingerIdx::from_zero_based(p),
                copack::geom::FingerIdx::from_zero_based(p + 1),
            );
            let (Some(left), Some(right)) = (assignment.net_at(a), assignment.net_at(b)) else {
                continue;
            };
            if tracker.is_delimiter(left) && tracker.is_delimiter(right) {
                continue;
            }
            tracker.apply_adjacent_swap(left, right);
            assignment.swap(a, b).expect("adjacent swap");

            // The dense incremental state must agree with a full keyed
            // recompute of both the counts and Eq. 2's ID.
            let fresh = SectionTracker::new(&quadrant, &assignment).expect("tracker");
            assert_eq!(
                tracker.counts(),
                fresh.counts(),
                "case {case} step {step}: counts diverged"
            );
            assert_eq!(
                tracker.increased_density(),
                baseline
                    .increased_density(&quadrant, &assignment)
                    .expect("recompute"),
                "case {case} step {step}: ID diverged"
            );
        }
    }
}

#[test]
fn range_cache_matches_the_keyed_model_and_the_direct_recompute() {
    for quadrant in fuzzed_quadrants() {
        let assignment = dfa(&quadrant, 1).expect("dfa");
        let cache = RangeCache::new(&quadrant, &assignment).expect("cache");
        let sorted: Vec<NetId> = quadrant
            .nets()
            .map(|n| n.id)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        assert_eq!(cache.net_count(), sorted.len());
        for (i, &net) in sorted.iter().enumerate() {
            assert_eq!(
                cache.index_of(net),
                Some(i),
                "cache index order is the keyed iteration order"
            );
            assert_eq!(
                cache.range(i),
                exchange_range(&quadrant, &assignment, net).expect("range"),
                "primed range of {net:?}"
            );
        }
    }
}

fn copack(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_copack"))
        .args(args)
        .output()
        .expect("binary spawns")
}

struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("copack_dense_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The end-to-end determinism contract of the industrial-scale family:
/// generating the same `(size, seed)` twice yields byte-identical circuit
/// files across separate processes, and planning the full package at 1
/// and 8 worker threads yields byte-identical plans.
#[test]
fn large_family_gen_and_plan_are_byte_deterministic_across_threads() {
    let dir = TestDir::new("large");
    let circuit = dir.0.join("large.copack");
    let gen_args = [
        "gen",
        "--family",
        "large",
        "--size",
        "1k",
        "--seed",
        "7",
        "--out",
        circuit.to_str().unwrap(),
    ];
    let out = copack(&gen_args);
    assert!(out.status.success(), "{out:?}");
    let first = std::fs::read(&circuit).expect("circuit written");

    let again = dir.0.join("again.copack");
    let mut regen = gen_args;
    regen[8] = again.to_str().unwrap();
    let out = copack(&regen);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(
        first,
        std::fs::read(&again).expect("circuit written"),
        "gen --family large forked across processes"
    );

    let plan_with = |threads: &str| {
        let out = copack(&[
            "plan",
            circuit.to_str().unwrap(),
            "--package",
            "--threads",
            threads,
        ]);
        assert!(out.status.success(), "--threads {threads}: {out:?}");
        out.stdout
    };
    let serial = plan_with("1");
    assert!(
        String::from_utf8_lossy(&serial).contains("package plan"),
        "plan output: {}",
        String::from_utf8_lossy(&serial)
    );
    assert_eq!(
        serial,
        plan_with("8"),
        "package plan bytes changed under --threads 8"
    );
}
