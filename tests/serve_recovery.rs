//! Crash recovery through the persistent cache tier: a daemon is
//! `SIGKILL`ed (no drop handlers, no flushes) and its successor must
//! answer the same jobs from the warm disk store, byte-identically —
//! while corrupt entries are quarantined and recomputed, never served.

mod serve_harness;

use std::fs;

use copack_io::parse_quadrant;
use copack_serve::{cache_key, JobSpec};
use serve_harness::{circuit_text, Daemon, Scratch};

/// The disk filename the daemon will use for `spec`'s result.
fn entry_name(spec: &JobSpec) -> String {
    let (_, quadrant) = parse_quadrant(&spec.circuit).expect("circuit parses");
    format!("{:016x}.entry", cache_key(spec, &quadrant))
}

#[test]
fn a_sigkilled_daemon_restarts_warm_and_quarantines_corruption() {
    let scratch = Scratch::new("recovery");
    let cache_dir = scratch.path("cache");
    let cache_flag = cache_dir.to_string_lossy().into_owned();

    let keep = JobSpec::new(circuit_text(1));
    let corrupt = JobSpec::new(circuit_text(2));

    // Daemon A computes both jobs and persists them, then dies by
    // SIGKILL — the crash that loses everything not already on disk.
    let first = Daemon::spawn(
        &scratch,
        "a",
        &["--workers", "1", "--cache-dir", &cache_flag],
    );
    let mut client = first.client();
    let keep_plan = client.plan(&keep).expect("first daemon plans");
    let corrupt_plan = client.plan(&corrupt).expect("first daemon plans");
    assert_eq!(keep_plan.cache, "miss");
    assert_eq!(corrupt_plan.cache, "miss");
    drop(client);
    first.kill9();

    assert!(
        cache_dir.join(entry_name(&keep)).exists(),
        "the entry was persisted before the response was sent"
    );

    // Sabotage between the lives: flip a byte mid-entry, and plant a
    // stale temp file as if the kill had interrupted a store.
    let victim = cache_dir.join(entry_name(&corrupt));
    let mut bytes = fs::read(&victim).expect("read entry");
    let at = bytes.len() / 2;
    bytes[at] ^= 0x01;
    fs::write(&victim, &bytes).expect("corrupt entry");
    let stale_tmp = cache_dir.join("00000000deadbeef.99999.tmp");
    fs::write(&stale_tmp, b"torn write").expect("plant stale tmp");

    // Daemon B on the same directory: the intact entry is served from
    // disk byte-identically; the corrupt one is quarantined and
    // recomputed to the same bytes (determinism), never served raw.
    let second = Daemon::spawn(
        &scratch,
        "b",
        &["--workers", "1", "--cache-dir", &cache_flag],
    );
    let mut client = second.client();

    let warm = client.plan(&keep).expect("restarted daemon plans");
    assert_eq!(warm.cache, "disk", "survivor entry answers from disk");
    assert_eq!(warm.assignment, keep_plan.assignment, "byte-identical");
    assert_eq!(warm.report, keep_plan.report, "byte-identical");
    let again = client.plan(&keep).expect("restarted daemon plans");
    assert_eq!(again.cache, "hit", "disk hits promote to memory");

    let recomputed = client.plan(&corrupt).expect("restarted daemon plans");
    assert_eq!(
        recomputed.cache, "miss",
        "a corrupt entry recomputes instead of serving garbage"
    );
    assert_eq!(
        recomputed.assignment, corrupt_plan.assignment,
        "recomputation reproduces the original bytes"
    );
    assert!(
        cache_dir
            .join(entry_name(&corrupt).replace(".entry", ".quarantine"))
            .exists(),
        "the corrupt file is kept for post-mortem, out of the live namespace"
    );
    assert!(!stale_tmp.exists(), "boot sweeps interrupted writes");

    let status = client.status().expect("status");
    assert_eq!(status.disk_hits, 1, "status counts the warm-start hit");
    drop(client);

    let summary = second.shutdown();
    assert!(
        summary.contains("cache disk 2 entries (1 disk hits"),
        "summary reports the disk tier: {summary}"
    );
    assert!(
        summary.contains("1 quarantined"),
        "summary reports the quarantine: {summary}"
    );
}
