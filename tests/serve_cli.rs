//! End-to-end coverage for the serving verbs: `copack serve`, `submit`,
//! `batch`, and `shutdown`, driven through the same `cli::run` entry
//! point the binary uses.
//!
//! The acceptance property lives here: a plan served by the daemon is
//! byte-identical to `copack plan --out` run locally, and serving the
//! same instance twice answers the second request from the cache.

use copack::cli;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn s(args: &[&str]) -> Vec<String> {
    args.iter().map(|a| (*a).to_owned()).collect()
}

/// Per-test scratch directory (same idiom as the cli unit tests).
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("copack_serve_cli_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Starts `copack serve` on an ephemeral port in a background thread and
/// returns the daemon's address plus the join handle for its output.
fn start_daemon(
    dir: &TestDir,
    tag: &str,
    extra: &[&str],
) -> (String, std::thread::JoinHandle<Result<String, String>>) {
    let port_file = dir.path(&format!("port_{tag}.txt"));
    let mut args = s(&["serve", "--addr", "127.0.0.1:0", "--port-file", &port_file]);
    args.extend(s(extra));
    let handle = std::thread::spawn(move || cli::run(&args));

    let deadline = Instant::now() + Duration::from_secs(5);
    let port = loop {
        if let Ok(text) = fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                break port;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    (format!("127.0.0.1:{port}"), handle)
}

#[test]
fn served_plans_are_byte_identical_to_local_plans_and_repeat_as_cache_hits() {
    let dir = TestDir::new("identity");
    let circuit = dir.path("circuit1.copack");
    cli::run(&s(&["gen", "1", "--out", &circuit])).expect("gen writes the circuit");

    let (addr, daemon) = start_daemon(&dir, "identity", &["--workers", "2", "--metrics"]);

    // The same job three ways: locally, served fresh, served repeated.
    let local_order = dir.path("local.order");
    cli::run(&s(&["plan", &circuit, "--exchange", "--out", &local_order])).expect("local plan");

    let first_order = dir.path("first.order");
    let first = cli::run(&s(&[
        "submit",
        &circuit,
        "--exchange",
        "--addr",
        &addr,
        "--out",
        &first_order,
    ]))
    .expect("first submit");
    assert!(first.contains("cache miss"), "fresh job executes: {first}");

    let second_order = dir.path("second.order");
    let second = cli::run(&s(&[
        "submit",
        &circuit,
        "--exchange",
        "--addr",
        &addr,
        "--out",
        &second_order,
    ]))
    .expect("second submit");
    assert!(
        second.contains("cache hit"),
        "repeat is answered from cache: {second}"
    );

    // Determinism across the service boundary, at the byte level.
    let local_bytes = fs::read(&local_order).unwrap();
    assert_eq!(fs::read(&first_order).unwrap(), local_bytes);
    assert_eq!(fs::read(&second_order).unwrap(), local_bytes);

    let shutdown = cli::run(&s(&["shutdown", "--addr", &addr])).expect("shutdown");
    assert!(shutdown.contains("draining"));

    let summary = daemon
        .join()
        .expect("no panic")
        .expect("daemon exits cleanly");
    assert!(summary.contains("served 2 jobs"), "summary: {summary}");
    assert!(summary.contains("1 cache hits"), "summary: {summary}");
    // --metrics renders the pool block.
    assert!(summary.contains("hit-rate"), "summary: {summary}");
    assert!(summary.contains("latency p50"), "summary: {summary}");
}

#[test]
fn batch_prints_a_verdict_table_and_propagates_failures_as_nonzero_exit() {
    let dir = TestDir::new("batch");
    let jobs = dir.path("jobs");
    fs::create_dir_all(&jobs).unwrap();
    cli::run(&s(&["gen", "1", "--out", &dir.path("jobs/a_good.copack")])).expect("gen");
    cli::run(&s(&["gen", "2", "--out", &dir.path("jobs/b_good.copack")])).expect("gen");

    let (addr, daemon) = start_daemon(&dir, "batch", &["--workers", "2"]);

    // All-good directory: Ok, all PASS, check-style table shape.
    let table = cli::run(&s(&["batch", &jobs, "--addr", &addr])).expect("all jobs pass");
    assert!(table.contains("2/2 jobs passed"), "table: {table}");
    assert!(table.contains("job"), "has a header: {table}");
    assert!(table.contains("verdict"), "has a header: {table}");
    assert!(table.contains("PASS"), "table: {table}");
    assert!(
        table.contains("cache miss"),
        "details carry cache state: {table}"
    );
    assert!(!table.contains("FAIL"), "table: {table}");

    // Add a circuit that cannot parse: batch must return Err (nonzero
    // exit through the binary) and mark exactly that job FAIL.
    fs::write(dir.path("jobs/c_bad.copack"), "quadrant broken\nrow x y\n").unwrap();
    let table = cli::run(&s(&["batch", &jobs, "--addr", &addr]))
        .expect_err("a failing job fails the batch");
    assert!(table.contains("2/3 jobs passed"), "table: {table}");
    assert!(table.contains("c_bad.copack"), "table: {table}");
    assert!(table.contains("FAIL"), "table: {table}");
    assert!(
        table.contains("bad_request"),
        "typed error in detail: {table}"
    );
    // The good jobs are now cache hits — still PASS.
    assert!(table.contains("cache hit"), "table: {table}");

    cli::run(&s(&["shutdown", "--addr", &addr])).expect("shutdown");
    daemon
        .join()
        .expect("no panic")
        .expect("daemon exits cleanly");
}

#[test]
fn client_verbs_fail_cleanly_without_a_daemon() {
    let dir = TestDir::new("nodaemon");
    let circuit = dir.path("c.copack");
    cli::run(&s(&["gen", "1", "--out", &circuit])).expect("gen");

    // Port 9 (discard) on localhost is essentially never listening.
    for args in [
        vec!["submit", circuit.as_str(), "--addr", "127.0.0.1:9"],
        vec!["shutdown", "--addr", "127.0.0.1:9"],
    ] {
        let err = cli::run(&s(&args)).expect_err("no daemon to talk to");
        assert!(err.contains("no daemon at"), "error: {err}");
    }
}
