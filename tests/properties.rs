//! Property-based tests of the core invariants, spanning crates.

use copack::core::{
    dfa, exchange, ifa, omega_of_assignment, random_assignment, ExchangeConfig, Schedule,
};
use copack::geom::{NetKind, Quadrant, StackConfig};
use copack::power::{solve_cg, solve_sor, GridSpec, PadRing, PadSpacingProxy};
use copack::route::{
    density_map, exchange_range, extract_paths, is_monotonic, DensityModel,
};
use proptest::prelude::*;

/// Strategy: a quadrant with 1..=5 rows of 1..=8 balls, net ids shuffled,
/// every third net a power pad.
fn quadrant_strategy() -> impl Strategy<Value = Quadrant> {
    (prop::collection::vec(1usize..=8, 1..=5), any::<u64>()).prop_map(|(sizes, seed)| {
        let total: usize = sizes.iter().sum();
        // Deterministic Fisher–Yates from the seed, no external RNG needed.
        let mut ids: Vec<u32> = (1..=total as u32).collect();
        let mut state = seed | 1;
        for i in (1..ids.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        let mut builder = Quadrant::builder();
        let mut cursor = 0;
        for &s in &sizes {
            builder = builder.row(ids[cursor..cursor + s].iter().copied());
            cursor += s;
        }
        for id in 1..=total as u32 {
            if id % 3 == 0 {
                builder = builder.net_kind(id, NetKind::Power);
            }
        }
        builder.build().expect("generated quadrants are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_assignment_methods_are_monotonic_legal(q in quadrant_strategy(), seed in any::<u64>()) {
        for a in [
            random_assignment(&q, seed).expect("random"),
            ifa(&q).expect("ifa"),
            dfa(&q, 1).expect("dfa"),
            dfa(&q, 3).expect("dfa slack 3"),
        ] {
            prop_assert!(is_monotonic(&q, &a));
            prop_assert_eq!(a.net_count(), q.net_count());
            prop_assert!(a.validate_complete(&q).is_ok());
        }
    }

    #[test]
    fn density_counts_conserve_crossings(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        for model in [DensityModel::Geometric, DensityModel::OrderOnly] {
            let map = density_map(&q, &a, model).expect("legal");
            // Wires crossing line y = nets whose ball row is strictly below y.
            for row_density in &map.rows {
                let y = row_density.row.get();
                let expected: usize = (1..y)
                    .map(|lower| q.row(lower).len())
                    .sum();
                let counted: u32 = row_density.counts.iter().sum();
                prop_assert_eq!(counted as usize, expected);
            }
        }
    }

    #[test]
    fn exchange_ranges_contain_current_positions(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        for net in q.nets() {
            let pos = a.position_of(net.id).expect("placed");
            let (lo, hi) = exchange_range(&q, &a, net.id).expect("range");
            prop_assert!(lo <= pos && pos <= hi, "{}: {pos:?} not in [{lo:?}, {hi:?}]", net.id);
        }
    }

    #[test]
    fn paths_are_monotonic_and_cover_all_nets(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        let paths = extract_paths(&q, &a).expect("legal");
        prop_assert_eq!(paths.len(), q.net_count());
        for p in &paths {
            prop_assert!(p.is_monotonic());
            prop_assert!(p.length() > 0.0);
        }
    }

    #[test]
    fn planar_omega_is_always_zero(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        prop_assert_eq!(omega_of_assignment(&q, &a, 1).expect("omega"), 0);
    }

    #[test]
    fn proxy_gaps_always_sum_to_one(ts in prop::collection::vec(0.0f64..1.0, 1..20)) {
        let proxy = PadSpacingProxy::new(&ts).expect("valid positions");
        let sum: f64 = proxy.gaps().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(proxy.delta_ir() >= 0.0);
        prop_assert!(proxy.max_gap() <= 1.0 + 1e-12);
    }

    #[test]
    fn sor_and_cg_agree_on_random_rings(
        ts in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let spec = GridSpec::default_chip(10);
        let ring = PadRing::from_ts(ts).expect("valid ring");
        let a = solve_sor(&spec, &ring).expect("sor");
        let b = solve_cg(&spec, &ring).expect("cg");
        prop_assert!((a.max_drop() - b.max_drop()).abs() < 1e-6);
    }

    #[test]
    fn exchange_preserves_legality_and_cost_on_arbitrary_instances(
        q in quadrant_strategy(),
        seed in any::<u64>(),
    ) {
        prop_assume!(q.nets_of_kind(NetKind::Power).next().is_some());
        let initial = dfa(&q, 1).expect("dfa");
        let cfg = ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 1,
                final_temp_ratio: 0.2,
                cooling: 0.5,
                ..Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        };
        let r = exchange(&q, &initial, &StackConfig::planar(), &cfg).expect("runs");
        prop_assert!(is_monotonic(&q, &r.assignment));
        prop_assert!(r.assignment.validate_complete(&q).is_ok());
        prop_assert!(r.stats.final_cost <= r.stats.initial_cost + 1e-9);
    }

    #[test]
    fn random_assignment_is_a_permutation(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        let mut ids: Vec<u32> = a.order().iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        let expected: Vec<u32> = (1..=q.net_count() as u32).collect();
        prop_assert_eq!(ids, expected);
    }
}
