//! Property-based tests of the core invariants, spanning crates.

use copack::core::{
    dfa, exchange, exchange_reference, ifa, omega_of_assignment, random_assignment, DeltaIrTracker,
    ExchangeConfig, Schedule,
};
use copack::geom::{FingerIdx, NetKind, Quadrant, StackConfig, TierId};
use copack::power::{solve_cg, solve_sor, GridSpec, PadRing, PadSpacingProxy};
use copack::route::{
    density_map, exchange_range, extract_paths, is_monotonic, DensityModel, RangeCache,
};
use proptest::prelude::*;

/// Strategy: a quadrant with 1..=5 rows of 1..=8 balls, net ids shuffled,
/// every third net a power pad. With `tiers > 1` the nets are striped
/// across that many tiers (ω asserts `tier ≤ ψ`, so planar tests must use
/// `tiers = 1`, the default tier of every net).
fn quadrant_strategy_tiered(tiers: u8) -> impl Strategy<Value = Quadrant> {
    (prop::collection::vec(1usize..=8, 1..=5), any::<u64>()).prop_map(move |(sizes, seed)| {
        let total: usize = sizes.iter().sum();
        // Deterministic Fisher–Yates from the seed, no external RNG needed.
        let mut ids: Vec<u32> = (1..=total as u32).collect();
        let mut state = seed | 1;
        for i in (1..ids.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        let mut builder = Quadrant::builder();
        let mut cursor = 0;
        for &s in &sizes {
            builder = builder.row(ids[cursor..cursor + s].iter().copied());
            cursor += s;
        }
        for id in 1..=total as u32 {
            if id % 3 == 0 {
                builder = builder.net_kind(id, NetKind::Power);
            }
            if tiers > 1 {
                builder =
                    builder.net_tier(id, TierId::new(((id - 1) % u32::from(tiers) + 1) as u8));
            }
        }
        builder.build().expect("generated quadrants are valid")
    })
}

fn quadrant_strategy() -> impl Strategy<Value = Quadrant> {
    quadrant_strategy_tiered(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_assignment_methods_are_monotonic_legal(q in quadrant_strategy(), seed in any::<u64>()) {
        for a in [
            random_assignment(&q, seed).expect("random"),
            ifa(&q).expect("ifa"),
            dfa(&q, 1).expect("dfa"),
            dfa(&q, 3).expect("dfa slack 3"),
        ] {
            prop_assert!(is_monotonic(&q, &a));
            prop_assert_eq!(a.net_count(), q.net_count());
            prop_assert!(a.validate_complete(&q).is_ok());
        }
    }

    #[test]
    fn density_counts_conserve_crossings(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        for model in [DensityModel::Geometric, DensityModel::OrderOnly] {
            let map = density_map(&q, &a, model).expect("legal");
            // Wires crossing line y = nets whose ball row is strictly below y.
            for row_density in &map.rows {
                let y = row_density.row.get();
                let expected: usize = (1..y)
                    .map(|lower| q.row(lower).len())
                    .sum();
                let counted: u32 = row_density.counts.iter().sum();
                prop_assert_eq!(counted as usize, expected);
            }
        }
    }

    #[test]
    fn exchange_ranges_contain_current_positions(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        for net in q.nets() {
            let pos = a.position_of(net.id).expect("placed");
            let (lo, hi) = exchange_range(&q, &a, net.id).expect("range");
            prop_assert!(lo <= pos && pos <= hi, "{}: {pos:?} not in [{lo:?}, {hi:?}]", net.id);
        }
    }

    #[test]
    fn paths_are_monotonic_and_cover_all_nets(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        let paths = extract_paths(&q, &a).expect("legal");
        prop_assert_eq!(paths.len(), q.net_count());
        for p in &paths {
            prop_assert!(p.is_monotonic());
            prop_assert!(p.length() > 0.0);
        }
    }

    #[test]
    fn planar_omega_is_always_zero(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        prop_assert_eq!(omega_of_assignment(&q, &a, 1).expect("omega"), 0);
    }

    #[test]
    fn proxy_gaps_always_sum_to_one(ts in prop::collection::vec(0.0f64..1.0, 1..20)) {
        let proxy = PadSpacingProxy::new(&ts).expect("valid positions");
        let sum: f64 = proxy.gaps().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(proxy.delta_ir() >= 0.0);
        prop_assert!(proxy.max_gap() <= 1.0 + 1e-12);
    }

    #[test]
    fn sor_and_cg_agree_on_random_rings(
        ts in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let spec = GridSpec::default_chip(10);
        let ring = PadRing::from_ts(ts).expect("valid ring");
        let a = solve_sor(&spec, &ring).expect("sor");
        let b = solve_cg(&spec, &ring).expect("cg");
        prop_assert!((a.max_drop() - b.max_drop()).abs() < 1e-6);
    }

    #[test]
    fn exchange_preserves_legality_and_cost_on_arbitrary_instances(
        q in quadrant_strategy(),
        seed in any::<u64>(),
    ) {
        prop_assume!(q.nets_of_kind(NetKind::Power).next().is_some());
        let initial = dfa(&q, 1).expect("dfa");
        let cfg = ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 1,
                final_temp_ratio: 0.2,
                cooling: 0.5,
                ..Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        };
        let r = exchange(&q, &initial, &StackConfig::planar(), &cfg).expect("runs");
        prop_assert!(is_monotonic(&q, &r.assignment));
        prop_assert!(r.assignment.validate_complete(&q).is_ok());
        prop_assert!(r.stats.final_cost <= r.stats.initial_cost + 1e-9);
    }

    #[test]
    fn random_assignment_is_a_permutation(q in quadrant_strategy(), seed in any::<u64>()) {
        let a = random_assignment(&q, seed).expect("random");
        let mut ids: Vec<u32> = a.order().iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        let expected: Vec<u32> = (1..=q.net_count() as u32).collect();
        prop_assert_eq!(ids, expected);
    }

    /// The incremental kernel and the from-scratch reference must agree on
    /// the full [`copack::core::ExchangeResult`] — assignment, every
    /// statistic, both costs — for any quadrant and seed, at ψ = 1 and on
    /// a stacking design. This exercises the Δ_IR tracker, the range
    /// cache and the journal-rematerialised best all at once: a drifted
    /// float, a stale range or a mis-replayed journal each break equality.
    #[test]
    fn kernel_and_reference_exchanges_are_bit_identical_planar(
        q in quadrant_strategy(),
        seed in any::<u64>(),
    ) {
        prop_assume!(q.nets_of_kind(NetKind::Power).next().is_some());
        let initial = dfa(&q, 1).expect("dfa");
        let cfg = ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 2,
                final_temp_ratio: 0.1,
                cooling: 0.6,
                ..Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        };
        let fast = exchange(&q, &initial, &StackConfig::planar(), &cfg).expect("kernel runs");
        let slow =
            exchange_reference(&q, &initial, &StackConfig::planar(), &cfg).expect("reference runs");
        prop_assert_eq!(&fast, &slow);
    }

    #[test]
    fn kernel_and_reference_exchanges_are_bit_identical_stacked(
        q in quadrant_strategy_tiered(3),
        seed in any::<u64>(),
    ) {
        let initial = dfa(&q, 1).expect("dfa");
        let cfg = ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 2,
                final_temp_ratio: 0.1,
                cooling: 0.6,
                ..Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        };
        let stack = StackConfig::stacked(3).expect("valid stack");
        let fast = exchange(&q, &initial, &stack, &cfg).expect("kernel runs");
        let slow = exchange_reference(&q, &initial, &stack, &cfg).expect("reference runs");
        prop_assert_eq!(&fast, &slow);
    }

    /// Replaying an arbitrary accepted/rejected move sequence through the
    /// Δ_IR tracker reproduces the from-scratch pad-spacing proxy **bit
    /// for bit** after every step (a rejected move is a swap immediately
    /// re-applied, exactly as the annealer reverts).
    #[test]
    fn delta_ir_tracker_replays_match_the_proxy(
        q in quadrant_strategy(),
        moves in prop::collection::vec((any::<u64>(), any::<bool>()), 1..40),
    ) {
        prop_assume!(q.nets_of_kind(NetKind::Power).next().is_some());
        let mut a = dfa(&q, 1).expect("dfa");
        let alpha = a.finger_count();
        prop_assume!(alpha >= 2);
        let mut tracker = DeltaIrTracker::new(&q, &a).expect("tracker");
        for (pick, accepted) in moves {
            let left = 1 + (pick % (alpha as u64 - 1)) as u32;
            tracker.apply_adjacent_swap(FingerIdx::new(left));
            a.swap(FingerIdx::new(left), FingerIdx::new(left + 1)).expect("swap");
            if !accepted {
                tracker.apply_adjacent_swap(FingerIdx::new(left));
                a.swap(FingerIdx::new(left), FingerIdx::new(left + 1)).expect("swap");
            }
            let ts: Vec<f64> = q
                .nets_of_kind(NetKind::Power)
                .filter_map(|n| a.position_of(n))
                .map(|f| (f.get() as f64 - 0.5) / alpha as f64)
                .collect();
            let fresh = PadSpacingProxy::new(&ts).expect("proxy").delta_ir();
            prop_assert_eq!(tracker.delta_ir().to_bits(), fresh.to_bits());
        }
    }

    /// A [`RangeCache`] refreshed only via `note_moved` on accepted moves
    /// (rejected ones revert without notification, as in the annealer)
    /// always matches [`exchange_range`] recomputed on the live assignment.
    #[test]
    fn range_cache_replays_match_recomputation(
        q in quadrant_strategy(),
        seed in any::<u64>(),
        moves in prop::collection::vec((any::<u64>(), any::<bool>()), 1..60),
    ) {
        let mut a = random_assignment(&q, seed).expect("random");
        let alpha = a.finger_count();
        prop_assume!(alpha >= 2);
        let mut cache = RangeCache::new(&q, &a).expect("cache");
        for (pick, accepted) in moves {
            let p = FingerIdx::new(1 + (pick % (alpha as u64 - 1)) as u32);
            let t = FingerIdx::new(p.get() + 1);
            let (Some(na), Some(nb)) = (a.net_at(p), a.net_at(t)) else { continue };
            // Only monotonicity-preserving swaps, as the annealer proposes.
            let (alo, ahi) = exchange_range(&q, &a, na).expect("range");
            let (blo, bhi) = exchange_range(&q, &a, nb).expect("range");
            if t < alo || t > ahi || p < blo || p > bhi {
                continue;
            }
            a.swap(p, t).expect("swap");
            if accepted {
                let pos: Vec<u32> = q
                    .nets()
                    .map(|n| a.position_of(n.id).expect("dense").get())
                    .collect();
                cache.note_moved(cache.index_of(na).expect("known"), &pos);
                cache.note_moved(cache.index_of(nb).expect("known"), &pos);
            } else {
                a.swap(p, t).expect("revert");
            }
            for net in q.nets() {
                let i = cache.index_of(net.id).expect("known");
                let fresh = exchange_range(&q, &a, net.id).expect("range");
                prop_assert_eq!(cache.range(i), fresh, "net {}", net.id.raw());
            }
        }
    }

    /// Every generated quadrant passes all five `copack-verify` oracles:
    /// the invariants the oracles encode are theorems of the model, not
    /// properties of hand-picked fixtures. Each case is five full oracle
    /// passes under the quick profile (`PROPTEST_CASES` scales it up in
    /// release CI).
    #[test]
    fn oracles_hold_on_arbitrary_quadrants(q in quadrant_strategy(), seed in any::<u64>()) {
        let config = copack::verify::VerifyConfig {
            exchange_seed: seed,
            ..Default::default()
        };
        let reports = copack::verify::check_quadrant(
            &q,
            &config,
            &mut copack::obs::NoopRecorder,
        );
        prop_assert_eq!(reports.len(), copack::verify::ORACLE_NAMES.len());
        for r in &reports {
            prop_assert!(r.passed, "oracle {} failed: {}", r.oracle, r.detail);
        }
    }
}
