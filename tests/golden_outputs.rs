//! Bit-identity of the paper artefacts against checked-in goldens.
//!
//! The telemetry layer's contract is that the default (no-op recorder)
//! paths do not perturb results: `table2`, `table3`, and `fig5` must
//! produce the exact bytes captured before the layer existed. The goldens
//! in `tests/golden/` were generated with
//! `cargo run --release -p copack-bench --bin <name>` at the pre-telemetry
//! commit; regenerate them the same way if an intentional model change
//! lands (and say so in the commit message).

use std::fs;
use std::path::Path;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn fig5_output_is_bit_identical_to_the_golden() {
    assert_eq!(copack_bench::fig5_report(), golden("fig5.txt"));
}

#[test]
fn table2_output_is_bit_identical_to_the_golden() {
    assert_eq!(copack_bench::table2_report(), golden("table2.txt"));
}

#[test]
fn table3_output_is_bit_identical_to_the_golden() {
    assert_eq!(copack_bench::table3_report(), golden("table3.txt"));
}

/// The A8 margin ablation is pinned too: its μ = 0 column runs the
/// annealer with the margin term disabled, so this golden doubles as
/// the bit-identity proof that adding the term did not perturb the
/// default flow.
#[test]
fn margin_ablation_is_bit_identical_to_the_golden() {
    assert_eq!(copack_bench::margin_report(), golden("margin.txt"));
}

/// The `copack check` verdict table of every Table 1 circuit is pinned:
/// all seven oracles pass, and the detail lines (accepted-move counts,
/// pad counts, Eq. 2 `ID`) are seeded and therefore byte-stable.
/// Regenerate with
/// `for n in 1 2 3 4 5; do copack gen $n --out c.copack && copack check c.copack; done`
/// if an intentional model change lands.
#[test]
fn check_verdict_tables_are_bit_identical_to_the_golden() {
    let mut out = String::new();
    for n in 1..=5 {
        let c = copack::gen::circuit(n);
        let quadrant = c.build_quadrant().unwrap();
        let name = c.name.replace(' ', "");
        let reports = copack::verify::check_quadrant(
            &quadrant,
            &copack::verify::VerifyConfig::default(),
            &mut copack::obs::NoopRecorder,
        );
        out.push_str(&copack::verify::verdict_table(&name, &reports));
    }
    assert_eq!(out, golden("check.txt"));
}
