//! Bit-identity of the paper artefacts against checked-in goldens.
//!
//! The telemetry layer's contract is that the default (no-op recorder)
//! paths do not perturb results: `table2`, `table3`, and `fig5` must
//! produce the exact bytes captured before the layer existed. The goldens
//! in `tests/golden/` were generated with
//! `cargo run --release -p copack-bench --bin <name>` at the pre-telemetry
//! commit; regenerate them the same way if an intentional model change
//! lands (and say so in the commit message).

use std::fs;
use std::path::Path;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn fig5_output_is_bit_identical_to_the_golden() {
    assert_eq!(copack_bench::fig5_report(), golden("fig5.txt"));
}

#[test]
fn table2_output_is_bit_identical_to_the_golden() {
    assert_eq!(copack_bench::table2_report(), golden("table2.txt"));
}

#[test]
fn table3_output_is_bit_identical_to_the_golden() {
    assert_eq!(copack_bench::table3_report(), golden("table3.txt"));
}
