//! Failure-injection tests: every layer must fail loudly and precisely on
//! malformed input rather than panic or produce garbage.

use copack::cli;
use copack::core::{dfa, exchange, exchange_traced, CoreError, ExchangeConfig};
use copack::geom::{Assignment, GeomError, NetKind, Quadrant, QuadrantGeometry, StackConfig};
use copack::io::parse_quadrant;
use copack::obs::JsonlSink;
use copack::power::{GridSpec, PadRing, PowerError};
use copack::route::{analyze, DensityModel, RouteError};

fn run_cli(args: &[&str]) -> Result<String, String> {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    cli::run(&owned)
}

#[test]
fn geometry_nan_is_caught_at_build_time() {
    for bad in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
        let g = QuadrantGeometry {
            ball_pitch: bad,
            ..QuadrantGeometry::default()
        };
        let err = Quadrant::builder()
            .row([1u32])
            .geometry(g)
            .build()
            .unwrap_err();
        assert!(matches!(err, GeomError::InvalidGeometry { .. }), "{bad}");
    }
}

#[test]
fn routing_rejects_foreign_and_missing_nets() {
    let q = Quadrant::builder().row([1u32, 2]).build().unwrap();
    // Missing nets.
    let partial = Assignment::from_order([1u32]);
    assert!(matches!(
        analyze(&q, &partial, DensityModel::Geometric),
        Err(RouteError::Unplaced { .. })
    ));
    // An assignment with a net the quadrant has never heard of, placed so
    // the known nets stay monotonic.
    let foreign = Assignment::from_order([1u32, 2, 99]);
    let err = analyze(&q, &foreign, DensityModel::Geometric).unwrap_err();
    assert!(matches!(
        err,
        RouteError::Unplaced { .. } | RouteError::Geom(_)
    ));
}

#[test]
fn exchange_propagates_illegal_inputs() {
    let q = Quadrant::builder()
        .row([1u32, 2])
        .row([3u32])
        .net_kind(1u32, NetKind::Power)
        .build()
        .unwrap();
    // Non-monotonic initial order: nets 1 and 2 share a row.
    let bad = Assignment::from_order([2u32, 3, 1]);
    let err = exchange(&q, &bad, &StackConfig::planar(), &ExchangeConfig::default()).unwrap_err();
    assert!(matches!(
        err,
        CoreError::Route(RouteError::NonMonotonic { .. })
    ));
}

#[test]
fn exchange_surfaces_config_mistakes_before_running() {
    let q = Quadrant::builder()
        .row([1u32, 2])
        .net_kind(1u32, NetKind::Power)
        .build()
        .unwrap();
    let a = dfa(&q, 1).unwrap();
    let mut cfg = ExchangeConfig::default();
    cfg.schedule.cooling = 1.5;
    assert!(matches!(
        exchange(&q, &a, &StackConfig::planar(), &cfg),
        Err(CoreError::BadConfig { .. })
    ));
    let mut cfg = ExchangeConfig::default();
    cfg.weights.lambda = f64::NAN;
    assert!(exchange(&q, &a, &StackConfig::planar(), &cfg).is_err());
}

#[test]
fn power_layer_rejects_degenerate_problems() {
    assert!(matches!(
        PadRing::from_ts(std::iter::empty()),
        Err(PowerError::NoPads)
    ));
    let bad_grid = GridSpec {
        nx: 1,
        ..GridSpec::default_chip(8)
    };
    assert!(matches!(
        copack::power::solve_sor(&bad_grid, &PadRing::uniform(2)),
        Err(PowerError::BadSpec { .. })
    ));
}

#[test]
fn parser_errors_are_precise_enough_to_fix_the_file() {
    // A realistic hand-written file with one typo on line 5.
    let text = "\
quadrant board
geometry ball_pitch=1.2 finger_pitch=0.1 finger_width=0.05 finger_height=0.2 via_diameter=0.1 ball_diameter=0.2
row 1 2 3 4
row 5 6 7
net 5 pwr
";
    let err = parse_quadrant(text).unwrap_err();
    assert_eq!(err.line, 5);
    let msg = err.to_string();
    assert!(msg.contains("pwr"), "{msg}");
    assert!(msg.contains("power"), "message suggests valid kinds: {msg}");
}

#[test]
fn truncated_files_fail_cleanly() {
    for text in ["", "quadrant", "quadrant x\nrow", "quadrant x\nrow 1\nnet"] {
        assert!(parse_quadrant(text).is_err(), "{text:?}");
    }
}

#[test]
fn duplicate_nets_across_rows_are_rejected_with_the_culprit() {
    let err = Quadrant::builder()
        .row([1u32, 2, 3])
        .row([4u32, 2])
        .build()
        .unwrap_err();
    assert_eq!(err, GeomError::DuplicateNet { net: 2.into() });
}

/// An unwritable `--trace` path is a user error: the CLI refuses it
/// before any annealing happens, with an io-layer message naming the
/// path, instead of burning the run and losing the trace at the end.
#[test]
fn unwritable_trace_path_fails_loudly_before_the_run() {
    let dir = std::env::temp_dir().join("copack_failure_injection");
    std::fs::create_dir_all(&dir).unwrap();
    let circuit = dir.join("c1.circuit");
    let circuit = circuit.to_str().unwrap();
    let assign = dir.join("c1.assign");
    let assign = assign.to_str().unwrap();
    run_cli(&["gen", "1", "--out", circuit]).expect("gen writes the circuit");
    run_cli(&["plan", circuit, "--out", assign]).expect("plan writes the assignment");
    for cmd in [vec!["plan", circuit], vec!["ir", circuit, assign]] {
        let mut args = cmd;
        args.extend(["--trace", "/nonexistent-dir-for-copack/trace.jsonl"]);
        let err = run_cli(&args).expect_err("unwritable trace path must fail");
        assert!(err.contains("cannot open trace file"), "{err}");
        assert!(
            err.contains("/nonexistent-dir-for-copack/trace.jsonl"),
            "{err}"
        );
    }
}

/// A sink whose writer starts failing mid-run must not abort or corrupt
/// the annealing: the traced run completes with the exact untraced
/// result and the error surfaces afterwards, at `finish`.
#[test]
fn sink_write_failures_do_not_abort_the_run() {
    #[derive(Debug)]
    struct FailingWriter;
    impl std::io::Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full (injected)"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let q = Quadrant::builder()
        .row([1u32, 2, 4])
        .row([3u32, 5])
        .net_kind(3u32, NetKind::Power)
        .build()
        .unwrap();
    let initial = dfa(&q, 1).unwrap();
    let stack = StackConfig::planar();
    let cfg = ExchangeConfig::default();
    let plain = exchange(&q, &initial, &stack, &cfg).expect("untraced run");
    let mut sink = JsonlSink::new(FailingWriter);
    let traced = exchange_traced(&q, &initial, &stack, &cfg, &mut sink)
        .expect("the run survives a broken sink");
    assert_eq!(plain, traced);
    // Force serialisation of whatever is still queued: the injected error
    // must surface here, not as a panic inside the hot loop.
    sink.drain();
    assert!(sink.error().is_some());
    let err = sink.finish().unwrap_err();
    assert_eq!(err.to_string(), "disk full (injected)");
}

/// Same contract end to end through the CLI: `/dev/full` accepts the
/// open but fails every write, so the plan completes, the report is
/// printed, and the trace failure is surfaced as a warning.
#[test]
#[cfg(target_os = "linux")]
fn cli_surfaces_a_warning_when_the_trace_write_fails() {
    let dir = std::env::temp_dir().join("copack_failure_injection_devfull");
    std::fs::create_dir_all(&dir).unwrap();
    let circuit = dir.join("c1.circuit");
    run_cli(&["gen", "1", "--out", circuit.to_str().unwrap()]).expect("gen writes the circuit");
    let plain = run_cli(&["plan", circuit.to_str().unwrap()]).expect("plain plan");
    let traced = run_cli(&["plan", circuit.to_str().unwrap(), "--trace", "/dev/full"])
        .expect("a failing trace write must not fail the run");
    assert!(traced.starts_with(&plain), "report changed:\n{traced}");
    assert!(
        traced.contains("warning: trace file /dev/full is incomplete"),
        "{traced}"
    );
}

#[test]
fn stacking_config_rejects_out_of_range_tiers() {
    let q = Quadrant::builder()
        .row([1u32, 2])
        .net_tier(1u32, copack::geom::TierId::new(5))
        .net_kind(2u32, NetKind::Power)
        .build()
        .unwrap();
    let a = Assignment::from_order([1u32, 2]);
    let stack = StackConfig::stacked(2).unwrap();
    // Bonding-wire computation must refuse the tier-5 net on a 2-tier stack.
    assert!(matches!(
        copack::core::total_bondwire(&q, &a, &stack),
        Err(CoreError::BadConfig { .. })
    ));
}
