//! Integration tests for the extension features beyond the paper's core:
//! cut-line analysis, via rules, flip-chip pads, hotspots, dual-rail noise,
//! the package view, and the text formats.

use copack::core::{assign, evaluate_supply_noise, AssignMethod};
use copack::gen::circuit;
use copack::geom::{Assignment, Package};
use copack::io::{parse_assignment, parse_quadrant, write_assignment, write_quadrant};
use copack::power::{solve_plan, GridSpec, Hotspot, PadArray, PadPlan, PadRing, Solver};
use copack::route::{
    cutline_congestion, density_map, density_map_with_plan, via_plan_with, DensityModel, ViaRule,
};
use copack::viz::package_svg;

#[test]
fn cutline_congestion_is_stable_across_circuits() {
    for idx in 1..=5 {
        let c = circuit(idx);
        let q = c.build_quadrant().expect("builds");
        let package = Package::uniform(q.clone());
        let a = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let sides = [a.clone(), a.clone(), a.clone(), a];
        let report =
            cutline_congestion(&package, &sides, DensityModel::Geometric).expect("routable");
        // Symmetric package: one value on all four boundaries, and the
        // flank load is the step-2 triangle's geometric floor.
        assert!(report.boundaries.iter().all(|&b| b == report.max()));
        assert!(report.max() > 0);
    }
}

#[test]
fn via_rules_give_similar_densities() {
    // The "without loss of generality" claim: switching the via corner
    // must not change DFA's interior density by more than 1.
    for idx in 1..=5 {
        let q = circuit(idx).build_quadrant().expect("builds");
        let a = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let bl = density_map_with_plan(
            &q,
            &a,
            DensityModel::Geometric,
            &via_plan_with(&q, ViaRule::BottomLeft),
        )
        .expect("routable");
        let br = density_map_with_plan(
            &q,
            &a,
            DensityModel::Geometric,
            &via_plan_with(&q, ViaRule::BottomRight),
        )
        .expect("routable");
        let d = bl
            .max_density_interior()
            .abs_diff(br.max_density_interior());
        assert!(d <= 1, "circuit {idx}: interior density differs by {d}");
        // The default plan equals the bottom-left plan.
        let default = density_map(&q, &a, DensityModel::Geometric).expect("routable");
        assert_eq!(default.max_density(), bl.max_density());
    }
}

#[test]
fn flip_chip_always_beats_the_ring() {
    let grid = GridSpec::default_chip(20);
    for side in [2usize, 3, 4] {
        let pads = side * side;
        let wb = solve_plan(
            &grid,
            &PadPlan::WireBond(PadRing::uniform(pads)),
            Solver::Sor,
        )
        .expect("solves");
        let fc = solve_plan(
            &grid,
            &PadPlan::FlipChip(PadArray::new(side, side).expect("array")),
            Solver::Cg,
        )
        .expect("solves");
        assert!(fc.max_drop() < wb.max_drop(), "{pads} pads");
    }
}

#[test]
fn hotspots_worsen_the_drop_and_move_the_worst_node() {
    let base = GridSpec::default_chip(24);
    let ring = PadRing::uniform(8);
    let flat = copack::power::solve_sor(&base, &ring).expect("solves");
    let hot = GridSpec {
        hotspots: vec![Hotspot {
            cx: 0.2,
            cy: 0.2,
            radius: 0.15,
            multiplier: 8.0,
        }],
        ..base
    };
    let heated = copack::power::solve_sor(&hot, &ring).expect("solves");
    assert!(heated.max_drop() > flat.max_drop());
    // The worst node migrates towards the hotspot corner.
    let (i, j) = heated.worst_node();
    assert!(
        i < 12 && j < 12,
        "worst node ({i},{j}) not near the hotspot"
    );
}

#[test]
fn dual_rail_noise_exceeds_single_rail() {
    let q = circuit(2).build_quadrant().expect("builds");
    let a = assign(&q, AssignMethod::dfa_default()).expect("dfa");
    let grid = GridSpec::default_chip(16);
    let noise = evaluate_supply_noise(&q, &a, &grid)
        .expect("solves")
        .expect("both rails");
    let vdd_only = copack::core::evaluate_ir(&q, &a, &grid)
        .expect("solves")
        .expect("power nets");
    assert!((noise.vdd_drop - vdd_only).abs() < 1e-12);
    assert!(noise.worst_total >= vdd_only);
}

#[test]
fn package_view_renders_every_circuit() {
    let c = circuit(1);
    let q = c.build_quadrant().expect("builds");
    let package = Package::uniform(q.clone());
    let a = assign(&q, AssignMethod::dfa_default()).expect("dfa");
    let sides = [a.clone(), a.clone(), a.clone(), a];
    let svg = package_svg(&package, &sides).expect("renders");
    assert!(svg.starts_with("<svg"));
    assert_eq!(svg.matches("<polyline").count(), q.net_count() * 4);
}

#[test]
fn io_round_trips_generated_circuits_and_plans() {
    for idx in 1..=5 {
        let c = circuit(idx).stacked(2);
        let q = c.build_quadrant().expect("builds");
        let (_, q2) = parse_quadrant(&write_quadrant(&c.name, &q)).expect("parses");
        assert_eq!(q, q2, "circuit {idx} round trip");

        let a = assign(&q, AssignMethod::dfa_default()).expect("dfa");
        let (_, a2) = parse_assignment(&write_assignment(&c.name, &a)).expect("parses");
        assert_eq!(a, a2);
    }
}

#[test]
fn parsed_circuits_flow_through_the_whole_stack() {
    // Text file → quadrant → plan → route → serialize plan → re-parse.
    let q_text = write_quadrant("t", &circuit(1).build_quadrant().expect("builds"));
    let (_, q) = parse_quadrant(&q_text).expect("parses");
    let a = assign(&q, AssignMethod::Ifa).expect("ifa");
    let report = copack::route::analyze(&q, &a, DensityModel::Geometric).expect("routable");
    assert!(report.max_density > 0);
    let (_, a2) = parse_assignment(&write_assignment("t", &a)).expect("parses");
    assert_eq!(
        copack::route::analyze(&q, &a2, DensityModel::Geometric)
            .expect("routable")
            .max_density,
        report.max_density
    );
}

#[test]
fn mixed_assignment_packages_report_asymmetric_cutlines() {
    let q = circuit(1).build_quadrant().expect("builds");
    let package = Package::uniform(q.clone());
    let dfa = assign(&q, AssignMethod::dfa_default()).expect("dfa");
    // Seed chosen so the shuffled side visibly differs from its DFA
    // neighbours at the cutlines under the workspace RNG stream.
    let random = assign(&q, AssignMethod::Random { seed: 9 }).expect("random");
    let sides: [Assignment; 4] = [dfa.clone(), random, dfa.clone(), dfa];
    let report = cutline_congestion(&package, &sides, DensityModel::Geometric).expect("routable");
    let distinct: std::collections::HashSet<u32> = report.boundaries.iter().copied().collect();
    assert!(distinct.len() > 1);
}
