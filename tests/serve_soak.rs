//! Idle-connection soak: the property that motivated the v2 reactor.
//!
//! Pre-v2 the daemon spawned one thread per connection, so N idle
//! clients cost N parked threads and their stacks. The reactor serves
//! every connection from one event loop, so the whole process must stay
//! at `workers + 1` threads (main thread *is* the reactor) — bounded by
//! `workers + 2` here to leave room for a platform helper thread — no
//! matter how many silent connections are parked on it, while a live
//! client keeps getting answers at interactive latency.
//!
//! Scaled by environment knobs so CI can run a cheap smoke:
//! `SOAK_CONNS` (default 500) idle connections held for `SOAK_HOLD_MS`
//! (default 2000) milliseconds.

mod serve_harness;

use std::net::TcpStream;
use std::time::{Duration, Instant};

use copack_serve::JobSpec;
use serve_harness::{circuit_text, env_knob, Daemon, Scratch};

#[test]
fn hundreds_of_idle_connections_cost_no_threads_and_do_not_starve_live_traffic() {
    let conns = env_knob("SOAK_CONNS", 500) as usize;
    let hold = Duration::from_millis(env_knob("SOAK_HOLD_MS", 2000));
    let workers = 2usize;

    let scratch = Scratch::new("soak");
    let daemon = Daemon::spawn(&scratch, "soak", &["--workers", "2"]);

    // Prime the cache with one real job so live traffic below is
    // latency-bound on the reactor, not the annealer.
    let spec = JobSpec::new(circuit_text(1));
    let mut live = daemon.client();
    let first = live.plan(&spec).expect("priming job plans");
    assert_eq!(first.cache, "miss");

    // Park the idle herd: connected, never sending a byte.
    let mut herd: Vec<TcpStream> = Vec::with_capacity(conns);
    for index in 0..conns {
        match TcpStream::connect(&daemon.addr) {
            Ok(stream) => herd.push(stream),
            Err(e) => panic!("idle connection {index} refused: {e}"),
        }
    }

    // Live traffic runs the whole hold window: repeated submissions
    // (cache hits) plus status round-trips, with per-request latency
    // recorded.
    let deadline = Instant::now() + hold;
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut peak_threads = 0usize;
    let mut peak_rss_kb = 0u64;
    while Instant::now() < deadline {
        let t = Instant::now();
        let plan = live.plan(&spec).expect("live job during soak");
        latencies_ms.push(t.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(plan.cache, "hit", "repeats answer from cache mid-soak");
        peak_threads = peak_threads.max(daemon.threads());
        peak_rss_kb = peak_rss_kb.max(daemon.rss_kb());
        std::thread::sleep(Duration::from_millis(10));
    }
    let status = live.status().expect("status during soak");
    assert!(!status.shutting_down);

    // The reactor property: thread count is a function of the worker
    // pool, not the connection count.
    assert!(
        peak_threads <= workers + 2,
        "daemon grew to {peak_threads} threads under {conns} idle connections \
         (bound: workers + 2 = {})",
        workers + 2
    );
    // Idle connections are pollfds, not stacks: even 500 of them must
    // not balloon the resident set. 256 MiB is far above any healthy
    // state but far below ~500 thread stacks.
    assert!(
        peak_rss_kb < 256 * 1024,
        "daemon RSS grew to {peak_rss_kb} KiB during the soak"
    );

    // Live latency stayed interactive: these are cache hits answered
    // inline by the reactor, so even a loaded 1-CPU runner clears this
    // comfortably unless the poll loop degraded to herd-scans.
    latencies_ms.sort_by(f64::total_cmp);
    let p99 = latencies_ms[(latencies_ms.len() * 99 / 100).min(latencies_ms.len() - 1)];
    assert!(
        p99 < 500.0,
        "p99 live latency {p99:.1} ms under {conns} idle connections"
    );

    // Hang up the herd, then shut down cleanly; the summary must count
    // exactly the live submissions.
    drop(herd);
    let summary = daemon.shutdown();
    assert!(summary.contains("served "), "summary: {summary}");
    assert!(
        summary.contains(&format!("{} cache hits", latencies_ms.len())),
        "summary counts the soak's hits: {summary}"
    );
}
