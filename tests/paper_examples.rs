//! Integration tests pinning every worked example of the paper, end to end
//! across the crates (geom → core → route).

use copack::core::{dfa, ifa, increased_density, omega};
use copack::geom::{Assignment, NetId, Quadrant, QuadrantGeometry, TierId};
use copack::route::{analyze, exchange_range, DensityModel};

/// The Fig. 5 instance with the figure's wide-finger geometry.
fn fig5() -> Quadrant {
    Quadrant::builder()
        .row([10u32, 2, 4, 7, 0])
        .row([1u32, 3, 5, 8])
        .row([11u32, 6, 9])
        .geometry(QuadrantGeometry {
            ball_pitch: 1.0,
            finger_pitch: 0.5,
            finger_width: 0.3,
            finger_height: 0.4,
            via_diameter: 0.1,
            ball_diameter: 0.2,
        })
        .build()
        .expect("the Fig. 5 instance builds")
}

#[test]
fn fig5a_random_order_routes_at_density_4() {
    let q = fig5();
    let a = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
    let r = analyze(&q, &a, DensityModel::Geometric).expect("legal");
    assert_eq!(r.max_density, 4, "paper Fig. 5(A)");
}

#[test]
fn ifa_reproduces_section_3_1_1() {
    let q = fig5();
    let a = ifa(&q).expect("ifa");
    assert_eq!(a.to_string(), "10,1,11,2,3,6,4,5,9,7,8,0");
    let r = analyze(&q, &a, DensityModel::Geometric).expect("legal");
    assert_eq!(r.max_density, 2, "paper Fig. 10(B)");
}

#[test]
fn dfa_reproduces_fig12() {
    let q = fig5();
    let a = dfa(&q, 1).expect("dfa");
    assert_eq!(a.to_string(), "10,11,1,2,6,3,4,9,5,7,8,0");
    let r = analyze(&q, &a, DensityModel::Geometric).expect("legal");
    assert_eq!(r.max_density, 2, "paper Fig. 5(B)");
}

#[test]
fn dfa_narrated_placements_hold() {
    // Fig. 12's narration: net 11 → F2, net 6 → F5, net 9 → F8.
    let a = dfa(&fig5(), 1).expect("dfa");
    for (net, slot) in [(11u32, 2u32), (6, 5), (9, 8)] {
        assert_eq!(
            a.position_of(NetId::new(net)).expect("placed").get(),
            slot,
            "net {net}"
        );
    }
}

#[test]
fn exchange_range_of_net6_is_f3_to_f7() {
    // Paper §3.2: "net 6 is assigned at F5, and the exchange range of net 6
    // is between F3 and F7".
    let q = fig5();
    let a = dfa(&q, 1).expect("dfa");
    let (lo, hi) = exchange_range(&q, &a, NetId::new(6)).expect("range");
    assert_eq!((lo.get(), hi.get()), (3, 7));
}

#[test]
fn omega_reproduces_fig4() {
    // Paper §3.2's ω example: 12 fingers, ψ = 2; blocked tiers score 6,
    // interleaved tiers score 0.
    let order: Vec<NetId> = (0..12).map(NetId::new).collect();
    let blocked = |n: NetId| TierId::new(if (n.raw() / 2) % 2 == 0 { 2 } else { 1 });
    let interleaved = |n: NetId| TierId::new((n.raw() % 2) as u8 + 1);
    assert_eq!(omega(&order, blocked, 2), 6);
    assert_eq!(omega(&order, interleaved, 2), 0);
}

#[test]
fn id_metric_matches_eq2_on_fig5() {
    // Moving the clustered random order against the DFA baseline grows the
    // outer section from 4 to... the known value 3 (computed in-crate);
    // identical orders must score 0.
    let q = fig5();
    let base = dfa(&q, 1).expect("dfa");
    assert_eq!(increased_density(&q, &base, &base).expect("id"), 0);
    let random = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
    assert_eq!(increased_density(&q, &base, &random).expect("id"), 3);
}

#[test]
fn wirelength_ordering_matches_table2_shape() {
    // DFA and IFA both shorten the package wirelength vs the clustered
    // random order of Fig. 5(A).
    let q = fig5();
    let random = Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]);
    let wl = |a: &Assignment| {
        analyze(&q, a, DensityModel::Geometric)
            .expect("legal")
            .total_wirelength
    };
    let wl_random = wl(&random);
    assert!(wl(&ifa(&q).expect("ifa")) < wl_random);
    assert!(wl(&dfa(&q, 1).expect("dfa")) < wl_random);
}
