//! A reusable harness for testing the `copack serve` daemon as a real
//! operating-system process: spawn it, load it, kill it dead, restart
//! it, and put faults between it and its clients.
//!
//! The daemon under test is the actual release binary (via
//! `CARGO_BIN_EXE_copack`), not an in-process [`copack_serve::Server`],
//! so these tests cover the whole stack the user runs: argument
//! parsing, port-file handshake, the reactor's socket handling, signal
//! behaviour, and process-level resource accounting (`/proc`).
//!
//! Pieces:
//!
//! * [`Scratch`] — a per-test temp directory, removed on drop;
//! * [`Daemon`] — spawn/inspect/stop one daemon process. `kill9`
//!   delivers `SIGKILL` (no drop handlers, no flush — the crash the
//!   persistent cache tier must survive); `threads()`/`rss_kb()` read
//!   `/proc/<pid>/status` for the soak test's resource bounds;
//! * [`FaultProxy`] — a TCP proxy between client and daemon with
//!   runtime-injectable per-chunk latency and a connection kill
//!   switch, for slow-network and mid-request-disconnect tests;
//! * [`circuit_text`] — deterministic Table 1 circuits for load
//!   scripts, without touching the filesystem.

// Each test binary uses its own subset of the harness.
#![allow(dead_code)]

use std::fs;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use copack_gen::circuit;
use copack_io::write_quadrant;
use copack_serve::Client;

/// A per-test scratch directory, removed when dropped.
pub struct Scratch(pub PathBuf);

impl Scratch {
    pub fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "copack_harness_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        Self(dir)
    }

    pub fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The circuit-file text of Table 1 circuit `index` (1..=5).
pub fn circuit_text(index: usize) -> String {
    let c = circuit(index);
    let quadrant = c.build_quadrant().expect("table 1 circuit builds");
    write_quadrant(&c.name.replace(' ', ""), &quadrant)
}

/// One spawned `copack serve` process.
pub struct Daemon {
    child: Child,
    pub addr: String,
}

impl Daemon {
    /// Spawns `copack serve --addr 127.0.0.1:0 --port-file ... <extra>`
    /// and blocks until the port-file handshake completes.
    pub fn spawn(scratch: &Scratch, tag: &str, extra: &[&str]) -> Self {
        let port_file = scratch.path(&format!("port_{tag}.txt"));
        let _ = fs::remove_file(&port_file);
        let mut command = Command::new(env!("CARGO_BIN_EXE_copack"));
        command
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .arg("--port-file")
            .arg(&port_file)
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let child = command.spawn().expect("spawn copack serve");
        let port = wait_for_port_file(&port_file);
        Self {
            child,
            addr: format!("127.0.0.1:{port}"),
        }
    }

    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// A fresh client connection to this daemon.
    pub fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect to daemon")
    }

    /// Thread count of the daemon process (from `/proc/<pid>/status`).
    pub fn threads(&self) -> usize {
        proc_status_field(self.pid(), "Threads:")
            .expect("daemon process has a Threads field")
            .parse()
            .expect("Threads is a number")
    }

    /// Resident set size in KiB (from `/proc/<pid>/status`).
    pub fn rss_kb(&self) -> u64 {
        proc_status_field(self.pid(), "VmRSS:")
            .and_then(|value| {
                value
                    .split_whitespace()
                    .next()
                    .and_then(|kb| kb.parse().ok())
            })
            .expect("daemon process has a VmRSS field")
    }

    /// `SIGKILL`s the daemon — the unclean crash: no drop handlers, no
    /// buffer flushes, sockets slammed. Returns once the process is
    /// reaped.
    pub fn kill9(mut self) {
        // On Unix, `Child::kill` delivers SIGKILL.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Sends a `shutdown` request, waits for a clean exit, and returns
    /// the daemon's stdout (the `served N jobs: ...` summary block).
    pub fn shutdown(mut self) -> String {
        self.client().shutdown().expect("daemon accepts shutdown");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("wait on daemon") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    break;
                }
                None => {
                    assert!(
                        Instant::now() < deadline,
                        "daemon did not exit within 30 s of shutdown"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        let mut out = String::new();
        if let Some(mut stdout) = self.child.stdout.take() {
            let _ = stdout.read_to_string(&mut out);
        }
        out
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // A test that panicked mid-flight must not leak the process.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn wait_for_port_file(path: &Path) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(text) = fs::read_to_string(path) {
            if let Ok(port) = text.trim().parse::<u16>() {
                return port;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote its port file at {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn proc_status_field(pid: u32, field: &str) -> Option<String> {
    let status = fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix(field))
        .map(|rest| rest.trim().to_owned())
}

/// Shared control block of a [`FaultProxy`].
pub struct ProxyControl {
    /// Extra delay injected before each forwarded chunk, per direction.
    pub latency_ms: AtomicU64,
    /// When set, every proxied connection is severed (both directions)
    /// and new connections are refused — the network "going away".
    pub sever: AtomicBool,
    stop: AtomicBool,
}

/// A TCP fault-injection proxy: clients connect to [`FaultProxy::addr`]
/// and reach the daemon through pump threads that apply the control
/// block's latency/sever settings per forwarded chunk.
pub struct FaultProxy {
    pub addr: String,
    pub control: Arc<ProxyControl>,
}

impl FaultProxy {
    pub fn start(upstream: &str) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        let control = Arc::new(ProxyControl {
            latency_ms: AtomicU64::new(0),
            sever: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let upstream = upstream.to_owned();
        let thread_control = Arc::clone(&control);
        std::thread::spawn(move || {
            while !thread_control.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        if thread_control.sever.load(Ordering::Relaxed) {
                            continue; // dropped: connection refused-by-reset
                        }
                        let Ok(server) = TcpStream::connect(&upstream) else {
                            continue;
                        };
                        pump_pair(client, server, &thread_control);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Self { addr, control }
    }

    /// Injects `ms` of latency before every forwarded chunk.
    pub fn set_latency_ms(&self, ms: u64) {
        self.control.latency_ms.store(ms, Ordering::Relaxed);
    }

    /// Severs all current connections and refuses new ones.
    pub fn sever(&self) {
        self.control.sever.store(true, Ordering::Relaxed);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.control.stop.store(true, Ordering::Relaxed);
        self.control.sever.store(true, Ordering::Relaxed);
    }
}

/// Spawns the two pump threads for one proxied connection.
fn pump_pair(client: TcpStream, server: TcpStream, control: &Arc<ProxyControl>) {
    let pairs = [
        (
            client.try_clone().expect("clone"),
            server.try_clone().expect("clone"),
        ),
        (server, client),
    ];
    for (from, to) in pairs {
        let control = Arc::clone(control);
        std::thread::spawn(move || pump(from, to, &control));
    }
}

/// Forwards bytes one chunk at a time, honouring the control block.
fn pump(mut from: TcpStream, mut to: TcpStream, control: &ProxyControl) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut chunk = [0u8; 4096];
    loop {
        if control.sever.load(Ordering::Relaxed) || control.stop.load(Ordering::Relaxed) {
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
        match from.read(&mut chunk) {
            Ok(0) => {
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => {
                let latency = control.latency_ms.load(Ordering::Relaxed);
                if latency > 0 {
                    std::thread::sleep(Duration::from_millis(latency));
                }
                if to.write_all(&chunk[..n]).is_err() {
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// Reads an env-var knob with a default — how CI scales the soak down
/// (`SOAK_CONNS=50`) without a separate test body.
pub fn env_knob(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
