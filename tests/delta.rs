//! Property tests of the ECO delta layer: `diff_quadrant` followed by
//! `apply_delta` reproduces the target quadrant **byte-identically**
//! (through the circuit format, so geometry, finger counts, and per-net
//! kind/tier overrides all survive), the self-diff is always empty, and
//! the `.edits` text format round-trips every diff the generator can
//! produce.

use copack::core::{apply_delta, diff_quadrant, InstanceDelta};
use copack::gen::{churn, SplitMix64, STANDARD_CHURN};
use copack::geom::{NetKind, Quadrant, TierId};
use copack::io::{parse_delta, write_delta, write_quadrant};
use proptest::prelude::*;

/// Strategy: a quadrant with 1..=5 rows of 1..=8 balls, shuffled net
/// ids, every third net a power pad, optionally striped across `tiers`
/// stacking tiers — the same shape `tests/properties.rs` uses.
fn quadrant_strategy_tiered(tiers: u8) -> impl Strategy<Value = Quadrant> {
    (prop::collection::vec(1usize..=8, 1..=5), any::<u64>()).prop_map(move |(sizes, seed)| {
        let total: usize = sizes.iter().sum();
        let mut ids: Vec<u32> = (1..=total as u32).collect();
        let mut rng = SplitMix64::new(seed | 1);
        for i in (1..ids.len()).rev() {
            let j = (rng.next_u64() >> 16) as usize % (i + 1);
            ids.swap(i, j);
        }
        let mut builder = Quadrant::builder();
        let mut cursor = 0;
        for &s in &sizes {
            builder = builder.row(ids[cursor..cursor + s].iter().copied());
            cursor += s;
        }
        for id in 1..=total as u32 {
            if id % 3 == 0 {
                builder = builder.net_kind(id, NetKind::Power);
            }
            if tiers > 1 {
                builder =
                    builder.net_tier(id, TierId::new(((id - 1) % u32::from(tiers) + 1) as u8));
            }
        }
        builder.build().expect("generated quadrants are valid")
    })
}

/// Asserts the delta contract between two concrete quadrants: applying
/// the diff of `a -> b` onto `a` lands exactly on `b`, including the
/// serialized circuit-file bytes.
fn assert_round_trip(a: &Quadrant, b: &Quadrant) {
    let delta = diff_quadrant(a, b);
    let rebuilt = apply_delta(a, &delta).expect("the diff applies to its own base");
    assert_eq!(&rebuilt, b, "structural equality");
    assert_eq!(
        write_quadrant("q", &rebuilt),
        write_quadrant("q", b),
        "byte-identical through the circuit format"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diff_then_apply_reproduces_the_target_exactly(
        a in quadrant_strategy_tiered(1),
        b in quadrant_strategy_tiered(1),
    ) {
        assert_round_trip(&a, &b);
    }

    #[test]
    fn diff_then_apply_round_trips_tiered_instances(
        a in quadrant_strategy_tiered(3),
        b in quadrant_strategy_tiered(3),
    ) {
        assert_round_trip(&a, &b);
    }

    #[test]
    fn a_self_diff_is_always_empty(q in quadrant_strategy_tiered(2)) {
        let delta = diff_quadrant(&q, &q);
        prop_assert!(delta.is_empty(), "self-diff produced {:?}", delta.edits);
        // And the empty delta is the identity.
        prop_assert_eq!(apply_delta(&q, &delta).expect("identity applies"), q);
    }

    #[test]
    fn churn_deltas_round_trip_like_any_other_eco(
        q in quadrant_strategy_tiered(2),
        seed in any::<u64>(),
    ) {
        // The standard-churn generator is how the quality bands and the
        // fuzz stream produce ECOs — its edits must obey the same
        // exactness contract as arbitrary pairs.
        let edited = churn(&q, seed, STANDARD_CHURN).expect("churn applies");
        assert_round_trip(&q, &edited);
    }

    #[test]
    fn the_edits_format_round_trips_every_diff(
        a in quadrant_strategy_tiered(3),
        b in quadrant_strategy_tiered(3),
    ) {
        let delta = InstanceDelta {
            quadrants: vec![("north".to_owned(), diff_quadrant(&a, &b))],
        };
        let text = write_delta("eco", &delta);
        let (name, parsed) = parse_delta(&text).expect("written deltas parse");
        prop_assert_eq!(name, "eco");
        prop_assert_eq!(parsed, delta);
    }
}

#[test]
fn the_empty_delta_file_round_trips() {
    let text = write_delta("noop", &InstanceDelta::default());
    let (name, parsed) = parse_delta(&text).expect("empty delta parses");
    assert_eq!(name, "noop");
    assert!(parsed.is_empty());
    assert!(parsed.is_clean("anything"));
}
